"""Chaos campaigns: the elastic + checkpoint + failover stacks under
combined fault, network, and load disturbances (the repro.chaos layer).

Five seeded campaigns, each executed **twice** on fresh systems to prove
determinism (the rendered scorecards must be byte-identical):

* ``rolling_channel_outage`` — sequential crash-and-restart of region
  channel PEs; checkpointed detour seeding + unmask reclaim must keep
  zero tuple loss and >= 99% keyed-state recovery;
* ``gray_network`` — latency waves and short hold-and-flush partitions;
  delays only, so the drained run must account for every tuple;
* ``flash_crowd`` — a 3x input surge with 80% of traffic on two hot
  keys, answered by a live 2 -> 4 rescale mid-surge, loss-free;
* ``torn_checkpoints`` — a commit-fault window racing a channel crash:
  recovery falls back to the last epoch committed before the window and
  still clears the 99% bar;
* ``rolling_host_outage`` — the replica-failover stack (paper Sec. 5.2
  semantics, no checkpoints): the promoted replica's output is
  loss-free across the outage while the crashed replica's restart-empty
  state recovery is honestly < 100% — the contrast the checkpoint
  subsystem exists to close.

Crash instants are placed *between* source ticks (tick grid 0.05 s,
injections at x.x2) so the crash-to-mask window holds no in-flight
tuples — the same discipline as the PR-3 recovery benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import (
    ManagedApplication,
    Orchestrator,
    OrcaDescriptor,
    SystemConfig,
    SystemS,
)
from repro.apps.orchestrators import FailoverOrca
from repro.apps.workloads import ChaosFeed
from repro.chaos import (
    ResilienceScorecard,
    collect_scorecard,
    flash_crowd,
    gray_network,
    live_keyed_state,
    rolling_channel_outage,
    rolling_host_outage,
    torn_checkpoints,
)
from repro.chaos.fuzz import FifoProbe
from repro.orca.scopes import ChaosScope, CheckpointScope, ParallelRegionScope
from repro.spl.application import Application
from repro.spl.library import CallbackSource, KeyedCounter, Sink
from repro.spl.parallel import parallel

from benchmarks.conftest import emit

SEED = 42
WARMUP = 3.0
N_KEYS = 12


def build_region_app(feed, width=2, name="ChaosBench"):
    app = Application(name)
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": feed.generator(), "period": 0.05},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        KeyedCounter,
        params={"key": "key"},
        parallel=parallel(
            width=width,
            name="region",
            partition_by="key",
            max_width=8,
            reorder_grace=1.0,
        ),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


class _CampaignOrca(Orchestrator):
    """Chaos-aware orchestrator for the checkpointed campaigns: submits
    the app and subscribes to chaos + region + checkpoint events."""

    def __init__(self):
        super().__init__()
        self.chaos_events: List[Tuple[str, str]] = []
        self.job = None

    def handleOrcaStart(self, context):
        self.orca.registerEventScope(ChaosScope("chaos"))
        self.orca.registerEventScope(ParallelRegionScope("region-events"))
        self.orca.registerEventScope(CheckpointScope("ckpt-events"))
        self.job = self.orca.submit_application("ChaosBench")

    def handleChaosInjectedEvent(self, context, scopes):
        self.chaos_events.append((context.kind, context.target))


# ---------------------------------------------------------------------------
# harness: one checkpointed campaign run
# ---------------------------------------------------------------------------


def run_checkpointed_campaign(
    scenario_builder,
    run_for: float,
    drain: float = 4.0,
    seed: int = SEED,
    batch_max_size: int = 1,
    batch_linger: float = 0.0,
    delivery: str = "best_effort",
) -> Tuple[ResilienceScorecard, Dict]:
    """Build the elastic+checkpoint stack, execute one scenario, score it.

    ``scenario_builder(job)`` receives the running job so presets can
    name live operators/hosts.  The feed is stopped (rate factor 0) and
    the pipeline drained before accounting, so in-flight tuples cannot
    masquerade as losses.  ``batch_max_size > 1`` runs the whole
    campaign over the batched transport hot path; a FIFO probe rides
    along either way and reports into the extras.  ``delivery`` selects
    the transport guarantee (the reliable modes ack, retransmit, and —
    for ``exactly_once`` — replay from committed epochs).
    """
    system = SystemS(
        hosts=10,
        seed=seed,
        config=SystemConfig(
            checkpoint_interval=0.25,
            failure_notification_delay=0.001,
            batch_max_size=batch_max_size,
            batch_linger=batch_linger,
            delivery=delivery,
        ),
    )
    fifo = FifoProbe(system.transport)
    feed = ChaosFeed(n_keys=N_KEYS, base_rate=2, seed=5)
    app = build_region_app(feed)
    logic = _CampaignOrca()
    service = system.submit_orchestrator(
        OrcaDescriptor(
            name="ChaosOrca",
            logic=lambda: logic,
            applications=[ManagedApplication(name=app.name, application=app)],
        )
    )
    system.run_for(WARMUP)
    job = logic.job
    scenario = scenario_builder(job)
    run = system.chaos.run_scenario(scenario, job=job, feed=feed)
    system.run_for(run_for)
    feed.set_rate_factor(0.0)
    system.run_for(drain)
    sink_op = job.operator_instance("sink")
    seqs = [t["seq"] for t in sink_op.seen]
    plan = job.compiled.parallel_regions["region"]
    final_state = live_keyed_state(
        job, [op for ops in plan.channel_ops for op in ops]
    )
    scorecard = collect_scorecard(
        system, run, seed, seqs, feed.emitted, final_state=final_state,
        orca=service,
    )
    fifo.detach()
    extras = {
        "width": plan.width,
        "chaos_events_seen": len(logic.chaos_events),
        "reroutes": len(system.elastic.reroutes),
        "reclaims": len(system.elastic.reclaims),
        "rescales": len(system.elastic.history),
        "fifo_violations": len(fifo.violations),
        # reliable-transport extras (0 on best_effort): link faults hit
        # the ack path too, so a lossy campaign drops acks and the
        # sender must retransmit-and-dedup its way back to exactly-once
        "acks_dropped": system.transport.acks_dropped,
        "replay_stalls": system.transport.replay_stalls,
    }
    return scorecard, extras


# ---------------------------------------------------------------------------
# the four checkpoint-enabled campaigns
# ---------------------------------------------------------------------------


def campaign_rolling_channel_outage(seed=SEED, batch_max_size=1,
                                    delivery="best_effort"):
    return run_checkpointed_campaign(
        lambda job: rolling_channel_outage(
            ["work__c0", "work__c1"], start=1.02, stagger=5.0, downtime=1.0
        ),
        run_for=13.0,
        seed=seed,
        batch_max_size=batch_max_size,
        delivery=delivery,
    )


def campaign_gray_network(seed=SEED, batch_max_size=1, delivery="best_effort",
                          loss_probability=0.0):
    """``loss_probability > 0`` adds a seeded drop window to each wave —
    the configuration the reliable-delivery modes exist to survive."""
    return run_checkpointed_campaign(
        lambda job: gray_network(
            start=1.02,
            waves=3,
            every=4.0,
            extra_latency=0.05,
            spike_length=1.5,
            partition_length=0.6,
            loss_probability=loss_probability,
        ),
        run_for=14.0,
        seed=seed,
        batch_max_size=batch_max_size,
        delivery=delivery,
    )


def campaign_flash_crowd(seed=SEED, batch_max_size=1, delivery="best_effort"):
    return run_checkpointed_campaign(
        lambda job: flash_crowd(
            at=1.02,
            factor=3.0,
            duration=6.0,
            hot_fraction=0.8,
            hot_keys=("k0", "k1"),
            rescale_region="region",
            rescale_width=4,
        ),
        run_for=12.0,
        seed=seed,
        batch_max_size=batch_max_size,
        delivery=delivery,
    )


def campaign_torn_checkpoints(seed=SEED, batch_max_size=1,
                              delivery="best_effort"):
    return run_checkpointed_campaign(
        lambda job: torn_checkpoints(
            "work__c0",
            start=1.0,
            fault_window=3.0,
            crash_after=1.02,
            downtime=1.5,
        ),
        run_for=13.0,
        seed=seed,
        batch_max_size=batch_max_size,
        delivery=delivery,
    )


# ---------------------------------------------------------------------------
# the replica-failover campaign (paper semantics: no checkpoints)
# ---------------------------------------------------------------------------

FAILOVER_LIMIT = 720  # tuples per replica feed (18 s at 40 tuples/s)


def build_failover_app(name="ChaosFailover"):
    app = Application(name)
    app.declare_parameter("replica", "0")  # FailoverOrca tags each job
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={
            # per-instance feeds: each replica gets its own identically
            # seeded workload (and a restarted source restarts its own)
            "generator_factory": lambda: ChaosFeed(
                n_keys=N_KEYS, base_rate=2, seed=5
            ).generator(),
            "period": 0.05,
            "limit": FAILOVER_LIMIT,
        },
        partition="feed",
    )
    work = g.add_operator("work", KeyedCounter, params={"key": "key"})
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


def campaign_rolling_host_outage(seed=SEED, batch_max_size=1,
                                 delivery="best_effort"):
    """Host outage under the replica-failover orchestrator.

    The active replica's host dies; FailoverOrca promotes the oldest
    healthy backup and restarts the failed PEs (restart-empty, the
    paper's semantics).  Scored on the *promoted* replica — its output
    must be loss-free across the outage — while the crashed replica's
    restart-empty state recovery is reported as the honest contrast.
    """
    system = SystemS(
        hosts=12,
        seed=seed,
        config=SystemConfig(batch_max_size=batch_max_size, delivery=delivery),
    )
    fifo = FifoProbe(system.transport)
    app = build_failover_app()
    logic = FailoverOrca(app_name=app.name, n_replicas=3)
    service = system.submit_orchestrator(
        OrcaDescriptor(
            name="Failover",
            logic=lambda: logic,
            applications=[ManagedApplication(name=app.name, application=app)],
        )
    )
    system.run_for(WARMUP)
    active_id = logic.active_job_id()
    active_job = service.job(active_id)
    victim_host = active_job.pe_of_operator("work").host_name
    scenario = rolling_host_outage(
        [victim_host], start=1.02, downtime=6.0, rehydrate=False
    )
    run = system.chaos.run_scenario(scenario, job=active_job)
    # Probe the crashed replica's state right after its restart-empty
    # recovery completes: scoring at end-of-run would let the replayed
    # feed *recount* the lost state and mask the loss.
    post_restart_state: Dict = {}
    system.kernel.schedule_at(
        run.step_times[0] + 5.5,
        lambda: post_restart_state.update(live_keyed_state(active_job, ["work"])),
    )
    system.run_for(32.0)  # outage, detection, failover, feeds finish, drain

    promoted_id = logic.failovers[0][2] if logic.failovers else active_id
    promoted_job = service.job(promoted_id)
    sink_op = promoted_job.operator_instance("sink")
    seqs = [t["seq"] for t in sink_op.seen]
    final_state = post_restart_state
    scorecard = collect_scorecard(
        system,
        run,
        seed,
        seqs,
        FAILOVER_LIMIT,
        final_state=final_state,
        orca=service,
    )
    fifo.detach()
    extras = {
        "failovers": len(logic.failovers),
        "promoted": promoted_id,
        "crashed": active_id,
        "fifo_violations": len(fifo.violations),
    }
    return scorecard, extras


# ---------------------------------------------------------------------------
# the benchmark
# ---------------------------------------------------------------------------

CAMPAIGNS = [
    ("rolling_channel_outage", campaign_rolling_channel_outage, True),
    ("gray_network", campaign_gray_network, True),
    ("flash_crowd", campaign_flash_crowd, True),
    ("torn_checkpoints", campaign_torn_checkpoints, True),
    ("rolling_host_outage", campaign_rolling_host_outage, False),
]


def run_all():
    results = {}
    for name, runner, checkpointed in CAMPAIGNS:
        first_card, extras = runner()
        second_card, _ = runner()  # fresh system, same seed
        results[name] = {
            "card": first_card,
            "repeat": second_card,
            "extras": extras,
            "checkpointed": checkpointed,
        }
    return results


def test_chaos_campaigns(benchmark, results_dir):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = []
    for name, result in results.items():
        card = result["card"]
        lines.append(f"===== campaign: {name} =====")
        lines.extend(card.lines())
        lines.append(f"extras: {result['extras']}")
        lines.append(
            "determinism: scorecards byte-identical across repeat runs: "
            f"{card.render() == result['repeat'].render()}"
        )
        lines.append("")
    emit(results_dir, "chaos_campaigns", lines)

    for name, result in results.items():
        card = result["card"]
        # determinism: two fresh runs on the same seed, identical text
        assert card.render() == result["repeat"].render(), name
        assert card.injections > 0, name
        assert card.step_errors == 0, name
        assert card.orca_handler_errors == 0, name
        if result["checkpointed"]:
            # the acceptance bar: zero tuple loss and >= 99% keyed-state
            # recovery for every checkpoint-enabled configuration
            assert card.tuples_lost == 0, name
            assert card.duplicates == 0, name
            assert card.state_recovery >= 0.99, name
            assert card.unrecovered_faults == 0, name

    # campaign-specific shape assertions
    outage = results["rolling_channel_outage"]
    assert outage["extras"]["reclaims"] >= 2  # both flaps reclaimed state
    assert outage["card"].recovery_times  # crash-to-recovered measured
    crowd = results["flash_crowd"]
    assert crowd["extras"]["width"] == 4  # the mid-surge rescale landed
    assert crowd["extras"]["rescales"] == 1
    torn = results["torn_checkpoints"]
    assert torn["card"].injections_by_kind.get("checkpoint_fault") == 1
    failover = results["rolling_host_outage"]
    assert failover["extras"]["failovers"] >= 1
    # the promoted replica lost nothing across the outage
    assert failover["card"].tuples_lost == 0
    # restart-empty semantics: the crashed replica's state did NOT fully
    # recover — the contrast the checkpoint subsystem closes
    assert failover["card"].state_recovery < 0.99


def test_chaos_campaigns_batched(results_dir):
    """All five presets stay green over the batched transport hot path.

    ``batch_max_size=8`` (linger 0: flush at the end of each kernel
    instant, so crash instants placed between source ticks observe no
    open batches) with the FIFO probe attached end to end.  The
    checkpointed presets must keep the exact-loss and state-conservation
    bars; every preset must deliver strictly FIFO per connection.
    """
    lines = []
    for name, runner, checkpointed in CAMPAIGNS:
        card, extras = runner(batch_max_size=8)
        lines.append(f"===== campaign: {name} (batch_max_size=8) =====")
        lines.extend(card.lines())
        lines.append(f"extras: {extras}")
        lines.append("")
        assert card.injections > 0, name
        assert card.step_errors == 0, name
        assert card.orca_handler_errors == 0, name
        assert extras["fifo_violations"] == 0, name
        if checkpointed:
            assert card.tuples_lost == 0, name
            assert card.duplicates == 0, name
            assert card.state_recovery >= 0.99, name
            assert card.unrecovered_faults == 0, name
        else:
            # failover preset: the promoted replica is still loss-free
            assert card.tuples_lost == 0, name
    emit(results_dir, "chaos_campaigns_batched", lines)


def test_chaos_smoke_determinism(results_dir):
    """The CI chaos-smoke check: one fast preset, two runs, identical
    scorecards (byte-for-byte)."""
    first_card, extras = campaign_rolling_channel_outage()
    second_card, _ = campaign_rolling_channel_outage()
    assert first_card.render() == second_card.render()
    assert first_card.tuples_lost == 0
    assert first_card.state_recovery >= 0.99
    emit(results_dir, "chaos_smoke", first_card.lines())


# ---------------------------------------------------------------------------
# delivery guarantees: exactly-once presets + the delivery matrix
# ---------------------------------------------------------------------------

EO_CAMPAIGNS = [
    (
        "rolling_channel_outage",
        lambda: campaign_rolling_channel_outage(
            batch_max_size=8, delivery="exactly_once"
        ),
        True,
    ),
    (
        # the gray network turns actively lossy for the reliable run: a
        # seeded drop window rides each wave, and the wire must recover
        # every casualty
        "gray_network",
        lambda: campaign_gray_network(
            batch_max_size=8, delivery="exactly_once", loss_probability=0.25
        ),
        True,
    ),
    (
        "flash_crowd",
        lambda: campaign_flash_crowd(batch_max_size=8, delivery="exactly_once"),
        True,
    ),
    (
        "torn_checkpoints",
        lambda: campaign_torn_checkpoints(
            batch_max_size=8, delivery="exactly_once"
        ),
        True,
    ),
    (
        "rolling_host_outage",
        lambda: campaign_rolling_host_outage(
            batch_max_size=8, delivery="exactly_once"
        ),
        False,
    ),
]


def test_chaos_campaigns_exactly_once(results_dir):
    """All five presets under ``delivery="exactly_once"`` (batched, size
    8), each run twice on fresh systems: byte-identical scorecards, zero
    tuple loss, zero duplicates — with no loss-forgiveness path (the
    scorecard's state-recovery fraction is judged against the at-crash
    snapshots and must hold the full 1.0 bar for the checkpointed
    presets).  Each preset's scorecard is committed as a
    ``<name>.eo.scorecard.txt`` artifact."""
    for name, runner, checkpointed in EO_CAMPAIGNS:
        card, extras = runner()
        repeat, _ = runner()
        assert card.render() == repeat.render(), name
        assert card.delivery == "exactly_once", name
        assert card.injections > 0, name
        assert card.step_errors == 0, name
        assert card.orca_handler_errors == 0, name
        assert extras["fifo_violations"] == 0, name
        # the tightened bar: nothing lost, nothing duplicated — at-crash
        # conservation with no forgiveness, not the best-effort
        # "condemned losses are accounted" escape hatch
        assert card.tuples_lost == 0, name
        assert card.duplicates == 0, name
        if checkpointed:
            assert card.state_recovery == 1.0, name
            assert card.unrecovered_faults == 0, name
        emit(results_dir, f"{name}.eo.scorecard", card.lines())


def test_delivery_matrix(results_dir):
    """The CI delivery-matrix check: one fixed-seed lossy gray-network
    campaign under all three delivery modes — plus a lossy-ack variant
    that doubles the drop probability — each run twice: byte-identical
    scorecards per mode, and the guarantees gate exactly what each mode
    promises (best-effort loses for real, at-least-once recovers the
    losses, exactly-once recovers them without a single duplicate).

    Link faults apply to *both* directions of a link, so every lossy
    row also loses acknowledgements: the reliable rows must retransmit
    through lost acks, and the exactly-once rows must dedup the
    resulting redundant copies without dropping or double-delivering a
    single tuple."""
    lines = []
    cards = {}
    extras_by_mode = {}
    matrix = [
        ("best_effort", 0.25),
        ("at_least_once", 0.25),
        ("exactly_once", 0.25),
        # the lossy-ack variant: at p=0.5 per wave, ack losses (and the
        # retransmit storms they cause) dominate the recovery path
        ("exactly_once@heavy_loss", 0.5),
    ]
    for label, loss in matrix:
        delivery = label.split("@")[0]
        run = lambda: campaign_gray_network(  # noqa: E731
            batch_max_size=8, delivery=delivery, loss_probability=loss
        )
        card, extras = run()
        repeat, _ = run()
        assert card.render() == repeat.render(), label
        assert card.step_errors == 0, label
        cards[label] = card
        extras_by_mode[label] = extras
        lines.append(f"===== delivery: {label} =====")
        lines.extend(card.lines())
        lines.append(f"extras: {extras}")
        lines.append("")

    assert cards["best_effort"].tuples_lost > 0  # the drops are real
    assert cards["best_effort"].retransmissions == 0
    assert cards["at_least_once"].tuples_lost == 0
    assert cards["at_least_once"].retransmissions > 0
    assert cards["exactly_once"].tuples_lost == 0  # the zero-loss gate
    assert cards["exactly_once"].duplicates == 0
    assert cards["exactly_once"].retransmissions > 0
    # the lossy-ack oracles: acks really were lost, and exactly-once
    # still converged to zero loss and zero duplicates
    for label in ("exactly_once", "exactly_once@heavy_loss"):
        assert extras_by_mode[label]["acks_dropped"] > 0, label
        assert cards[label].tuples_lost == 0, label
        assert cards[label].duplicates == 0, label
    emit(results_dir, "delivery_matrix", lines)
