"""Ablation — Fig. 1's embedded adaptation vs. the orchestrator.

The paper's motivating argument (Sec. 1): embedding the control logic in
the stream graph (extra operators op8/op9) works, but couples control and
data processing — "neither the data processing logic nor the adaptation
logic can be reused by other applications".

This ablation runs BOTH designs on the same shifted workload and
compares:

* adaptation effectiveness — both must trigger the model recomputation
  after the shift and recover (shape equal);
* coupling — the embedded variant carries extra control operators in the
  application graph, the orchestrated variant keeps the graph pure and
  the policy in a reusable ORCA class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import ManagedApplication, OrcaDescriptor, SystemS
from repro.apps.datastore import CauseModelStore, CorpusStore
from repro.apps.hadoop import SimulatedHadoopCluster
from repro.apps.orchestrators import SentimentOrca, orca_logic_loc
from repro.apps.sentiment import (
    build_embedded_adaptation_application,
    build_sentiment_application,
)
from repro.apps.workloads import TweetWorkload

from benchmarks.conftest import emit

HORIZON = 400.0


@dataclass
class VariantResult:
    trigger_times: list
    final_causes: tuple
    graph_operator_count: int
    control_operator_count: int


def run_embedded_variant() -> VariantResult:
    system = SystemS(hosts=4, seed=42)
    corpus = CorpusStore()
    models = CauseModelStore(("flash", "screen"))
    hadoop = SimulatedHadoopCluster(system.kernel, corpus, models, duration=30.0)
    triggers = []

    def script():
        triggers.append(system.now)
        hadoop.submit_cause_recomputation()

    app = build_embedded_adaptation_application(
        TweetWorkload(seed=7, rate=20), corpus, models, script=script
    )
    system.submit_job(app)
    system.run_for(HORIZON)
    control_ops = [
        name
        for name in app.graph.operators
        if name in ("op8", "op9")
    ]
    return VariantResult(
        trigger_times=triggers,
        final_causes=tuple(sorted(models.current.causes)),
        graph_operator_count=len(app.graph.operators),
        control_operator_count=len(control_ops),
    )


def run_orchestrated_variant() -> VariantResult:
    system = SystemS(hosts=4, seed=42)
    corpus = CorpusStore()
    models = CauseModelStore(("flash", "screen"))
    hadoop = SimulatedHadoopCluster(system.kernel, corpus, models, duration=30.0)
    app = build_sentiment_application(
        TweetWorkload(seed=7, rate=20), corpus, models
    )
    logic = SentimentOrca(hadoop)
    system.submit_orchestrator(
        OrcaDescriptor(
            name="S",
            logic=lambda: logic,
            applications=[ManagedApplication(name=app.name, application=app)],
            metric_poll_interval=1.0,
        )
    )
    system.run_for(HORIZON)
    return VariantResult(
        trigger_times=list(logic.trigger_times),
        final_causes=tuple(sorted(models.current.causes)),
        graph_operator_count=len(app.graph.operators),
        control_operator_count=0,
    )


def test_embedded_vs_orchestrated(benchmark, results_dir):
    def run_both():
        return run_embedded_variant(), run_orchestrated_variant()

    embedded, orchestrated = benchmark.pedantic(run_both, rounds=1, iterations=1)

    lines = [
        f"{'':<28} {'embedded (Fig. 1)':>18} {'orchestrated':>14}",
        f"{'graph operators':<28} {embedded.graph_operator_count:>18} "
        f"{orchestrated.graph_operator_count:>14}",
        f"{'control ops inside graph':<28} {embedded.control_operator_count:>18} "
        f"{orchestrated.control_operator_count:>14}",
        f"{'policy location':<28} {'welded into graph':>18} "
        f"{'SentimentOrca':>14}",
        f"{'policy LoC (reusable)':<28} {'n/a':>18} "
        f"{orca_logic_loc(SentimentOrca):>14}",
        f"{'triggers':<28} {str(embedded.trigger_times):>18} "
        f"{str(orchestrated.trigger_times):>14}",
        f"{'final causes':<28} {str(embedded.final_causes):>18} "
        f"{str(orchestrated.final_causes):>14}",
    ]
    emit(results_dir, "ablation_embedded", lines)

    # Both designs adapt: one trigger after the shift, model refreshed.
    assert len(embedded.trigger_times) == 1
    assert len(orchestrated.trigger_times) == 1
    assert 250.0 <= embedded.trigger_times[0] <= 300.0
    assert 250.0 <= orchestrated.trigger_times[0] <= 300.0
    assert "antenna" in embedded.final_causes
    assert "antenna" in orchestrated.final_causes
    # The coupling cost is structural: extra control operators in the graph.
    assert embedded.control_operator_count == 2
    assert orchestrated.control_operator_count == 0
    assert (
        embedded.graph_operator_count > orchestrated.graph_operator_count
    )
