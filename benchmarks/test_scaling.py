"""Scale ablations for the design choices DESIGN.md calls out.

1. **Event delivery throughput** — the ORCA service delivers events one
   at a time from a FIFO (Sec. 4.2); this measures deliveries/second of
   the queue + dispatch machinery in isolation.
2. **Tuple delivery throughput** — the transport's one-at-a-time hot
   path vs the end-to-end batched path (``batch_max_size > 1``): same
   wire, same tuples, kernel events and dispatch amortized across whole
   batches.  The CI ``batch-perf-smoke`` job (``BATCH_PERF_STRICT=1``)
   gates the batched rate at >= 5x the unbatched rate measured on the
   same runner in the same run.
3. **Dependency bring-up at scale** — the submission-thread algorithm
   walks snapshots and sleeps per uptime requirement; this measures
   bring-up latency and scheduling work for chains and fan-ins far
   larger than Fig. 7's six applications.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List

from repro import (
    ManagedApplication,
    Orchestrator,
    OrcaDescriptor,
    SystemConfig,
    SystemS,
)
from repro.orca.scopes import UserEventScope
from repro.spl.application import Application
from repro.spl.library import Beacon, Custom, Sink
from repro.spl.tuples import StreamTuple

from benchmarks.conftest import best_of, emit

#: strict speedup floor, enforced when BATCH_PERF_STRICT=1 (the CI
#: batch-perf-smoke job); outside CI a lenient floor guards against
#: gross regressions without flaking on loaded machines
STRICT_SPEEDUP_FLOOR = 5.0
LENIENT_SPEEDUP_FLOOR = 2.0


class CountingOrca(Orchestrator):
    def __init__(self):
        super().__init__()
        self.count = 0

    def handleOrcaStart(self, context):
        self.orca.registerEventScope(UserEventScope("u"))

    def handleUserEvent(self, context, scopes):
        self.count += 1


def run_event_throughput(n_events: int = 5000, config=None) -> float:
    """Wall-clock events/second through enqueue -> match -> deliver.

    Args:
        n_events: Events to inject.
        config: Optional :class:`~repro.runtime.system.SystemConfig`
            (the obs-overhead benchmark passes traced variants).
    """
    system = SystemS(hosts=1, config=config)
    logic = CountingOrca()
    service = system.submit_orchestrator(
        OrcaDescriptor(name="C", logic=lambda: logic, applications=[])
    )
    system.run_for(0.1)
    start = time.perf_counter()
    for i in range(n_events):
        service.inject_user_event("tick", {"i": i})
    system.run_for(0.1)
    elapsed = time.perf_counter() - start
    assert logic.count == n_events
    return n_events / elapsed


def run_tuple_delivery_throughput(
    batch_max_size: int = 1, n_tuples: int = 100_000, chunk: int = 64
) -> float:
    """Wall-clock tuples/second across one inter-PE wire.

    A quiet two-PE pipeline (inert source, non-recording sink) is driven
    by hand: pre-built tuples go to ``Transport.send_batch`` in runs of
    ``chunk``, then the kernel drains the wire.  With
    ``batch_max_size=1`` this is exactly today's one-event-per-tuple
    path; with ``batch_max_size=chunk`` every run crosses as one
    :class:`~repro.spl.tuples.TupleBatch` — one kernel event, one
    delivery, one vectorized operator call.

    Args:
        batch_max_size: Transport batch size trigger (1 = unbatched).
        n_tuples: Total tuples pushed across the wire.
        chunk: Tuples per ``send_batch`` call.
    """
    system = SystemS(
        hosts=2, config=SystemConfig(batch_max_size=batch_max_size)
    )
    app = Application("Wire")
    g = app.graph
    src = g.add_operator(
        "src", Custom, params={"n_inputs": 0, "n_outputs": 1}, partition="a"
    )
    sink = g.add_operator("sink", Sink, params={"record": False}, partition="b")
    g.connect(src.oport(0), sink.iport(0))
    job = system.submit_job(app)
    system.run_for(0.5)
    src_pe = job.pe_of_operator("src")
    sink_pe = job.pe_of_operator("sink")
    transport = system.transport
    tuples = [StreamTuple({"iter": i}) for i in range(n_tuples)]
    delivered_before = transport.total_delivered
    start = time.perf_counter()
    for base in range(0, n_tuples, chunk):
        transport.send_batch(
            sink_pe, "sink", 0, tuples[base:base + chunk], src_pe=src_pe
        )
    system.run_for(1.0)
    elapsed = time.perf_counter() - start
    assert transport.total_delivered - delivered_before == n_tuples
    return n_tuples / elapsed


def test_event_delivery_throughput(benchmark, results_dir):
    # Every rate is a best-of-3 (see conftest.best_of): this file is the
    # committed baseline the obs-overhead CI gate enforces a 5% floor
    # against, so a single round polluted by unrelated machine load
    # would silently lower that floor for every future run.
    rate = benchmark.pedantic(
        lambda: best_of(run_event_throughput), rounds=1, iterations=1
    )
    unbatched = best_of(lambda: run_tuple_delivery_throughput(batch_max_size=1))
    batched = best_of(lambda: run_tuple_delivery_throughput(batch_max_size=64))
    speedup = batched / unbatched
    emit(
        results_dir,
        "scaling_event_throughput",
        [
            f"one-at-a-time FIFO delivery rate: {rate:,.0f} events/s",
            "",
            "tuple delivery across one inter-PE wire (100k tuples):",
            f"  one-at-a-time (batch_max_size=1):  {unbatched:,.0f} tuples/s",
            f"  batched (batch_max_size=64):       {batched:,.0f} tuples/s",
            f"  batched speedup: {speedup:.1f}x",
        ],
    )
    assert rate > 10_000  # the queue must not be the bottleneck
    floor = (
        STRICT_SPEEDUP_FLOOR
        if os.environ.get("BATCH_PERF_STRICT")
        else LENIENT_SPEEDUP_FLOOR
    )
    assert speedup >= floor, (
        f"batched delivery only {speedup:.1f}x the one-at-a-time rate "
        f"(floor {floor:.0f}x)"
    )


def tiny_app(name: str) -> Application:
    app = Application(name)
    g = app.graph
    src = g.add_operator("src", Beacon, params={"values": {}})
    sink = g.add_operator("sink", Sink, params={"record": False})
    g.connect(src.oport(0), sink.iport(0))
    return app


class ChainOrca(Orchestrator):
    """Builds a dependency chain a0 <- a1 <- ... and starts the head."""

    def __init__(self, depth: int, uptime: float):
        super().__init__()
        self.depth = depth
        self.uptime = uptime

    def handleOrcaStart(self, context):
        deps = self.orca.deps
        for i in range(self.depth):
            deps.create_app_config(f"a{i}", f"a{i}")
        for i in range(1, self.depth):
            deps.register_dependency(f"a{i}", f"a{i-1}", self.uptime)
        deps.start(f"a{self.depth - 1}")


@dataclass
class DependencyScaleResult:
    depths: List[int]
    bring_up_times: List[float]
    fanin_time: float
    fanin_width: int


def run_dependency_scale() -> DependencyScaleResult:
    uptime = 2.0
    depths = [2, 8, 24]
    times = []
    for depth in depths:
        system = SystemS(hosts=4)
        logic = ChainOrca(depth, uptime)
        service = system.submit_orchestrator(
            OrcaDescriptor(
                name="Chain",
                logic=lambda: logic,
                applications=[
                    ManagedApplication(name=f"a{i}", application=tiny_app(f"a{i}"))
                    for i in range(depth)
                ],
            )
        )
        horizon = depth * uptime + 10.0
        system.run_for(horizon)
        head = f"a{depth - 1}"
        assert service.deps.is_running(head), f"chain of {depth} never completed"
        times.append(service.deps.submit_time_of(head))

    # fan-in: one app depending on N leaves with staggered uptimes
    width = 30
    system = SystemS(hosts=4)

    class FanInOrca(Orchestrator):
        def handleOrcaStart(self, context):
            deps = self.orca.deps
            deps.create_app_config("top", "top")
            for i in range(width):
                deps.create_app_config(f"leaf{i}", f"leaf{i}")
                deps.register_dependency("top", f"leaf{i}", float(i % 7))
            deps.start("top")

    apps = [ManagedApplication(name="top", application=tiny_app("top"))]
    apps += [
        ManagedApplication(name=f"leaf{i}", application=tiny_app(f"leaf{i}"))
        for i in range(width)
    ]
    service = system.submit_orchestrator(
        OrcaDescriptor(name="FanIn", logic=FanInOrca, applications=apps)
    )
    system.run_for(20.0)
    assert service.deps.is_running("top")
    return DependencyScaleResult(
        depths=depths,
        bring_up_times=times,
        fanin_time=service.deps.submit_time_of("top"),
        fanin_width=width,
    )


def test_dependency_bring_up_scale(benchmark, results_dir):
    result = benchmark.pedantic(run_dependency_scale, rounds=1, iterations=1)

    lines = [f"{'chain depth':>12}  {'head submitted at (s)':>22}"]
    for depth, t in zip(result.depths, result.bring_up_times):
        lines.append(f"{depth:12d}  {t:22.1f}")
    lines.append("")
    lines.append(
        f"fan-in of {result.fanin_width} leaves (uptimes 0..6 s): top "
        f"submitted at {result.fanin_time:.1f} s"
    )
    emit(results_dir, "scaling_dependencies", lines)

    # bring-up time = (depth - 1) * uptime exactly: no scheduling slack
    for depth, t in zip(result.depths, result.bring_up_times):
        assert t == (depth - 1) * 2.0
    # fan-in waits for the slowest leaf only (max, not sum)
    assert result.fanin_time == 6.0
