"""Sec. 5 claim — orchestrator logic sizes.

The paper reports the code size of each use-case orchestrator as evidence
that adaptation policies are small once control logic is separated from
data processing: 114 (sentiment), 196 (failover) and 139 (composition)
lines of C++.  This benchmark reports our Python equivalents and checks
they stay in the same small-policy ballpark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.apps.orchestrators import (
    CompositionOrca,
    FailoverOrca,
    SentimentOrca,
    orca_logic_loc,
)

from benchmarks.conftest import emit

PAPER_LOC = {"sentiment (5.1)": 114, "failover (5.2)": 196, "composition (5.3)": 139}
OUR_CLASSES = {
    "sentiment (5.1)": SentimentOrca,
    "failover (5.2)": FailoverOrca,
    "composition (5.3)": CompositionOrca,
}


@dataclass
class LocResult:
    rows: Dict[str, tuple]


def run_loc_table() -> LocResult:
    rows = {}
    for name, paper in PAPER_LOC.items():
        ours = orca_logic_loc(OUR_CLASSES[name])
        rows[name] = (paper, ours)
    return LocResult(rows=rows)


def test_orca_logic_loc_table(benchmark, results_dir):
    result = benchmark.pedantic(run_loc_table, rounds=1, iterations=1)

    lines = [f"{'use case':<20} {'paper (C++)':>12} {'ours (Python)':>14}"]
    for name, (paper, ours) in result.rows.items():
        lines.append(f"{name:<20} {paper:>12} {ours:>14}")
    emit(results_dir, "loc_table", lines)

    for name, (paper, ours) in result.rows.items():
        # Shape: policies stay small (the paper's point) — same order of
        # magnitude as the C++ originals, never larger than 2x.  Exact
        # ordering between use cases is a language-density artifact and
        # is not asserted.
        assert ours < 2.0 * paper, f"{name}: {ours} lines vs paper {paper}"
        assert ours > 20, f"{name}: suspiciously tiny ({ours} lines)"
