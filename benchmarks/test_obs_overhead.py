"""Overhead gate of the repro.obs instrumentation (CI ``obs-overhead``).

Two claims are measured:

1. **Tracing off costs (almost) nothing.**  With
   ``SystemConfig.trace_enabled=False`` (the default) the data-plane
   hot paths pay one ``None`` check per tuple/delivery and the kernel
   runs untapped.  The gate replays the exact workload of the committed
   ``benchmarks/results/scaling_event_throughput.txt`` baseline and —
   when ``OBS_OVERHEAD_STRICT=1`` (set by the CI job, which regenerates
   the baseline on the same runner first) — fails if the tracing-off
   rate regresses more than 5% below it.  Outside CI the wall-clock
   comparison is advisory (different machines, committed numbers), and
   only the absolute floor is asserted.
2. **Tracing on is bounded, and sampling thins it.**  The traced
   pipeline rate is reported at ``sample_every`` 1 and 16 so the
   knob's effect is visible in the committed result file.
3. **The always-on health plane rides inside the same envelope.**  The
   default config ticks :class:`~repro.obs.health.HealthMonitor` every
   0.5 sim-seconds; the gate compares that against a run with the
   plane disabled (``health_interval=0``) and — under
   ``OBS_OVERHEAD_STRICT=1`` — fails if the always-on ticks cost more
   than the same 5% budget.  A hot 0.1 s interval is reported alongside
   so the knob's cost curve is visible.
"""

from __future__ import annotations

import os
import re
import time
from typing import Optional

from repro import SystemS
from repro.runtime.system import SystemConfig
from repro.spl.application import Application
from repro.spl.library import CallbackSource, KeyedCounter, Sink

from benchmarks.conftest import RESULTS_DIR, best_of, emit
from benchmarks.test_scaling import run_event_throughput

#: CI regression budget vs the committed event-throughput baseline
MAX_REGRESSION = 0.05

BASELINE_FILE = RESULTS_DIR / "scaling_event_throughput.txt"
BASELINE_RE = re.compile(r"rate:\s*([\d,]+)\s*events/s")


def committed_baseline() -> Optional[float]:
    """The committed event-throughput baseline, if present."""
    if not BASELINE_FILE.exists():
        return None
    match = BASELINE_RE.search(BASELINE_FILE.read_text())
    if match is None:
        return None
    return float(match.group(1).replace(",", ""))


def pipeline_app(n_tuples: int) -> Application:
    app = Application("ObsOverhead")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={
            "generator": lambda now, count: [{"key": f"k{count % 8}"}],
            "period": 0.001,
            "limit": n_tuples,
        },
        partition="feed",
    )
    work = g.add_operator("work", KeyedCounter, params={"key": "key"})
    sink = g.add_operator("sink", Sink, params={"record": False}, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


def run_pipeline_throughput(
    config: Optional[SystemConfig] = None, n_tuples: int = 3000
) -> float:
    """Wall-clock source tuples/second through a src->work->sink job."""
    system = SystemS(hosts=1, config=config)
    system.submit_job(pipeline_app(n_tuples))
    horizon = n_tuples * 0.001 + 1.0
    start = time.perf_counter()
    system.run_for(horizon)
    elapsed = time.perf_counter() - start
    return n_tuples / elapsed


def test_tracing_off_overhead_gate(results_dir):
    baseline = committed_baseline()
    off_rate = best_of(lambda: run_event_throughput())

    pipe_off = best_of(lambda: run_pipeline_throughput())
    pipe_traced = best_of(
        lambda: run_pipeline_throughput(SystemConfig(trace_enabled=True))
    )
    pipe_sampled = best_of(
        lambda: run_pipeline_throughput(
            SystemConfig(trace_enabled=True, trace_sample_every=16)
        )
    )
    # the default config already runs the health plane (0.5 s ticks),
    # so ``pipe_off`` is the health-on number; measure it disabled and
    # at an aggressively hot interval for the cost curve
    pipe_no_health = best_of(
        lambda: run_pipeline_throughput(SystemConfig(health_interval=0.0))
    )
    pipe_hot_health = best_of(
        lambda: run_pipeline_throughput(SystemConfig(health_interval=0.1))
    )

    lines = [
        f"committed event-throughput baseline: "
        + (f"{baseline:,.0f} events/s" if baseline else "(missing)"),
        f"tracing off, event delivery: {off_rate:,.0f} events/s"
        + (
            f" ({off_rate / baseline - 1.0:+.1%} vs baseline)"
            if baseline
            else ""
        ),
        f"tracing off, tuple pipeline: {pipe_off:,.0f} tuples/s",
        f"tracing on (sample_every=1), tuple pipeline: "
        f"{pipe_traced:,.0f} tuples/s ({pipe_traced / pipe_off:.2f}x of off)",
        f"tracing on (sample_every=16), tuple pipeline: "
        f"{pipe_sampled:,.0f} tuples/s ({pipe_sampled / pipe_off:.2f}x of off)",
        f"health plane off (interval=0), tuple pipeline: "
        f"{pipe_no_health:,.0f} tuples/s",
        f"health plane on (interval=0.5, default), tuple pipeline: "
        f"{pipe_off:,.0f} tuples/s ({pipe_off / pipe_no_health:.2f}x of off)",
        f"health plane hot (interval=0.1), tuple pipeline: "
        f"{pipe_hot_health:,.0f} tuples/s "
        f"({pipe_hot_health / pipe_no_health:.2f}x of off)",
    ]
    emit(results_dir, "obs_overhead", lines)

    # the absolute floor always holds (same bar as the scaling benchmark)
    assert off_rate > 10_000
    assert pipe_off > 1_000
    if os.environ.get("OBS_OVERHEAD_STRICT") == "1":
        assert baseline is not None, "strict gate needs the committed baseline"
        floor = baseline * (1.0 - MAX_REGRESSION)
        # wall-clock benchmarks jitter across processes even on one
        # runner: before declaring a regression, give the subject more
        # rounds to reach its actual peak
        for _ in range(3):
            if off_rate >= floor:
                break
            off_rate = max(off_rate, best_of(lambda: run_event_throughput()))
        assert off_rate >= floor, (
            f"tracing-off throughput {off_rate:,.0f} events/s regressed "
            f">{MAX_REGRESSION:.0%} below the committed baseline "
            f"{baseline:,.0f} events/s"
        )
        # the always-on health plane must stay inside the same budget;
        # re-measure before declaring a regression (wall-clock jitter)
        health_floor = pipe_no_health * (1.0 - MAX_REGRESSION)
        for _ in range(3):
            if pipe_off >= health_floor:
                break
            pipe_off = max(pipe_off, best_of(run_pipeline_throughput))
        assert pipe_off >= health_floor, (
            f"always-on health plane costs >{MAX_REGRESSION:.0%}: "
            f"{pipe_off:,.0f} tuples/s with 0.5s ticks vs "
            f"{pipe_no_health:,.0f} tuples/s disabled"
        )
