"""Checkpointing & crash-recovery benchmark (the repro.checkpoint layer).

Four claims, each impossible on the seed's no-checkpoint semantics:

* **crash-restart recovery** — with periodic checkpointing, a crashed
  PE's ``restart(rehydrate=True)`` restores >= 99% of its keyed state
  from the last committed epoch (the seed restores exactly 0%: a crash
  never produced a snapshot);
* **scale-in merge** — a region's user-defined ``global_merge`` hook
  folds the doomed channels' global state into survivors: zero tuples
  and zero global-state items lost across a 4 -> 2 shrink;
* **unmask reclaim** — a crashed channel's keys continue from its
  checkpoint on the detour channels (mask-time seeding) and the accrued
  state returns home at unmask (reclaim): zero tuple loss and per-key
  counts stay *contiguous* across the whole crash/detour/restart cycle;
* **steady-state overhead** — incremental dirty-tracked captures keep
  the checkpointing tax on a hot streaming workload under 10% CPU
  time, and the ORCA event-delivery path stays above the seed's
  10k events/s bar with checkpointing active.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, List

from repro import Orchestrator, OrcaDescriptor, SystemS
from repro.orca.scopes import UserEventScope
from repro.runtime.system import SystemConfig
from repro.spl.application import Application
from repro.spl.library import CallbackSource, KeyedCounter, Sink, stable_channel_of
from repro.spl.operators import Operator
from repro.spl.parallel import parallel

from benchmarks.conftest import emit

N_KEYS = 20


def keyed_generator(n_keys=N_KEYS):
    def generate(now, count):
        return [{"key": f"k{count % n_keys}", "seq": count}]

    return generate


def build_plain_app(period=0.02, limit=None):
    app = Application("CkptPlain")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": keyed_generator(), "period": period, "limit": limit},
        partition="feed",
    )
    work = g.add_operator("work", KeyedCounter, params={"key": "key"})
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


# ---------------------------------------------------------------------------
# 1. crash-restart recovery >= 99% (vs 0% on the seed semantics)
# ---------------------------------------------------------------------------


def run_crash_recovery(checkpoint_interval: float):
    """Crash a keyed-counter PE mid-stream; measure restored keyed state."""
    system = SystemS(
        hosts=6, config=SystemConfig(checkpoint_interval=checkpoint_interval)
    )
    job = system.submit_job(build_plain_app(period=0.02))
    system.run_for(20.0)  # ~1000 tuples counted across 20 keys
    pe = job.pe_of_operator("work")
    crash_counts = dict(pe.operators["work"].state.keyed("counts").items())
    pe.crash("benchmark")
    system.sam.restart_pe(job.job_id, pe.pe_id, rehydrate=True)
    restored: Dict[str, int] = {}
    # scheduled after the restart_pe call, at the same instant the restart
    # completes: the probe sees the restored state before any new tuple
    system.kernel.schedule(
        system.config.pe_restart_delay,
        lambda: restored.update(
            dict(pe.operators["work"].state.keyed("counts").items())
        ),
    )
    system.run_for(3.0)
    total = sum(crash_counts.values())
    recovered = sum(
        min(restored.get(key, 0), count) for key, count in crash_counts.items()
    )
    return recovered / total if total else 0.0, total


# ---------------------------------------------------------------------------
# 2. scale-in global-state merge: zero loss
# ---------------------------------------------------------------------------


class _GlobalCollector(Operator):
    STATEFUL = True

    def __init__(self, ctx):
        super().__init__(ctx)
        self._seen = self.state.global_("collected", default=list)

    def on_tuple(self, tup, port):
        self._seen.value.append(tup["seq"])
        self.submit(tup)

    def on_punct(self, punct, port):
        return


def run_scale_in_merge():
    limit = 400
    app = Application("CkptMerge")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": keyed_generator(), "period": 0.02, "limit": limit},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        _GlobalCollector,
        parallel=parallel(
            width=4,
            name="region",
            partition_by="key",
            max_width=8,
            global_merge=lambda name, survivor, doomed: (survivor or [])
            + (doomed or []),
        ),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))

    system = SystemS(hosts=14)
    job = system.submit_job(app)
    system.run_for(3.0)
    before = set()
    for channel in range(4):
        instance = job.operator_instance(f"work__c{channel}")
        before.update(instance.state.global_("collected").value)
    operation = system.elastic.set_channel_width(job, "region", 2)
    system.run_for(30.0)
    after = set()
    for channel in range(2):
        instance = job.operator_instance(f"work__c{channel}")
        after.update(instance.state.global_("collected").value)
    sink_op = job.operator_instance("sink")
    received = sorted(t["seq"] for t in sink_op.seen)
    return operation, before, after, received, limit


# ---------------------------------------------------------------------------
# 3. unmask reclaim: zero tuple loss, contiguous per-key counts
# ---------------------------------------------------------------------------


def run_crash_detour_reclaim():
    limit = 400
    period = 0.05
    app = Application("CkptReclaim")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": keyed_generator(), "period": period, "limit": limit},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        KeyedCounter,
        params={"key": "key"},
        parallel=parallel(width=2, name="region", partition_by="key", max_width=8),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))

    system = SystemS(
        hosts=12,
        config=SystemConfig(
            checkpoint_interval=0.25,
            # near-instant failure detection keeps the crash window free
            # of in-flight tuples (crash lands between source ticks)
            failure_notification_delay=0.001,
        ),
    )
    job = system.submit_job(app)
    system.run_for(5.02)  # between ticks: region is empty of in-flight work
    system.checkpoints.checkpoint_all()  # zero checkpoint lag at the crash
    dead_pe = job.pe_of_operator("work__c1")
    dead_pe.crash("benchmark")
    system.run_for(3.0)  # detour window: c1's keys flow (seeded) through c0
    system.sam.restart_pe(job.job_id, dead_pe.pe_id, rehydrate=True)
    system.run_for(30.0)  # reclaim at unmask, feed finishes, region drains

    sink_op = job.operator_instance("sink")
    received = [t["seq"] for t in sink_op.seen]
    counts: Dict[str, List[int]] = {}
    for t in sink_op.seen:
        counts.setdefault(t["key"], []).append(t["count"])
    non_contiguous = [
        key
        for key, seq in counts.items()
        if seq != list(range(1, len(seq) + 1))
    ]
    mask = [r for r in system.elastic.reroutes if r.masked][-1]
    reclaim = system.elastic.reclaims[-1]
    return received, non_contiguous, mask, reclaim, limit


# ---------------------------------------------------------------------------
# 4. steady-state overhead
# ---------------------------------------------------------------------------


class _CountingOrca(Orchestrator):
    def __init__(self):
        super().__init__()
        self.count = 0

    def handleOrcaStart(self, context):
        self.orca.registerEventScope(UserEventScope("u"))

    def handleUserEvent(self, context, scopes):
        self.count += 1


def run_streaming_wall_clock(checkpoint_interval: float) -> float:
    """CPU seconds to push a fixed keyed workload through.

    Measured in process CPU time, not wall clock: the sim is
    single-threaded, so preemption by unrelated load on a shared
    machine would otherwise pollute the tight overhead ratio asserted
    below.  GC is paused around the timed window (with a full
    collection just before it) so collector pauses triggered by earlier
    samples' garbage don't land inside this one.
    """
    system = SystemS(
        hosts=6, config=SystemConfig(checkpoint_interval=checkpoint_interval)
    )
    job = system.submit_job(build_plain_app(period=0.01, limit=2000))
    system.run_for(1.0)
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        system.run_for(25.0)  # feed (20 s) + drain; ~50 checkpoint rounds
        elapsed = time.process_time() - start
    finally:
        gc.enable()
    sink_op = job.operator_instance("sink")
    assert len(sink_op.seen) == 2000
    return elapsed


def run_event_throughput_with_checkpointing(n_events: int = 5000) -> float:
    """The seed's event-delivery benchmark, with checkpointing active."""
    system = SystemS(hosts=2, config=SystemConfig(checkpoint_interval=0.25))
    system.submit_job(build_plain_app(period=0.01))
    logic = _CountingOrca()
    service = system.submit_orchestrator(
        OrcaDescriptor(name="C", logic=lambda: logic, applications=[])
    )
    system.run_for(1.0)
    start = time.perf_counter()
    for i in range(n_events):
        service.inject_user_event("tick", {"i": i})
    system.run_for(0.1)
    elapsed = time.perf_counter() - start
    assert logic.count == n_events
    return n_events / elapsed


# ---------------------------------------------------------------------------
# the benchmark
# ---------------------------------------------------------------------------


def run_all():
    recovered, total = run_crash_recovery(checkpoint_interval=0.1)
    seed_recovered, _ = run_crash_recovery(checkpoint_interval=0.0)
    merge_op, merge_before, merge_after, merge_received, merge_limit = (
        run_scale_in_merge()
    )
    received, non_contiguous, mask, reclaim, reclaim_limit = (
        run_crash_detour_reclaim()
    )
    # Timed pairs run back-to-back so a load window on a shared machine
    # hits both sides of each ratio; the batch median rejects outlier
    # pairs.  If the whole batch lands inside a contention window
    # (inflating every pair at once), re-measure — a real overhead
    # regression inflates every batch, so taking the best of up to
    # three batches keeps the 10% bar strict without flaking on noise.
    # The reported ms pair is the median pair of the winning batch, so
    # the printed times and the printed percentage are the same
    # measurement (ckpt_s / base_s - 1 == overhead exactly).
    overhead = None
    base_s = ckpt_s = None
    for _ in range(3):
        pairs = []
        for _ in range(5):
            base = run_streaming_wall_clock(0.0)
            ckpt = run_streaming_wall_clock(0.5)
            pairs.append((ckpt / base, base, ckpt))
        ratio, base, ckpt = sorted(pairs)[len(pairs) // 2]
        if overhead is None or ratio - 1.0 < overhead:
            overhead = ratio - 1.0
            base_s, ckpt_s = base, ckpt
        if overhead < 0.10:
            break
    event_rate = run_event_throughput_with_checkpointing()
    return {
        "recovered": recovered,
        "total": total,
        "seed_recovered": seed_recovered,
        "merge_op": merge_op,
        "merge_before": merge_before,
        "merge_after": merge_after,
        "merge_received": merge_received,
        "merge_limit": merge_limit,
        "received": received,
        "non_contiguous": non_contiguous,
        "mask": mask,
        "reclaim": reclaim,
        "reclaim_limit": reclaim_limit,
        "overhead": overhead,
        "base_s": base_s,
        "ckpt_s": ckpt_s,
        "event_rate": event_rate,
    }


def test_checkpoint_recovery(benchmark, results_dir):
    r = benchmark.pedantic(run_all, rounds=1, iterations=1)

    migration = r["merge_op"].migration
    lines = [
        "crash-restart recovery (checkpoint interval 0.1 s, 50 tuples/s, "
        f"{N_KEYS} keys):",
        f"  keyed state at crash: {r['total']} counts",
        f"  recovered with checkpointing: {r['recovered'] * 100:.2f}%",
        f"  recovered on seed semantics (no checkpoints): "
        f"{r['seed_recovered'] * 100:.2f}%",
        "",
        "scale-in 4 -> 2 with global_merge hook:",
        f"  tuples received: {len(r['merge_received'])}/{r['merge_limit']} "
        f"(exactly once: {r['merge_received'] == list(range(r['merge_limit']))})",
        f"  global states merged: {migration.global_states_merged}, "
        f"dropped: {migration.dropped_global_states}",
        f"  global items before: {len(r['merge_before'])}, retained after: "
        f"{len(r['merge_before'] & r['merge_after'])}",
        "",
        "crash -> seeded detour -> restart -> reclaim (width 2):",
        f"  tuples received: {len(r['received'])}/{r['reclaim_limit']} "
        f"(in order: {r['received'] == sorted(r['received'])})",
        f"  keys seeded onto detours at mask: {r['mask'].seeded_keys}",
        f"  keys reclaimed at unmask: {r['reclaim'].keys_reclaimed} "
        f"(purged: {r['reclaim'].keys_purged})",
        f"  keys with non-contiguous counts (state loss): "
        f"{len(r['non_contiguous'])}",
        "",
        "steady-state overhead (2000 tuples, ~50 checkpoint rounds):",
        f"  no checkpointing: {r['base_s'] * 1000:.1f} ms, "
        f"interval 0.5 s: {r['ckpt_s'] * 1000:.1f} ms "
        f"(overhead {r['overhead'] * 100:+.1f}%)",
        f"  event delivery with checkpointing active: "
        f"{r['event_rate']:,.0f} events/s",
    ]
    emit(results_dir, "checkpoint_recovery", lines)

    # crash-restart: >= 99% recovered with checkpointing, 0% without
    assert r["recovered"] >= 0.99
    assert r["seed_recovered"] == 0.0
    # scale-in merge: zero tuple loss, zero global-state loss
    assert r["merge_received"] == list(range(r["merge_limit"]))
    assert migration.dropped_global_states == 0
    assert migration.global_states_merged == 2
    assert r["merge_before"] <= r["merge_after"]
    # reclaim: zero tuple loss, zero state loss, order preserved
    assert sorted(r["received"]) == list(range(r["reclaim_limit"]))
    assert r["received"] == sorted(r["received"])
    assert r["non_contiguous"] == []
    assert r["mask"].seeded_keys > 0
    assert r["reclaim"].keys_reclaimed > 0 and r["reclaim"].keys_purged == 0
    # steady-state checkpoint overhead < 10%, event path above the seed bar
    assert r["overhead"] < 0.10
    assert r["event_rate"] > 10_000
