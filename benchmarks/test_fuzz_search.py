"""Adversarial fuzz search over the campaign presets (repro.chaos.fuzz).

Three fixed-seed, fixed-budget searches sweep the preset scenarios'
seed/step-time space, re-aiming steps at observed runtime barriers
(rescale phases, checkpoint commits, splitter masks) and maximizing the
oracle-violation / latency objective:

* the **healthy** elastic + checkpoint stack must survive every search
  with zero invariant violations — the presets' robustness claims hold
  under adversarial timing, not just at their declared instants;
* the **weakened** stack (checkpoint commits permanently torn through
  the ``commit_fault`` hook) must be caught within the same budget and
  shrink to a minimal (single-step) repro — the fuzzer finds planted
  bugs, it does not only bless healthy code;
* the whole pipeline is **deterministic**: one search is run twice and
  its summaries diffed byte-for-byte (the CI ``chaos-fuzz`` job mirrors
  this on the test side).

The committed ``results/fuzz_search.txt`` records seeds explored,
barriers targeted, and the worst objective per preset.
"""

from __future__ import annotations

from repro.chaos import (
    Scenario,
    flash_crowd,
    rolling_channel_outage,
    torn_checkpoints,
)
from repro.chaos.fuzz import (
    FuzzBudget,
    FuzzHarnessConfig,
    fuzz_scenario,
    run_fuzz_case,
    shrink_scenario,
)

from benchmarks.conftest import emit

BUDGET = FuzzBudget(seeds=(42, 7), mutation_rounds=3)


def preset_searches():
    """(name, scenario, harness config) per searched preset."""
    return [
        (
            "rolling_channel_outage",
            rolling_channel_outage(
                ["work__c0", "work__c1"], start=1.02, stagger=4.0, downtime=1.0
            ),
            FuzzHarnessConfig(duration=11.0),
        ),
        (
            "torn_checkpoints",
            torn_checkpoints(
                "work__c0", start=1.0, fault_window=3.0,
                crash_after=1.02, downtime=1.5,
            ),
            FuzzHarnessConfig(duration=10.0),
        ),
        (
            "flash_crowd",
            flash_crowd(
                at=1.02, factor=3.0, duration=5.0, hot_keys=("k0", "k1"),
                rescale_region="region", rescale_width=4,
            ),
            FuzzHarnessConfig(duration=10.0),
        ),
    ]


def search(scenario: Scenario, config: FuzzHarnessConfig):
    return fuzz_scenario(
        scenario,
        lambda s, seed: run_fuzz_case(s, config.with_seed(seed)),
        BUDGET,
    )


def run_all():
    results = {}
    for name, scenario, config in preset_searches():
        results[name] = search(scenario, config)

    # the planted weakness: torn commits on an otherwise healthy config
    weak_config = FuzzHarnessConfig(duration=8.0, torn_commits=True)
    weak_scenario = rolling_channel_outage(
        ["work__c0"], start=1.02, downtime=1.0
    )
    weak_report = search(weak_scenario, weak_config)
    worst = weak_report.worst
    shrunk = shrink_scenario(
        worst.scenario,
        lambda s: bool(
            run_fuzz_case(s, weak_config.with_seed(worst.seed)).violations
        ),
    )

    # determinism: the cheapest preset's search, repeated on fresh systems
    name, scenario, config = preset_searches()[1]
    repeat = search(scenario, config)
    return results, weak_report, shrunk, results[name], repeat


def test_fuzz_search(benchmark, results_dir):
    results, weak_report, shrunk, first, repeat = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    lines = ["== adversarial search over presets (healthy stack) =="]
    for name, report in results.items():
        lines.extend(report.summary_lines())
        lines.append("")
    lines.append("== planted weakness (checkpoint commits torn) ==")
    lines.extend(weak_report.summary_lines())
    lines.append(
        f"  shrunk: {shrunk.original_steps} -> {shrunk.steps} step(s) "
        f"in {shrunk.runs} run(s); removed: {shrunk.removed}"
    )
    lines.append("")
    lines.append(
        "determinism: repeated search summaries byte-identical: "
        f"{first.summary_lines() == repeat.summary_lines()}"
    )
    emit(results_dir, "fuzz_search", lines)

    # the healthy stack survives every adversarial search
    for name, report in results.items():
        assert not report.found_violation, name
        assert report.worst.report.ok, name
        assert report.runs_executed <= len(BUDGET.seeds) * (
            1 + BUDGET.mutation_rounds
        )
        # mutations actually aimed at instrumented barriers
        assert any(result.barriers_targeted for result in report.results)

    # the planted weakness is found and shrinks to a minimal repro
    assert weak_report.found_violation
    assert shrunk.steps <= 3
    assert {v.oracle for v in weak_report.worst.violations} >= {
        "checkpoint_liveness"
    }

    # byte-determinism of the search pipeline
    assert first.summary_lines() == repeat.summary_lines()
