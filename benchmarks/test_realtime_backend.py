"""Real-time executor benchmark — the wall-clock backend under load.

Unlike every simulated benchmark in this directory, the numbers here are
*real*: tuples per wall-clock second through a keyed parallel-region
pipeline on the ``wallclock`` executor, the real-millisecond latency of
a live 2 -> 4 rescale, the real-millisecond recovery time of a channel-PE
crash with checkpoint rehydration, and the aggregate throughput of a
multiprocess cluster (one complete wall-clock System S per OS process,
reporting over a ``multiprocessing`` queue).

Absolute numbers vary with the host; the assertions pin the qualitative
shape only (liveness, sane latency ceilings, every worker reporting).
The committed ``results/realtime_backend.txt`` is a snapshot from one
run, regenerated on every benchmark invocation.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.runtime.exec import run_worker_cluster, wallclock_pipeline_worker

#: real-seconds budget per measured section; the whole module stays in
#: single-digit seconds so it can ride in the tier-1 suite
DURATION = 1.5
WORKERS = 3


class TestRealtimeBackend:
    def test_realtime_throughput_rescale_recovery(self, results_dir):
        lines = ["section  metric  value"]

        # -- single-process wall-clock throughput ---------------------------
        steady = wallclock_pipeline_worker(
            0, duration=DURATION, period=0.001, time_scale=1.0
        )
        lines.append(
            f"single   tuples/s          {steady.tuples_per_second:9.1f}"
        )
        lines.append(
            f"single   events/s          "
            f"{steady.events / steady.wall_seconds:9.1f}"
        )
        assert steady.tuples > 0
        # a 1 ms source tick must clear well over 100 tuples/s even on a
        # loaded CI host
        assert steady.tuples_per_second > 100.0

        # -- live rescale + crash recovery, in real milliseconds ------------
        adaptive = wallclock_pipeline_worker(
            0,
            duration=DURATION,
            period=0.001,
            time_scale=1.0,
            rescale=True,
            crash=True,
        )
        rescale_ms = adaptive.extra["rescale_ms"]
        recovery_ms = adaptive.extra["recovery_ms"]
        lines.append(f"single   rescale_ms        {rescale_ms:9.1f}")
        lines.append(f"single   recovery_ms       {recovery_ms:9.1f}")
        assert adaptive.tuples > 0
        # both complete while the pipeline keeps running, far inside the
        # section budget (generous ceilings: shape, not speed, is pinned)
        assert 0.0 < rescale_ms < DURATION * 1000.0
        assert 0.0 < recovery_ms < DURATION * 1000.0

        # -- multiprocess cluster -------------------------------------------
        reports = run_worker_cluster(
            wallclock_pipeline_worker,
            workers=WORKERS,
            timeout=30.0,
            duration=DURATION,
            period=0.001,
            time_scale=1.0,
        )
        assert len(reports) == WORKERS
        total_tps = sum(r.tuples_per_second for r in reports)
        for r in reports:
            assert r.tuples > 0
            lines.append(
                f"cluster  worker{r.worker_id}_tuples/s "
                f"{r.tuples_per_second:9.1f}"
            )
        lines.append(f"cluster  total_tuples/s    {total_tps:9.1f}")
        lines.append(f"cluster  workers           {WORKERS:9d}")

        emit(results_dir, "realtime_backend", lines)
