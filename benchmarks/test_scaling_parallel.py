"""Parallel-region scaling benchmarks (the repro.elastic subsystem).

1. **Fission speedup** — a region of rate-limited workers is compiled at
   widths 1..8 against a feed faster than any single channel; simulated
   sink throughput must increase monotonically and near-linearly with the
   channel count (the core claim of data-parallel fission).
2. **Live rescale consistency** — a running job is re-parallelized
   mid-stream (scale-out, then scale-in) while the source keeps emitting
   uniquely-numbered tuples; the sink must receive every sequence number
   exactly once and in order (the Fries-style epoch-barrier protocol is
   tuple-loss-free and order-preserving by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro import SystemS
from repro.elastic.controller import RescaleState
from repro.spl.application import Application
from repro.spl.library import Beacon, Sink, Throttle
from repro.spl.parallel import parallel

from benchmarks.conftest import emit

WORKER_RATE = 10.0  # tuples/second one channel can serve
FEED_RATE = 100.0  # tuples/second the source emits (saturates 8 channels)


def build_region_app(width: int, limit=None, worker_rate=WORKER_RATE) -> Application:
    app = Application("Fission")
    g = app.graph
    src = g.add_operator(
        "src",
        Beacon,
        params={"values": {}, "per_tick": 10, "period": 10 / FEED_RATE,
                "limit": limit},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        Throttle,
        params={"rate": worker_rate},
        parallel=parallel(width=width, name="region", max_width=8),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


@dataclass
class FissionResult:
    widths: List[int]
    throughputs: Dict[int, float]  #: width -> sink tuples/second


def run_fission_scaling(horizon: float = 30.0) -> FissionResult:
    widths = list(range(1, 9))
    throughputs: Dict[int, float] = {}
    for width in widths:
        system = SystemS(hosts=12)
        job = system.submit_job(build_region_app(width))
        system.run_for(horizon)
        sink = job.operator_instance("sink")
        throughputs[width] = len(sink.seen) / horizon
    return FissionResult(widths=widths, throughputs=throughputs)


def test_fission_throughput_scales_with_width(benchmark, results_dir):
    result = benchmark.pedantic(run_fission_scaling, rounds=1, iterations=1)

    lines = [f"{'channels':>8}  {'sink throughput (tuples/s)':>28}"]
    for width in result.widths:
        lines.append(f"{width:8d}  {result.throughputs[width]:28.1f}")
    emit(results_dir, "scaling_parallel_fission", lines)

    rates = [result.throughputs[w] for w in result.widths]
    # monotonically increasing 1 -> 8 channels
    for narrower, wider in zip(rates, rates[1:]):
        assert wider > narrower
    # near-linear: 8 channels deliver at least 6x one channel
    assert rates[-1] / rates[0] >= 6.0


@dataclass
class RescaleResult:
    emitted: int
    received: List[int]
    scale_out_state: RescaleState
    scale_in_state: RescaleState
    widths_seen: List[int]


def run_live_rescale(limit: int = 600) -> RescaleResult:
    system = SystemS(hosts=12)
    # Workers fast enough to finish, slow enough that tuples are genuinely
    # buffered inside the region while it is rewired.
    job = system.submit_job(build_region_app(2, limit=limit, worker_rate=40.0))
    plan = job.compiled.parallel_regions["region"]
    widths = [plan.width]

    system.run_for(2.0)
    scale_out = system.elastic.set_channel_width(job, "region", 5)
    system.run_for(4.0)
    widths.append(plan.width)
    scale_in = system.elastic.set_channel_width(job, "region", 3)
    system.run_for(60.0)
    widths.append(plan.width)

    sink = job.operator_instance("sink")
    return RescaleResult(
        emitted=limit,
        received=[t["iter"] for t in sink.seen],
        scale_out_state=scale_out.state,
        scale_in_state=scale_in.state,
        widths_seen=widths,
    )


def test_live_rescale_zero_tuple_loss(benchmark, results_dir):
    result = benchmark.pedantic(run_live_rescale, rounds=1, iterations=1)

    received = result.received
    emit(
        results_dir,
        "scaling_parallel_rescale",
        [
            f"emitted: {result.emitted}",
            f"received: {len(received)} (unique: {len(set(received))})",
            f"in order: {received == sorted(received)}",
            f"widths: {' -> '.join(str(w) for w in result.widths_seen)}",
            f"scale-out: {result.scale_out_state.value}, "
            f"scale-in: {result.scale_in_state.value}",
        ],
    )

    assert result.scale_out_state is RescaleState.COMPLETED
    assert result.scale_in_state is RescaleState.COMPLETED
    assert result.widths_seen == [2, 5, 3]
    # zero loss, exactly once: every source sequence number exactly once
    assert sorted(received) == list(range(result.emitted))
    assert len(received) == len(set(received))
    # the ordered merger preserves global sequence order across rescales
    assert received == sorted(received)
