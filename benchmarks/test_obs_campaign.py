"""Byte-stable observability artifacts of a fixed-seed chaos campaign.

The repro.obs acceptance bar: a traced chaos campaign on a fixed seed
must produce a byte-identical Prometheus export and flight-recorder
timeline every time it runs, because every recorded value derives from
the simulation clock and seeded streams — never from wall clocks or
hash order.  This benchmark runs the same campaign twice on fresh
systems, asserts both artifacts match byte-for-byte, and commits them
under ``benchmarks/results/`` so any determinism regression shows up
as a diff.
"""

from __future__ import annotations

from typing import Tuple

from repro import SystemS
from repro.chaos import Scenario
from repro.chaos.perturbations import LatencySpike, PEFlap
from repro.runtime.system import SystemConfig
from repro.spl.application import Application
from repro.spl.library import CallbackSource, KeyedCounter, Sink
from repro.spl.parallel import parallel

from benchmarks.conftest import emit

SEED = 29


def build_region_app(width: int = 2) -> Application:
    app = Application("ObsCampaign")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={
            "generator": lambda now, count: [
                {"key": f"k{count % 8}", "seq": count}
            ],
            "period": 0.05,
        },
        partition="feed",
    )
    work = g.add_operator(
        "work",
        KeyedCounter,
        params={"key": "key"},
        parallel=parallel(width=width, name="region", partition_by="key"),
    )
    sink = g.add_operator("sink", Sink, params={"record": False}, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


def campaign_scenario() -> Scenario:
    return (
        Scenario(
            "obs_campaign",
            description="latency noise racing a traced channel flap",
        )
        .add(1.0, LatencySpike(extra=0.05, duration=2.0))
        .add(2.0, PEFlap(operator="work__c0", downtime=1.5, rehydrate=True))
    )


def run_campaign() -> Tuple[str, str]:
    """One traced campaign: (prometheus export, flight timeline)."""
    config = SystemConfig(
        trace_enabled=True,
        trace_sample_every=8,
        flight_capacity=512,
        checkpoint_interval=0.5,
    )
    system = SystemS(hosts=4, seed=SEED, config=config)
    job = system.submit_job(build_region_app())
    system.run_for(0.5)
    system.chaos.run_scenario(campaign_scenario(), job=job)
    system.run_for(10.0)
    prometheus = system.obs.render_prometheus()
    timeline = system.obs.dump_flight(
        "campaign_complete", job_id=job.job_id
    ).render()
    return prometheus, timeline


def test_campaign_artifacts_are_byte_stable(results_dir):
    first_prom, first_timeline = run_campaign()
    second_prom, second_timeline = run_campaign()
    assert first_prom == second_prom
    assert first_timeline == second_timeline
    assert first_timeline.startswith("# flight-recorder dump")
    # the campaign actually produced data-plane spans and mirrored SRM
    assert "] data" in first_timeline
    assert "repro_tuples_processed_total{" in first_prom
    assert "repro_chaos_injections_total" in first_prom
    emit(
        results_dir,
        "obs_campaign_prometheus",
        first_prom.rstrip("\n").splitlines(),
    )
    emit(
        results_dir,
        "obs_campaign_timeline",
        first_timeline.rstrip("\n").splitlines(),
    )
