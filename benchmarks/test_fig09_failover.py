"""Figure 9 — Trend Calculator replica failover (Sec. 5.2).

Paper behaviour: (a) with all replicas healthy, the active and backup
graphs are identical; (b) after a PE of the active replica is killed, the
orchestrator fails over to the oldest backup (its graph keeps updating),
while the failed replica produces no output while its PE is down and
*incorrect* output after restart until its 600-second windows refill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro import ManagedApplication, OrcaDescriptor, SystemS
from repro.apps.orchestrators import FailoverOrca
from repro.apps.trend import TrendRecorderHub, build_trend_application
from repro.apps.workloads import TradeWorkload

from benchmarks.conftest import emit

WINDOW = 600.0
CRASH_AT = 650.0
SYMBOL = "IBM"


@dataclass
class Fig9Result:
    failovers: List[Tuple[float, str, str]]
    statuses: Dict[str, str]
    active_series: List[Tuple[float, float]]
    failed_series: List[Tuple[float, float]]
    failed_coverage: List[Tuple[float, float]]
    gap_seconds: float
    reserved_hosts: int


def run_fig9_scenario(horizon_after: float = 700.0) -> Fig9Result:
    system = SystemS(hosts=8, seed=42)
    hub = TrendRecorderHub()
    app = build_trend_application(
        lambda: TradeWorkload(seed=11), hub=hub, window_span=WINDOW
    )
    logic = FailoverOrca(n_replicas=3)
    service = system.submit_orchestrator(
        OrcaDescriptor(
            name="FailoverOrca",
            logic=lambda: logic,
            applications=[ManagedApplication(name=app.name, application=app)],
        )
    )
    system.run_until(CRASH_AT)
    active = logic.active_job_id()
    job = service.job(active)
    failed_replica = logic.replicas[active]["replica"]
    system.failures.crash_pe(active, pe_index=job.compiled.pe_of("calc"))
    system.run_for(horizon_after)

    promoted = logic.failovers[0][2]
    promoted_replica = logic.replicas[promoted]["replica"]
    failed_points = hub.points_for(failed_replica, SYMBOL)
    ts = [p.ts for p in failed_points]
    gap = max((b - a) for a, b in zip(ts, ts[1:]))
    return Fig9Result(
        failovers=list(logic.failovers),
        statuses={r["replica"]: r["status"] for r in logic.replicas.values()},
        active_series=hub.series(promoted_replica, SYMBOL),
        failed_series=hub.series(failed_replica, SYMBOL),
        failed_coverage=[(p.ts, p.coverage) for p in failed_points],
        gap_seconds=gap,
        reserved_hosts=len(system.sam.reserved_hosts),
    )


def test_fig9_failover(benchmark, results_dir):
    result = benchmark.pedantic(run_fig9_scenario, rounds=1, iterations=1)

    active = dict(result.active_series)
    failed = dict(result.failed_series)
    coverage = dict(result.failed_coverage)
    lines = [
        f"PE of active replica killed at t={CRASH_AT:.0f}; "
        f"window span = {WINDOW:.0f} s",
        f"failover: {result.failovers}",
        f"statuses after failover: {result.statuses}",
        f"exclusive hosts reserved: {result.reserved_hosts}",
        f"failed replica max output gap: {result.gap_seconds:.2f} s",
        "",
        f"{'t':>7}  {'active avg':>11}  {'failed avg':>11}  "
        f"{'|diff|':>8}  {'coverage':>9}",
    ]
    common = sorted(set(active) & set(failed))
    post_crash = [t for t in common if t > CRASH_AT]
    sampled = common[::100] + post_crash[:8] + post_crash[40::100]
    for t in sorted(set(sampled)):
        diff = abs(active[t] - failed[t])
        lines.append(
            f"{t:7.1f}  {active[t]:11.3f}  {failed[t]:11.3f}  "
            f"{diff:8.3f}  {coverage.get(t, 0):8.1f}s"
        )
    emit(results_dir, "fig09_failover", lines)

    # Shape of Fig. 9:
    assert len(result.failovers) == 1
    assert sorted(result.statuses.values()) == ["active", "backup", "backup"]
    # (a) before the crash both replicas' outputs are identical
    pre = [t for t in sorted(set(active) & set(failed)) if t < CRASH_AT]
    assert pre and all(abs(active[t] - failed[t]) < 1e-9 for t in pre)
    # (b) output gap while the PE is down
    assert result.gap_seconds > 1.0
    # (b) incorrect output right after restart (windows refilling)
    just_after = [
        t for t in sorted(set(active) & set(failed))
        if CRASH_AT + 2 < t < CRASH_AT + 60
    ]
    assert just_after
    assert max(abs(active[t] - failed[t]) for t in just_after) > 0.5
    assert all(coverage[t] < 60.0 for t in just_after)
    # full recovery: after one window span the outputs coincide again
    recovered = [
        t for t in sorted(set(active) & set(failed))
        if t > CRASH_AT + WINDOW + 20
    ]
    assert recovered
    assert all(abs(active[t] - failed[t]) < 1e-9 for t in recovered)
