"""Figure 10 — on-demand dynamic application composition (Sec. 5.3).

Paper behaviour: C1 and C2 applications are brought up through registered
dependencies; whenever 1500 *new* profiles with a segmentation attribute
accumulate, the orchestrator expands the graph with a C3 job for that
attribute; when the C3 sink observes final punctuation the job is
cancelled, contracting the graph again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro import ManagedApplication, OrcaDescriptor, SystemS
from repro.apps.datastore import ProfileDataStore
from repro.apps.orchestrators import CompositionOrca
from repro.apps.socialmedia import build_all_socialmedia_applications
from repro.tools import render_system_dot

from benchmarks.conftest import emit

THRESHOLD = 1500


@dataclass
class Fig10Result:
    events: List[Tuple[str, str, float]]
    c3_history: List[Tuple[float, str, str]]
    results: List[dict]
    store_size: int
    store_writes: int
    job_count_series: List[Tuple[float, int]]
    final_running: List[str]
    graph_dot: str = ""


def run_fig10_scenario(horizon: float = 400.0, rate: int = 15) -> Fig10Result:
    system = SystemS(hosts=6, seed=42)
    store = ProfileDataStore()
    results: List[dict] = []
    apps = build_all_socialmedia_applications(
        store, results=results, profile_rate=rate
    )
    logic = CompositionOrca(threshold=THRESHOLD)
    system.submit_orchestrator(
        OrcaDescriptor(
            name="CompositionOrca",
            logic=lambda: logic,
            applications=[
                ManagedApplication(name=n, application=a)
                for n, a in apps.items()
            ],
            metric_poll_interval=5.0,
        )
    )
    system.run_for(horizon)
    # job-count series from the submit/cancel event log
    count = 0
    series: List[Tuple[float, int]] = []
    for kind, _, when in sorted(logic.events, key=lambda e: e[2]):
        count += 1 if kind == "submit" else -1
        series.append((when, count))
    return Fig10Result(
        events=list(logic.events),
        c3_history=list(logic.c3_history),
        results=list(results),
        store_size=len(store),
        store_writes=store.total_writes,
        job_count_series=series,
        final_running=sorted(j.app_name for j in system.sam.running_jobs()),
        graph_dot=render_system_dot(system),
    )


def test_fig10_composition(benchmark, results_dir):
    result = benchmark.pedantic(run_fig10_scenario, rounds=1, iterations=1)

    lines = [f"profile threshold: {THRESHOLD} new profiles per attribute", ""]
    lines.append(f"{'t':>7}  {'event':>7}  app")
    for kind, app, when in result.events[:40]:
        lines.append(f"{when:7.1f}  {kind:>7}  {app}")
    lines.append("")
    lines.append(f"C3 spawns: {len(result.c3_history)}")
    for when, attr, job_id in result.c3_history[:15]:
        lines.append(f"  t={when:7.1f}  attribute={attr:9s}  {job_id}")
    lines.append("")
    lines.append(f"running job count over time (expansion/contraction):")
    for when, count in result.job_count_series[:40]:
        lines.append(f"  t={when:7.1f}  jobs={count}  {'#' * count}")
    lines.append("")
    lines.append(f"profile store: {result.store_size} unique profiles, "
                 f"{result.store_writes} writes (duplicates included)")
    lines.append(f"running at the end: {result.final_running}")
    emit(results_dir, "fig10_composition", lines)
    # the figure itself is a graph visualization: emit the DOT rendering
    (results_dir / "fig10_composition.dot").write_text(result.graph_dot + "\n")
    assert "TwitterStreamReader" in result.graph_dot
    assert "dashed" in result.graph_dot  # dynamic import/export connections

    # Shape of Fig. 10:
    submits = [e for e in result.events if e[0] == "submit"]
    cancels = [e for e in result.events if e[0] == "cancel"]
    # C1 + C2 dependency bring-up: the first five submissions
    first_apps = sorted(app for _, app, _ in submits[:5])
    assert first_apps == [
        "BlogQuery", "FacebookQuery", "MySpaceStreamReader",
        "TwitterQuery", "TwitterStreamReader",
    ]
    # expansion: C3 jobs spawned for at least two attributes
    assert len({attr for _, attr, _ in result.c3_history}) >= 2
    # contraction: C3 jobs cancelled after final punctuation
    assert cancels and all(app == "AttributeAggregator" for _, app, _ in cancels)
    # every C3 produced a segmentation result before being cancelled
    assert len(result.results) >= len(cancels)
    # the orchestrator's counts include duplicates, the store does not
    assert result.store_writes > result.store_size
    # the base C1/C2 layer never contracts (always 5 base jobs running)
    assert all(count >= 5 for _, count in result.job_count_series[4:])
