"""Benchmark package: one regenerator per paper figure/claim.

The __init__ makes ``benchmarks`` importable as a package so that the
suite runs identically under ``pytest`` and ``python -m pytest``.
"""
