"""Benchmark harness helpers.

Every benchmark regenerates one figure (or design claim) of the paper:
it runs the full scenario on the simulated System S, prints the same
rows/series the paper reports, writes them under ``benchmarks/results/``
for inspection, and asserts the qualitative *shape* (who wins, where the
crossovers are) — absolute numbers differ from the paper's testbed by
construction.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def best_of(fn, rounds: int = 3) -> float:
    """Best (max) rate over a few rounds — throughput benchmarks take
    the fastest round so scheduler noise only ever hurts, never helps."""
    return max(fn() for _ in range(rounds))


def emit(results_dir: pathlib.Path, name: str, lines: list[str]) -> None:
    """Print a figure's series and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    print(f"\n===== {name} =====")
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
