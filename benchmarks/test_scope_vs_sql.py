"""Sec. 4.1 claim — the scope API vs the SQL-equivalent recursive query.

The paper argues the scope API is the simpler interface and shows the
recursive CTE a developer would otherwise write.  This benchmark (i)
verifies the two select identical rows on a family of synthetic nested
applications, and (ii) times both, reporting the per-poll matching cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from repro.orca.scopes import OperatorMetricScope
from repro.orca.sqlbaseline import (
    paper_scope_query,
    scope_match_reference,
    tables_from_adl,
)
from repro.spl.adl import ADLComposite, ADLModel, ADLOperator

from benchmarks.conftest import emit


def synthetic_model(n_composites: int, ops_per_composite: int, depth: int) -> ADLModel:
    """A forest of composite chains of the given nesting depth."""
    composites: List[ADLComposite] = []
    operators: List[ADLOperator] = []
    for c in range(n_composites):
        parent = None
        for d in range(depth):
            name = f"c{c}_d{d}" if parent is None else f"{parent}.c{c}_d{d}"
            kind = "composite1" if (c + d) % 2 == 0 else "wrapper"
            composites.append(ADLComposite(name=name, kind=kind, parent=parent))
            parent = name
        for o in range(ops_per_composite):
            kind = ["Split", "Merge", "Functor"][o % 3]
            operators.append(
                ADLOperator(
                    name=f"{parent}.op{o}",
                    kind=kind,
                    composite=parent,
                    pe_index=1,
                    n_inputs=1,
                    n_outputs=1,
                )
            )
    return ADLModel(
        name="Synthetic", version="1", operators=operators,
        composites=composites, pes=[], streams=[], host_pools=[],
        exports=[], imports=[],
    )


@dataclass
class ScopeVsSqlResult:
    sizes: List[int]
    scope_times_ms: List[float]
    sql_times_ms: List[float]
    all_equivalent: bool


def run_scope_vs_sql(repeats: int = 20) -> ScopeVsSqlResult:
    sizes, scope_times, sql_times = [], [], []
    equivalent = True
    for n_composites in (5, 20, 60):
        model = synthetic_model(n_composites, ops_per_composite=4, depth=3)
        metrics = [(op.name, "queueSize", 1.0) for op in model.operators]
        tables = tables_from_adl(model, metrics)

        # --- scope matcher (what the ORCA service does per poll) ---
        parents = {c.name: c.parent for c in model.composites}
        kinds = {c.name: c.kind for c in model.composites}
        chains = {}
        for op in model.operators:
            chain = set()
            current = op.composite
            while current is not None:
                chain.add(kinds[current])
                current = parents[current]
            chains[op.name] = chain
        scope = OperatorMetricScope("s")
        scope.addOperatorTypeFilter(["Split", "Merge"])
        scope.addCompositeTypeFilter("composite1")
        scope.addOperatorMetric("queueSize")
        op_kind = {op.name: op.kind for op in model.operators}

        start = time.perf_counter()
        for _ in range(repeats):
            scope_rows = {
                (name, value)
                for name, metric, value in metrics
                if scope.matches(
                    {
                        "operator_type": op_kind[name],
                        "composite_type": chains[name],
                        "metric_name": metric,
                    }
                )
            }
        scope_ms = (time.perf_counter() - start) * 1000 / repeats

        start = time.perf_counter()
        for _ in range(repeats):
            sql_rows = set(
                paper_scope_query(
                    tables, "queueSize", ["Split", "Merge"], "composite1"
                ).rows
            )
        sql_ms = (time.perf_counter() - start) * 1000 / repeats

        reference = scope_match_reference(
            model, metrics, "queueSize", ["Split", "Merge"], "composite1"
        )
        equivalent = equivalent and scope_rows == sql_rows == reference
        sizes.append(len(model.operators))
        scope_times.append(scope_ms)
        sql_times.append(sql_ms)
    return ScopeVsSqlResult(sizes, scope_times, sql_times, equivalent)


def test_scope_vs_sql(benchmark, results_dir):
    result = benchmark.pedantic(run_scope_vs_sql, rounds=1, iterations=1)

    lines = [
        f"{'operators':>10}  {'scope API (ms)':>15}  {'recursive SQL (ms)':>19}  "
        f"{'SQL/scope':>10}"
    ]
    for size, s_ms, q_ms in zip(
        result.sizes, result.scope_times_ms, result.sql_times_ms
    ):
        lines.append(
            f"{size:10d}  {s_ms:15.3f}  {q_ms:19.3f}  {q_ms / s_ms:10.1f}x"
        )
    lines.append("")
    lines.append(f"result sets identical on all sizes: {result.all_equivalent}")
    emit(results_dir, "scope_vs_sql", lines)

    assert result.all_equivalent, "Sec. 4.1 equivalence must hold"
    # Shape: the direct matcher should never lose to the recursive query.
    for s_ms, q_ms in zip(result.scope_times_ms, result.sql_times_ms):
        assert s_ms <= q_ms


def test_scope_matching_microbenchmark(benchmark):
    """Raw matching throughput of one registered subscope."""
    scope = OperatorMetricScope("s")
    scope.addOperatorTypeFilter(["Split", "Merge"])
    scope.addCompositeTypeFilter("composite1")
    scope.addOperatorMetric("queueSize")
    attrs = {
        "operator_type": "Split",
        "composite_type": {"composite1", "wrapper"},
        "metric_name": "queueSize",
    }
    result = benchmark(scope.matches, attrs)
    assert result is True
