"""Benchmark: health-aware vs backlog-only scaling under congestion.

The health plane's pitch is *reaction time*: backlog policies watch SRM
metrics that are only as fresh as the metric-push interval (3 s), while
the lag watermark samples live transport pressure every health tick
(0.5 s).  This benchmark runs the same gray-network-style congestion
campaign — a feed surge riding on a short link partition and a latency
wave, over at-least-once delivery — twice with the same seed:

* ``state_aware`` — the PR-5 baseline: a queue-watermark policy wrapped
  in :class:`~repro.elastic.policy.StateAwareScalingPolicy` (migration
  veto), reading SRM-fed channel backlogs;
* ``health_aware`` — the same stack wrapped in
  :class:`~repro.elastic.policy.HealthAwareScalingPolicy`, which scales
  out as soon as the region's lag watermark burns past its objective.

Both runs are scored with chaos scorecards (now carrying the health
summary line); the claims asserted are the ISSUE's acceptance bar — the
health-aware run reacts strictly earlier and is no worse on loss and
state recovery — plus byte-identical health snapshots across same-seed
runs.  Artifacts: ``health_policy.txt`` (the comparison) and
``health_policy.health.txt`` (a peak-pressure snapshot, the input to
``python -m repro.tools.healthwatch``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro import (
    ManagedApplication,
    Orchestrator,
    OrcaDescriptor,
    SystemConfig,
    SystemS,
)
from repro.apps.workloads import ChaosFeed
from repro.chaos import (
    LatencySpike,
    LinkPartition,
    RateSurge,
    Scenario,
    collect_scorecard,
)
from repro.elastic import (
    HealthAwareScalingPolicy,
    QueueSizeScalingPolicy,
    StateAwareScalingPolicy,
)
from repro.obs import Slo
from repro.spl.application import Application
from repro.spl.library import CallbackSource, Sink, Throttle
from repro.spl.parallel import parallel

from benchmarks.conftest import emit

SEED = 42
WARMUP = 3.0
POLL = 0.5
RUN_FOR = 12.0
DRAIN = 8.0
LAG_OBJECTIVE = 0.05
MAX_WIDTH = 6


def build_app(feed, width=2, name="HealthBench"):
    app = Application(name)
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": feed.generator(), "period": 0.05},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        Throttle,
        params={"rate": 40.0},  # 2x40 steady capacity vs the 40/s feed
        parallel=parallel(
            width=width,
            name="region",
            max_width=MAX_WIDTH,
            congestion_metric="nBuffered",
            reorder_grace=1.0,
        ),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


def congestion_scenario() -> Scenario:
    """A surge riding on a partition and a latency wave (delays + load,
    no loss-class faults: at-least-once must account for every tuple)."""
    return (
        Scenario("gray_congestion")
        .add(1.02, RateSurge(factor=2.5, duration=5.0))
        .add(1.02, LinkPartition(duration=1.2, dst_operator="work__c0"))
        .add(1.52, LatencySpike(
            extra=0.08, duration=3.0, dst_operator="work__c1"
        ))
    )


class _BenchOrca(Orchestrator):
    """Submits the app; the benchmark loop drives the policies."""

    def __init__(self):
        super().__init__()
        self.job = None

    def handleOrcaStart(self, context):
        self.job = self.orca.submit_application("HealthBench")


def make_state_aware(system) -> StateAwareScalingPolicy:
    return StateAwareScalingPolicy(
        QueueSizeScalingPolicy(
            # low_watermark below zero: never scale in, so the only
            # reactions both variants record are congestion responses
            high_watermark=10.0, low_watermark=-1.0, max_width=MAX_WIDTH
        ),
        max_migration_bytes=1e9,  # never veto: pure backlog timing
    )


def make_health_aware(system) -> HealthAwareScalingPolicy:
    return HealthAwareScalingPolicy(
        make_state_aware(system),
        monitor=system.obs.health,
        lag_objective=LAG_OBJECTIVE,
        max_width=MAX_WIDTH,
        cooldown=2.0,
    )


def run_campaign(policy_factory) -> dict:
    """One congestion campaign with a poll-driven scaling policy."""
    system = SystemS(
        hosts=10,
        seed=SEED,
        config=SystemConfig(
            delivery="at_least_once", failure_notification_delay=0.001
        ),
    )
    feed = ChaosFeed(n_keys=12, base_rate=2, seed=5)
    app = build_app(feed)
    logic = _BenchOrca()
    service = system.submit_orchestrator(
        OrcaDescriptor(
            name="HealthBenchOrca",
            logic=lambda: logic,
            applications=[ManagedApplication(name=app.name, application=app)],
        )
    )
    # a region-scoped lag SLO so burn-rate alerts exercise the scorecard
    service.register_slo(
        Slo(
            "region-lag",
            "lag",
            LAG_OBJECTIVE,
            short_window=1.0,
            long_window=2.0,
            region="region",
        )
    )
    system.run_for(WARMUP)
    job = logic.job
    policy = policy_factory(system)
    scenario_start = system.now
    run = system.chaos.run_scenario(congestion_scenario(), job=job, feed=feed)
    first_reaction: Optional[float] = None
    rescales = 0
    peak_snapshot: Optional[str] = None
    peak_seen = 0.0
    for _ in range(int(RUN_FOR / POLL)):
        system.run_for(POLL)
        if system.obs.health.peak_link_lag > peak_seen:
            # a fresh lag peak: this render shows the pressure live,
            # so the last one kept is the healthwatch demo input
            peak_seen = system.obs.health.peak_link_lag
            peak_snapshot = system.obs.health.snapshot().render()
        if system.elastic.rescale_in_progress(job.job_id, "region"):
            continue
        observation = service.region_observation(job.job_id, "region")
        target = policy.decide(observation)
        if target is not None and target > observation.width:
            if first_reaction is None:
                first_reaction = system.now - scenario_start
            rescales += 1
            service.set_channel_width(job.job_id, "region", target)
    snapshot = peak_snapshot or system.obs.health.snapshot().render()
    feed.set_rate_factor(0.0)
    system.run_for(DRAIN)
    seqs = [t["seq"] for t in job.operator_instance("sink").seen]
    scorecard = collect_scorecard(
        system,
        run,
        SEED,
        seqs,
        feed.emitted,
        orca=service,
        health=system.obs.health,
    )
    return {
        "first_reaction": first_reaction,
        "rescales": rescales,
        "final_width": job.compiled.parallel_regions["region"].width,
        "scorecard": scorecard,
        "snapshot": snapshot,
        "health_status": service.health_status(),
    }


def summary_line(name: str, result: dict) -> str:
    reaction = result["first_reaction"]
    card = result["scorecard"]
    return (
        f"policy={name}"
        f" first_reaction={'%.2f' % reaction if reaction is not None else '-'}s"
        f" rescales={result['rescales']}"
        f" final_width={result['final_width']}"
        f" received={card.tuples_received}/{card.tuples_expected}"
        f" lost={card.tuples_lost}"
        f" recovery={card.state_recovery:.3f}"
        f" alerts={card.health_alerts}"
        f" pages={card.health_pages}"
        f" peak_lag={card.peak_link_lag:.6f}"
        f" bottleneck={card.bottleneck or '-'}"
    )


class TestHealthAwarePolicy:
    def test_health_policy_reacts_earlier_and_loses_nothing(
        self, results_dir
    ):
        state = run_campaign(make_state_aware)
        health = run_campaign(make_health_aware)

        # both policies saw the congestion and reacted
        assert state["first_reaction"] is not None
        assert health["first_reaction"] is not None
        # the ISSUE's bar: strictly earlier time-to-first-reaction ...
        assert health["first_reaction"] < state["first_reaction"]
        # ... and no worse on loss / recovery
        h_card, s_card = health["scorecard"], state["scorecard"]
        assert h_card.tuples_lost <= s_card.tuples_lost
        assert h_card.tuples_lost == 0  # delays only, reliable delivery
        assert h_card.state_recovery >= s_card.state_recovery
        # the health plane attributed the pressure and raised alerts
        assert h_card.health_alerts and h_card.health_alerts >= 1
        assert h_card.peak_link_lag > LAG_OBJECTIVE
        assert h_card.bottleneck.startswith("work")

        lines = [
            "# health-aware vs backlog-only scaling, gray-network congestion",
            f"# seed={SEED} delivery=at_least_once poll={POLL}s"
            f" lag_objective={LAG_OBJECTIVE}s",
            summary_line("state_aware", state),
            summary_line("health_aware", health),
            "advantage: health reacts "
            f"{state['first_reaction'] - health['first_reaction']:.2f}s"
            " earlier",
            "",
            "state_aware scorecard:",
            *("  " + line for line in s_card.lines()),
            "",
            "health_aware scorecard:",
            *("  " + line for line in h_card.lines()),
        ]
        emit(results_dir, "health_policy", lines)
        (results_dir / "health_policy.health.txt").write_text(
            health["snapshot"]
        )

    def test_campaign_is_byte_deterministic(self):
        """Same seed, same policy: health snapshots, scorecards, and
        reaction times must be byte-identical across runs."""
        first = run_campaign(make_health_aware)
        second = run_campaign(make_health_aware)
        assert first["snapshot"] == second["snapshot"]
        assert first["scorecard"].lines() == second["scorecard"].lines()
        assert first["first_reaction"] == second["first_reaction"]
        assert first["health_status"] == second["health_status"]
