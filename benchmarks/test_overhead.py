"""Sec. 3 claims — orchestration overhead.

The paper asserts that (i) generating failure events adds no cost to the
managed applications, but *handling* them through an orchestrator delays
recovery by one extra RPC plus the user handler; and (ii) metric event
generation does not touch the application hot path (the ORCA service
polls SRM, which is fed by the host controllers' fixed-rate pushes).

Benchmark A measures PE recovery latency with SAM auto-restart vs with an
orchestrator in the loop.  Benchmark B measures application throughput
with no orchestrator, with a slow-polling and with a fast-polling
orchestrator — the three must agree (no hot-path effect).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import (
    ManagedApplication,
    Orchestrator,
    OrcaDescriptor,
    SystemConfig,
    SystemS,
)
from repro.orca.scopes import OperatorMetricScope, PEFailureScope
from repro.runtime.pe import PEState

from benchmarks.conftest import emit
from tests.conftest import make_linear_app


@dataclass
class RecoveryResult:
    auto_restart_latency: float
    orca_restart_latency: float
    extra_rpc_cost: float


class RestartOrca(Orchestrator):
    def __init__(self):
        super().__init__()
        self.job = None

    def handleOrcaStart(self, context):
        self.orca.registerEventScope(
            PEFailureScope("f").addApplicationFilter("Linear")
        )
        self.job = self.orca.submit_application("Linear")

    def handlePEFailureEvent(self, context, scopes):
        self.orca.restart_pe(context.pe_id)


def _time_until_running(system, victim) -> float:
    """Advance the kernel event by event until the PE is back up.

    Stepping per-event (instead of fixed increments) measures the exact
    simulated recovery instant, so the extra ORCA RPC (2 ms) is visible.
    """
    start = system.now
    while victim.state is not PEState.RUNNING:
        if not system.kernel.step():
            raise AssertionError("kernel drained before the PE recovered")
    return system.now - start


def measure_auto_restart() -> float:
    system = SystemS(hosts=2, config=SystemConfig(auto_restart_pes=True))
    job = system.submit_job(make_linear_app())
    system.run_for(5.0)
    victim = job.pes[0]
    victim.crash("bench")
    return _time_until_running(system, victim)


def measure_orca_restart() -> float:
    system = SystemS(hosts=2)
    app = make_linear_app()
    logic = RestartOrca()
    system.submit_orchestrator(
        OrcaDescriptor(
            name="R",
            logic=lambda: logic,
            applications=[ManagedApplication(name="Linear", application=app)],
        )
    )
    system.run_for(5.0)
    victim = logic.job.pes[0]
    victim.crash("bench")
    return _time_until_running(system, victim)


def run_recovery_comparison() -> RecoveryResult:
    auto = measure_auto_restart()
    orca = measure_orca_restart()
    return RecoveryResult(
        auto_restart_latency=auto,
        orca_restart_latency=orca,
        extra_rpc_cost=orca - auto,
    )


def test_recovery_latency_overhead(benchmark, results_dir):
    result = benchmark.pedantic(run_recovery_comparison, rounds=1, iterations=1)

    lines = [
        f"SAM auto-restart recovery latency:     {result.auto_restart_latency * 1000:8.1f} ms",
        f"orchestrator-driven recovery latency:  {result.orca_restart_latency * 1000:8.1f} ms",
        f"orchestration overhead (extra RPC +    {result.extra_rpc_cost * 1000:8.1f} ms",
        " handler execution)",
    ]
    emit(results_dir, "overhead_recovery", lines)

    # Shape (Sec. 3): the orchestrated path is slower, but only by the
    # extra RPC + handler time — a small constant, not a multiple.
    assert result.orca_restart_latency > result.auto_restart_latency
    assert result.extra_rpc_cost < 0.25 * result.auto_restart_latency


@dataclass
class HotPathResult:
    tuples_no_orca: float
    tuples_slow_poll: float
    tuples_fast_poll: float


class WatchingOrca(Orchestrator):
    def __init__(self):
        super().__init__()
        self.job = None
        self.events = 0

    def handleOrcaStart(self, context):
        self.orca.registerEventScope(
            OperatorMetricScope("m").addOperatorMetric("nTuplesProcessed")
        )
        self.job = self.orca.submit_application("Linear")

    def handleOperatorMetricEvent(self, context, scopes):
        self.events += 1


def _throughput(poll_interval=None, horizon=120.0) -> float:
    system = SystemS(hosts=2)
    app = make_linear_app(per_tick=20, period=0.5)
    if poll_interval is None:
        job = system.submit_job(app)
        system.run_for(horizon)
        sink = job.operator_instance("sink")
        return len(sink.seen) / horizon
    logic = WatchingOrca()
    system.submit_orchestrator(
        OrcaDescriptor(
            name="W",
            logic=lambda: logic,
            applications=[ManagedApplication(name="Linear", application=app)],
            metric_poll_interval=poll_interval,
        )
    )
    system.run_for(horizon)
    sink = logic.job.operator_instance("sink")
    assert logic.events > 0
    return len(sink.seen) / horizon


def run_hot_path_comparison() -> HotPathResult:
    return HotPathResult(
        tuples_no_orca=_throughput(None),
        tuples_slow_poll=_throughput(15.0),
        tuples_fast_poll=_throughput(1.0),
    )


def test_metric_polling_off_hot_path(benchmark, results_dir):
    result = benchmark.pedantic(run_hot_path_comparison, rounds=1, iterations=1)

    lines = [
        f"throughput, no orchestrator:        {result.tuples_no_orca:8.2f} tuples/s",
        f"throughput, 15 s metric polling:    {result.tuples_slow_poll:8.2f} tuples/s",
        f"throughput, 1 s metric polling:     {result.tuples_fast_poll:8.2f} tuples/s",
    ]
    emit(results_dir, "overhead_hotpath", lines)

    # Shape (Sec. 3): metric polling must not perturb application
    # throughput at all — SRM is fed by fixed-rate pushes either way.
    assert result.tuples_no_orca == result.tuples_slow_poll == result.tuples_fast_poll
