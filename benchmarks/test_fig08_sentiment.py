"""Figure 8 — unknown/known sentiment-cause ratio over time (Sec. 5.1).

Paper series: ratio below 1.0 during startup (known causes dominate);
around epoch 250 the antenna complaints start and the ratio climbs past
the 1.0 actuation threshold; the ORCA logic triggers one Hadoop job
(guarded to at most one per 10 minutes); once the streaming job reloads
the refreshed model the ratio stabilizes below 1.0 again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro import ManagedApplication, OrcaDescriptor, SystemS
from repro.apps.datastore import CauseModelStore, CorpusStore
from repro.apps.hadoop import SimulatedHadoopCluster
from repro.apps.orchestrators import SentimentOrca
from repro.apps.sentiment import build_sentiment_application
from repro.apps.workloads import TweetWorkload

from benchmarks.conftest import emit


@dataclass
class Fig8Result:
    series: List[Tuple[int, float]]
    trigger_times: List[float]
    job_windows: List[Tuple[float, float]]
    model_versions: int
    final_causes: tuple


def run_fig8_scenario(
    horizon: float = 400.0,
    shift_at: float = 250.0,
    threshold: float = 1.0,
    hadoop_duration: float = 30.0,
    seed: int = 7,
) -> Fig8Result:
    system = SystemS(hosts=4, seed=42)
    corpus = CorpusStore()
    models = CauseModelStore(("flash", "screen"))
    hadoop = SimulatedHadoopCluster(
        system.kernel, corpus, models, duration=hadoop_duration
    )
    workload = TweetWorkload(seed=seed, rate=20)
    app = build_sentiment_application(workload, corpus, models)
    logic = SentimentOrca(hadoop, threshold=threshold)
    descriptor = OrcaDescriptor(
        name="SentimentOrca",
        logic=lambda: logic,
        applications=[ManagedApplication(name=app.name, application=app)],
        metric_poll_interval=1.0,  # 1 epoch == 1 second, like the figure
    )
    system.submit_orchestrator(descriptor)
    system.run_for(horizon)
    return Fig8Result(
        series=list(logic.ratio_series),
        trigger_times=list(logic.trigger_times),
        job_windows=[
            (j.submitted_at, j.completed_at or horizon) for j in hadoop.jobs
        ],
        model_versions=models.version,
        final_causes=tuple(sorted(models.current.causes)),
    )


def test_fig8_ratio_series(benchmark, results_dir):
    result = benchmark.pedantic(run_fig8_scenario, rounds=1, iterations=1)

    lines = [f"{'epoch':>6}  {'unknown/known ratio':>20}"]
    for epoch, ratio in result.series:
        if epoch % 10 == 0:
            lines.append(f"{epoch:6d}  {ratio:20.3f}")
    lines.append("")
    lines.append(f"actuation threshold: 1.0")
    lines.append(f"hadoop trigger(s) at: {result.trigger_times}")
    lines.append(f"hadoop job window(s): {result.job_windows}")
    lines.append(f"model versions: {result.model_versions}; "
                 f"final causes: {result.final_causes}")
    emit(results_dir, "fig08_sentiment_ratio", lines)

    series = dict(result.series)
    pre_shift = [r for e, r in series.items() if 50 < e < 250]
    post_recovery = [r for e, r in series.items() if e > 320]
    peak = max(r for _, r in series.items())

    # Shape of Fig. 8:
    assert pre_shift and max(pre_shift) < 1.0, "ratio must start below 1.0"
    assert peak > 1.0, "shift must push the ratio past the threshold"
    assert len(result.trigger_times) == 1, "re-trigger guard: exactly one job"
    assert 250.0 <= result.trigger_times[0] <= 290.0, "trigger follows shift"
    assert post_recovery and max(post_recovery) < 1.0, (
        "ratio must stabilize below 1.0 after the model refresh"
    )
    assert "antenna" in result.final_causes
