"""Keyed-state migration benchmark (the partitioned operator state layer).

A keyed aggregation (running per-key counts behind rate-limited workers)
runs inside a ``partition_by`` parallel region while the region is
live-rescaled 2 -> 4 -> 2.  Every rescale re-partitions ``hash(key) %
width``, so without state migration every key that changes channels would
restart its count from zero.  The benchmark asserts the two invariants
the migration protocol guarantees, and records its latency numbers:

* **zero tuple loss** — the sink receives every source sequence number
  exactly once, in order (the PR 1 barrier protocol, still intact);
* **zero keyed-state loss** — every key's observed counts are exactly
  1, 2, 3, ... with no reset or gap across both rescales (state moved
  transactionally with the routing change);
* **migration latency** — keys/bytes moved, per-edge move counts, wall
  time of extract+install, and the drain-to-resume duration of each
  rescale, persisted under ``benchmarks/results/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import SystemS
from repro.elastic.controller import RescaleOperation, RescaleState
from repro.spl.application import Application
from repro.spl.library import CallbackSource, KeyedCounter, Sink, Throttle
from repro.spl.parallel import parallel

from benchmarks.conftest import emit

N_KEYS = 12
FEED_RATE = 40.0  #: tuples/second from the source
WORKER_RATE = 15.0  #: tuples/second one channel serves
LIMIT = 600


def build_keyed_aggregation_app(width: int = 2) -> Application:
    app = Application("KeyedStateScaling")
    g = app.graph

    def generate(now: float, count: int) -> List[Dict]:
        return [{"key": f"k{count % N_KEYS}", "seq": count}]

    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": generate, "period": 1.0 / FEED_RATE, "limit": LIMIT},
        partition="feed",
    )
    annotation = parallel(width=width, name="region", partition_by="key", max_width=8)
    thr = g.add_operator(
        "thr", Throttle, params={"rate": WORKER_RATE}, parallel=annotation
    )
    cnt = g.add_operator(
        "cnt", KeyedCounter, params={"key": "key"}, parallel=annotation
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), thr.iport(0))
    g.connect(thr.oport(0), cnt.iport(0))
    g.connect(cnt.oport(0), sink.iport(0))
    return app


@dataclass
class MigrationRunResult:
    received_seqs: List[int]
    counts_by_key: Dict[str, List[int]]
    scale_out: RescaleOperation
    scale_in: RescaleOperation
    widths_seen: List[int]


def run_live_keyed_rescale() -> MigrationRunResult:
    system = SystemS(hosts=14)
    job = system.submit_job(build_keyed_aggregation_app(width=2))
    plan = job.compiled.parallel_regions["region"]
    widths = [plan.width]

    system.run_for(3.0)  # width 2 falls behind the feed; state accrues
    scale_out = system.elastic.set_channel_width(job, "region", 4)
    system.run_for(17.0)  # feed (15 s) finishes; width 4 catches up
    widths.append(plan.width)
    scale_in = system.elastic.set_channel_width(job, "region", 2)
    system.run_for(60.0)  # drain everything through the narrowed region
    widths.append(plan.width)

    sink = job.operator_instance("sink")
    counts: Dict[str, List[int]] = {}
    for t in sink.seen:
        counts.setdefault(t["key"], []).append(t["count"])
    return MigrationRunResult(
        received_seqs=[t["seq"] for t in sink.seen],
        counts_by_key=counts,
        scale_out=scale_out,
        scale_in=scale_in,
        widths_seen=widths,
    )


def _migration_lines(label: str, op: RescaleOperation) -> List[str]:
    migration = op.migration
    lines = [
        f"{label}: {op.old_width} -> {op.new_width} "
        f"({op.state.value}, epoch {op.epoch})",
        f"  rescale duration (quiesce->resume): {op.duration * 1000.0:.1f} sim-ms "
        f"({op.drain_polls} drain polls)",
    ]
    if migration is None:
        lines.append("  no migration (region not partitioned)")
        return lines
    lines += [
        f"  keys moved: {migration.keys_moved} "
        f"({migration.bytes_moved} bytes, {migration.keys_lost} lost)",
        f"  extract+install wall time: {migration.wall_ms:.3f} ms",
        "  per-edge moves: "
        + ", ".join(
            f"c{src}->c{dst}:{n}" for (src, dst), n in sorted(migration.moves.items())
        ),
    ]
    return lines


def test_live_rescale_zero_keyed_state_loss(benchmark, results_dir):
    result = benchmark.pedantic(run_live_keyed_rescale, rounds=1, iterations=1)

    received = result.received_seqs
    reset_keys = [
        key
        for key, counts in result.counts_by_key.items()
        if counts != list(range(1, len(counts) + 1))
    ]
    lines = [
        f"emitted: {LIMIT} over {N_KEYS} keys "
        f"(feed {FEED_RATE}/s, {WORKER_RATE}/s per channel)",
        f"received: {len(received)} (unique: {len(set(received))}, "
        f"in order: {received == sorted(received)})",
        f"widths: {' -> '.join(str(w) for w in result.widths_seen)}",
        f"keys with non-contiguous counts (state loss): {len(reset_keys)}",
        "",
        *_migration_lines("scale-out", result.scale_out),
        *_migration_lines("scale-in", result.scale_in),
    ]
    emit(results_dir, "scaling_elastic_state", lines)

    assert result.scale_out.state is RescaleState.COMPLETED
    assert result.scale_in.state is RescaleState.COMPLETED
    assert result.widths_seen == [2, 4, 2]
    # zero tuple loss, exactly once, order preserved across both rescales
    assert sorted(received) == list(range(LIMIT))
    assert received == sorted(received)
    # zero keyed-state loss: every key counted 1..n without reset
    assert reset_keys == []
    assert set(result.counts_by_key) == {f"k{i}" for i in range(N_KEYS)}
    # both rescales actually migrated state
    for op in (result.scale_out, result.scale_in):
        assert op.migration is not None
        assert op.migration.keys_moved > 0
        assert op.migration.keys_lost == 0
        assert op.migration.wall_ms >= 0.0
