"""Figures 2-3 — composite reuse and PE partitioning (Sec. 2.1).

The paper's compiler places operators of one composite instance into
*different* PEs and fuses operators of *different* composite instances
into one PE (Fig. 3), distributing the three PEs over two hosts.  The
benchmark regenerates the layout, runs the application, and checks that
both composite instances process their streams end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro import SystemS
from repro.apps.figure2 import build_figure2_application, expected_figure3_layout
from repro.spl.compiler import SPLCompiler

from benchmarks.conftest import emit


@dataclass
class Fig2Result:
    layout: Dict[int, List[str]]
    hosts: Dict[int, str]
    sink1_count: int
    sink2_count: int
    paths_seen: set
    inter_pe_edges: int
    intra_pe_edges: int


def run_fig2_scenario(horizon: float = 60.0) -> Fig2Result:
    system = SystemS(hosts=2, seed=42)
    app = build_figure2_application(per_tick=2, period=0.5)
    compiled = SPLCompiler("manual").compile(app)
    job = system.submit_job(compiled)
    system.run_for(horizon)
    sink1 = job.operator_instance("sink1")
    sink2 = job.operator_instance("sink2")
    paths = set()
    for tup in sink1.seen + sink2.seen:
        paths.update(tup.get("path", []))
    return Fig2Result(
        layout={pe.index: list(pe.operators) for pe in compiled.pes},
        hosts={pe.index: pe.host_name for pe in job.pes},
        sink1_count=len(sink1.seen),
        sink2_count=len(sink2.seen),
        paths_seen=paths,
        inter_pe_edges=len(compiled.inter_pe_edges),
        intra_pe_edges=len(compiled.intra_pe_edges),
    )


def test_fig2_partitioning(benchmark, results_dir):
    result = benchmark.pedantic(run_fig2_scenario, rounds=1, iterations=1)

    lines = ["physical layout (Fig. 3):"]
    for index in sorted(result.layout):
        lines.append(
            f"  PE {index} on {result.hosts[index]}: {result.layout[index]}"
        )
    lines.append("")
    lines.append(f"inter-PE streams: {result.inter_pe_edges}, "
                 f"fused streams: {result.intra_pe_edges}")
    lines.append(f"sink1 tuples: {result.sink1_count}, "
                 f"sink2 tuples: {result.sink2_count}")
    emit(results_dir, "fig02_partitioning", lines)

    assert result.layout == expected_figure3_layout()
    # one composite spans two PEs; one PE mixes both instances
    assert any(
        any(n.startswith("c1.") for n in ops)
        and any(n.startswith("c2.") for n in ops)
        for ops in result.layout.values()
    )
    # two hosts used, as in Fig. 3
    assert len(set(result.hosts.values())) == 2
    # both pipelines process data through both split branches
    assert result.sink1_count > 0 and result.sink2_count > 0
    assert result.paths_seen == {"op4", "op5"}
