"""Figure 7 — application dependency schedule and garbage collection
(Sec. 4.4).

Paper walk-through: with the six-application dependency graph, starting
`all` submits the dependency-free fb/tw/fox/msnbc immediately, then sleeps
80 seconds (the largest uptime requirement) before submitting `all`; `sn`,
started in the same round, goes first because its required sleep (20 s) is
lower.  Cancelling `sn` leaves fb/tw running (still feeding `all`);
cancelling `all` garbage-collects fb/tw/msnbc but keeps fox (not
garbage-collectable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro import ManagedApplication, Orchestrator, OrcaDescriptor, SystemS
from repro.errors import StarvationError
from repro.orca.scopes import JobCancellationScope, JobSubmissionScope
from repro.spl.application import Application
from repro.spl.library import Beacon, Sink

from benchmarks.conftest import emit

#: (dependent, dependency, uptime requirement) — the Fig. 7 arcs
EDGES = [
    ("sn", "fb", 20.0),
    ("sn", "tw", 20.0),
    ("all", "fb", 80.0),
    ("all", "tw", 30.0),
    ("all", "fox", 45.0),
    ("all", "msnbc", 30.0),
]
#: garbage-collection flags (fox is the paper's F example)
GC_FLAGS = {"fb": True, "tw": True, "fox": False, "msnbc": True,
            "sn": True, "all": True}
APP_NAMES = {"fb": "fb", "tw": "tw", "fox": "fox", "msnbc": "msnbc",
             "sn": "sn", "all": "allmedia"}


def make_feed_app(name: str) -> Application:
    app = Application(name)
    g = app.graph
    src = g.add_operator("src", Beacon, params={"values": {}})
    sink = g.add_operator("sink", Sink, params={"record": False})
    g.connect(src.oport(0), sink.iport(0))
    return app


class Fig7Orca(Orchestrator):
    def __init__(self) -> None:
        super().__init__()
        self.timeline: List[Tuple[float, str, str]] = []

    def handleOrcaStart(self, context) -> None:
        self.orca.registerEventScope(JobSubmissionScope("subs"))
        self.orca.registerEventScope(JobCancellationScope("cans"))
        deps = self.orca.deps
        for config_id, app_name in APP_NAMES.items():
            deps.create_app_config(
                config_id, app_name,
                garbage_collectable=GC_FLAGS[config_id],
                gc_timeout=1.0 if GC_FLAGS[config_id] else 0.0,
            )
        for dependent, dependency, uptime in EDGES:
            deps.register_dependency(dependent, dependency, uptime)
        deps.start("all")
        deps.start("sn")

    def handleJobSubmissionEvent(self, context, scopes) -> None:
        self.timeline.append((context.time, "submit", context.config_id))

    def handleJobCancellationEvent(self, context, scopes) -> None:
        kind = "gc" if context.garbage_collected else "cancel"
        self.timeline.append((context.time, kind, context.config_id))


@dataclass
class Fig7Result:
    timeline: List[Tuple[float, str, str]]
    starvation_rejected: bool
    running_after_sn_cancel: List[str]
    running_after_all_cancel: List[str]


def run_fig7_scenario() -> Fig7Result:
    system = SystemS(hosts=4, seed=42)
    service = system.submit_orchestrator(
        OrcaDescriptor(
            name="Fig7Orca",
            logic=Fig7Orca,
            applications=[
                ManagedApplication(name=n, application=make_feed_app(n))
                for n in APP_NAMES.values()
            ],
        )
    )
    logic = service.logic
    system.run_for(100.0)
    starvation_rejected = False
    try:
        service.deps.cancel("fb")  # feeds sn and all
    except StarvationError:
        starvation_rejected = True
    service.deps.cancel("sn")
    system.run_for(10.0)
    after_sn = sorted(j.app_name for j in system.sam.running_jobs())
    service.deps.cancel("all")
    system.run_for(10.0)
    after_all = sorted(j.app_name for j in system.sam.running_jobs())
    return Fig7Result(
        timeline=list(logic.timeline),
        starvation_rejected=starvation_rejected,
        running_after_sn_cancel=after_sn,
        running_after_all_cancel=after_all,
    )


def test_fig7_dependency_schedule(benchmark, results_dir):
    result = benchmark.pedantic(run_fig7_scenario, rounds=1, iterations=1)

    lines = ["dependency graph of Fig. 7 (uptime requirements on arcs)", ""]
    for when, kind, config in result.timeline:
        lines.append(f"  t={when:6.1f}  {kind:7s}  {config}")
    lines.append("")
    lines.append(f"cancel(fb) while in use rejected: {result.starvation_rejected}")
    lines.append(f"running after cancel(sn):  {result.running_after_sn_cancel}")
    lines.append(f"running after cancel(all): {result.running_after_all_cancel}")
    emit(results_dir, "fig07_dependencies", lines)

    submits = {c: t for t, k, c in result.timeline if k == "submit"}
    # "fb, tw, fox, and msnbc are all submitted at the same time"
    assert submits["fb"] == submits["tw"] == submits["fox"] == submits["msnbc"] == 0.0
    # "sn would be submitted first because its required sleeping time (20)
    #  is lower than all's (80)"
    assert submits["sn"] == 20.0
    assert submits["all"] == 80.0
    assert result.starvation_rejected
    # after sn: everything still running (fb/tw feed all)
    assert result.running_after_sn_cancel == [
        "allmedia", "fb", "fox", "msnbc", "tw",
    ]
    # after all: fox survives (not collectable), the rest are GC'd
    assert result.running_after_all_cancel == ["fox"]
    gcs = sorted(c for _, k, c in result.timeline if k == "gc")
    assert gcs == ["fb", "msnbc", "tw"]
