"""Setup shim.

The modern PEP 660 editable-install path requires the ``wheel`` package
(setuptools < 70 shells out to ``bdist_wheel`` while preparing metadata).
In offline environments without ``wheel`` installed, pip falls back to the
legacy ``setup.py develop`` path through this shim:

    pip install -e . --no-build-isolation --no-use-pep517

All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
