"""Monotonic identifier allocation for jobs and PEs.

System S names runtime entities with small monotonically increasing ids;
the orchestrator's event contexts carry these ids, so they must be unique
per System S instance, not per job.
"""

from __future__ import annotations


class IdAllocator:
    """Allocates ``prefix_N`` style identifiers."""

    def __init__(self, prefix: str, start: int = 1) -> None:
        self.prefix = prefix
        self._next = start

    def allocate(self) -> str:
        value = f"{self.prefix}_{self._next}"
        self._next += 1
        return value

    def peek(self) -> str:
        """The id the next allocation would return (for tests)."""
        return f"{self.prefix}_{self._next}"


class IdRegistry:
    """The allocators one System S instance needs."""

    def __init__(self) -> None:
        self.jobs = IdAllocator("job")
        self.pes = IdAllocator("pe")
        self.orcas = IdAllocator("orca")
        self.timers = IdAllocator("timer")
