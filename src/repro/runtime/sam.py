"""SAM — Streams Application Manager.

Sec. 2.2 of the paper: SAM receives application submission and cancellation
requests, spawns all PEs of a job according to their placement constraints,
and can stop and restart PEs.  Our extension for orchestration (Sec. 3):
SAM "keeps track of all orchestrators running in the system and their
associated jobs" and, on a PE crash notification, identifies which ORCA
service manages the crashed PE and pushes the failure to it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.checkpoint.store import CheckpointStore
from repro.errors import (
    CancellationError,
    PEControlError,
    SubmissionError,
    UnknownJobError,
)
from repro.sim.kernel import Kernel
from repro.spl.compiler import CompiledApplication, PESpec, SPLCompiler
from repro.runtime.hc import HostController
from repro.runtime.ids import IdRegistry
from repro.runtime.imports import ImportExportRegistry
from repro.runtime.job import Job, JobState
from repro.runtime.pe import PERuntime, PEState
from repro.runtime.scheduler import PlacementScheduler
from repro.runtime.srm import SRM
from repro.runtime.transport import Transport

if TYPE_CHECKING:  # pragma: no cover
    from repro.checkpoint.service import CheckpointService


class SAM:
    """Job lifecycle manager and orchestrator registry."""

    def __init__(
        self,
        kernel: Kernel,
        srm: SRM,
        hcs: Dict[str, HostController],
        transport: Transport,
        import_export: ImportExportRegistry,
        ids: IdRegistry,
        pe_spawn_delay: float = 0.1,
        pe_restart_delay: float = 1.0,
        failure_notification_delay: float = 0.05,
        auto_restart_pes: bool = False,
        checkpoint_store: Optional[CheckpointStore] = None,
    ) -> None:
        self.kernel = kernel
        self.srm = srm
        self.hcs = hcs
        self.transport = transport
        self.import_export = import_export
        self.ids = ids
        #: committed-epoch snapshots handed to every PE runtime (None keeps
        #: the paper's no-checkpoint semantics)
        self.checkpoint_store = checkpoint_store
        #: the background checkpoint daemon, set by SystemS after
        #: construction (used only for materialized-base cleanup)
        self.checkpoint_service: Optional["CheckpointService"] = None
        self.pe_spawn_delay = pe_spawn_delay
        self.pe_restart_delay = pe_restart_delay
        self.failure_notification_delay = failure_notification_delay
        self.auto_restart_pes = auto_restart_pes
        self.scheduler = PlacementScheduler()
        self.jobs: Dict[str, Job] = {}
        #: host -> job id holding it through an exclusive pool
        self.reserved_hosts: Dict[str, str] = {}
        #: orca id -> failure callback installed by the ORCA service
        self._orca_failure_sinks: Dict[str, Callable] = {}
        #: orca id -> host failure callback installed by the ORCA service
        self._orca_host_sinks: Dict[str, Callable] = {}
        #: runtime-internal observers of PE crashes / completed restarts
        #: (the elastic controller registers here to mask/unmask parallel
        #: region channels whose PE went down)
        self.pe_failure_observers: List[Callable[[PERuntime, str], None]] = []
        self.pe_restart_observers: List[Callable[[PERuntime], None]] = []
        #: runtime-internal observers of PE-set topology changes: called with
        #: (job, change kind) after add_pes/remove_pes so consumers holding a
        #: materialized view of the stream graph (ORCA) can refresh it even
        #: when the rescale was initiated by someone else
        self.topology_observers: List[Callable[[Job, str], None]] = []
        srm.on_host_failure = self._on_host_failure
        for hc in hcs.values():
            hc.on_pe_crash = self._on_local_pe_crash
        #: restart counter for bookkeeping/tests
        self.restarts_issued = 0

    # -- submission -------------------------------------------------------------

    def submit_job(
        self,
        compiled: CompiledApplication,
        params: Optional[Dict[str, str]] = None,
        owner_orca: Optional[str] = None,
    ) -> Job:
        """Create a job, place and spawn its PEs."""
        resolved = compiled.application.resolve_parameters(params)
        if compiled.parallel_regions and compiled.source_application is not None:
            # Applications with parallel regions get a private compilation
            # per job: a live rescale mutates the job's expanded graph and
            # physical plan, which must never leak into sibling jobs
            # (replicas) submitted from the same CompiledApplication.
            compiled = SPLCompiler(
                compiled.strategy, compiled.target_pe_count
            ).compile(compiled.source_application)
        job_id = self.ids.jobs.allocate()
        load = self._pes_per_host()
        try:
            placement = self.scheduler.place(
                compiled,
                hosts=list(self.srm.hosts.values()),
                load=load,
                reserved=self.reserved_hosts,
                job_id=job_id,
            )
        except Exception as exc:
            # Roll back any reservations the scheduler made before failing.
            self._release_reservations(job_id)
            raise SubmissionError(
                f"cannot place application {compiled.name!r}: {exc}"
            ) from exc
        job = Job(
            job_id=job_id,
            compiled=compiled,
            params=resolved,
            submit_time=self.kernel.now,
            owner_orca=owner_orca,
        )
        job.reserved_hosts = list(placement.newly_reserved)
        for pe_spec in compiled.pes:
            pe = PERuntime(
                pe_id=self.ids.pes.allocate(),
                spec=pe_spec,
                job=job,
                kernel=self.kernel,
                transport=self.transport,
                publish_export=self.import_export.publish,
                checkpoints=self.checkpoint_store,
            )
            host_name = placement.assignment[pe_spec.index]
            self.hcs[host_name].add_pe(pe)
            job.pes.append(pe)
        self.jobs[job_id] = job
        self.kernel.schedule(self.pe_spawn_delay, self._spawn_job_pes, job)
        return job

    def _spawn_job_pes(self, job: Job) -> None:
        if job.state is not JobState.SUBMITTED:
            return
        for pe in job.pes:
            if pe.state is PEState.CONSTRUCTED:
                pe.start()
        job.state = JobState.RUNNING
        self.import_export.connect_job(job)

    # -- cancellation -----------------------------------------------------------------

    def cancel_job(self, job_id: str) -> Job:
        job = self.get_job(job_id)
        if job.state in (JobState.CANCELLED, JobState.CANCELLING):
            raise CancellationError(f"job {job_id} already cancelled")
        job.state = JobState.CANCELLING
        self.import_export.disconnect_job(job_id)
        for pe in job.pes:
            pe.stop(capture_state=False)  # the job is gone; nothing rehydrates
            if pe.host_name and pe.host_name in self.hcs:
                self.hcs[pe.host_name].remove_pe(pe.pe_id)
        self._release_reservations(job_id)
        self.srm.drop_job_metrics(job_id)
        if self.checkpoint_store is not None:
            self.checkpoint_store.drop_job(job_id)
        if self.checkpoint_service is not None:
            self.checkpoint_service.forget_job(job_id)
        job.state = JobState.CANCELLED
        job.cancel_time = self.kernel.now
        return job

    def _release_reservations(self, job_id: str) -> None:
        self.reserved_hosts = {
            host: owner
            for host, owner in self.reserved_hosts.items()
            if owner != job_id
        }

    # -- PE control ----------------------------------------------------------------------

    def restart_pe(self, job_id: str, pe_id: str, rehydrate: bool = False) -> None:
        """Restart a crashed/stopped PE after the configured restart delay.

        ``rehydrate=True`` restores each stateful operator from its last
        quiesced snapshot (see :meth:`PERuntime.restart`); the default is
        the paper's restart-empty semantics.
        """
        job = self.get_job(job_id)
        pe = job.pe_by_id(pe_id)
        if pe.state is PEState.RUNNING:
            raise PEControlError(f"PE {pe_id} is running; cannot restart")
        self.restarts_issued += 1
        self.kernel.schedule(
            self.pe_restart_delay, self._do_restart, job, pe, rehydrate
        )

    def _do_restart(self, job: Job, pe: PERuntime, rehydrate: bool = False) -> None:
        if job.state is not JobState.RUNNING:
            return
        if pe.state is PEState.RUNNING:
            return
        pe.restart(rehydrate=rehydrate)
        for observer in self.pe_restart_observers:
            observer(pe)

    def stop_pe(self, job_id: str, pe_id: str) -> None:
        job = self.get_job(job_id)
        pe = job.pe_by_id(pe_id)
        pe.stop()

    # -- dynamic PE set changes (elastic parallel regions) -----------------------

    def add_pes(self, job_id: str, pe_specs: List[PESpec]) -> List[PERuntime]:
        """Place and start additional PEs of a *running* job.

        Used by the elastic controller when a parallel region scales out:
        the job's compiled plan has already been extended with the new PE
        specs; this call gives them hosts and live runtimes.  The new PEs
        start immediately (the rescale protocol has already paid its own
        synchronization cost at the epoch barrier).
        """
        job = self.get_job(job_id)
        if job.state is not JobState.RUNNING:
            raise PEControlError(f"job {job_id} is not running; cannot add PEs")
        load = self._pes_per_host()
        try:
            placement = self.scheduler.place_pes(
                pe_specs,
                job.compiled.application.host_pools,
                hosts=list(self.srm.hosts.values()),
                load=load,
                reserved=self.reserved_hosts,
                job_id=job_id,
            )
        except Exception as exc:
            raise SubmissionError(
                f"cannot place additional PEs of job {job_id}: {exc}"
            ) from exc
        job.reserved_hosts.extend(placement.newly_reserved)
        added: List[PERuntime] = []
        for pe_spec in pe_specs:
            pe = PERuntime(
                pe_id=self.ids.pes.allocate(),
                spec=pe_spec,
                job=job,
                kernel=self.kernel,
                transport=self.transport,
                publish_export=self.import_export.publish,
                checkpoints=self.checkpoint_store,
            )
            host_name = placement.assignment[pe_spec.index]
            self.hcs[host_name].add_pe(pe)
            job.pes.append(pe)
            pe.start()
            added.append(pe)
        self.notify_topology_changed(job, "add_pes")
        return added

    def remove_pes(self, job_id: str, pe_ids: List[str]) -> None:
        """Stop and discard PEs of a running job (parallel-region scale-in).

        The PEs' metrics are dropped from SRM so downstream consumers (the
        ORCA metric poll, per-channel aggregation) never see ghost channels.
        """
        job = self.get_job(job_id)
        for pe_id in pe_ids:
            pe = job.pe_by_id(pe_id)
            # discarded for good: skip the quiesced-snapshot deep copy (the
            # migration phase already extracted anything worth keeping)
            pe.stop(capture_state=False)
            if pe.host_name and pe.host_name in self.hcs:
                self.hcs[pe.host_name].remove_pe(pe.pe_id)
            job.pes.remove(pe)
            self.srm.drop_pe_metrics(job_id, pe.pe_id)
            # a removed channel PE can never be restarted: its checkpoint
            # chain would only ever rehydrate a ghost
            if self.checkpoint_store is not None:
                self.checkpoint_store.drop_pe(job_id, pe.pe_id)
            if self.checkpoint_service is not None:
                self.checkpoint_service.forget_pe(job_id, pe.pe_id)
            # reliable delivery: condemn anything still pending toward the
            # removed PE (first-cause-wins loss attribution) and drop its
            # receiver-side watermarks/replay buffers
            self.transport.forget_pe(pe.pe_id)
        self.notify_topology_changed(job, "remove_pes")

    def notify_topology_changed(self, job: Job, kind: str) -> None:
        """Fan one topology-change notification out to every subscriber.

        The single announcement point for anything that changes a job's
        PE set or channel-to-PE mapping: :meth:`add_pes` and
        :meth:`remove_pes` call it, and the elastic controller calls it
        when a rescale protocol finishes (completed *or* rolled back) —
        the rewired mapping is only final then, so a subscriber that
        refreshed at the mid-protocol ``add_pes`` would otherwise keep a
        stale materialized view whenever the rescale was driven from
        outside it (a chaos perturbation, an autoscaler, another
        orchestrator).  ``kind`` is advisory ("add_pes", "remove_pes",
        "rescale", ...); subscribers refresh identically for all kinds.
        """
        for observer in list(self.topology_observers):
            observer(job, kind)

    # -- failure notification path ----------------------------------------------------------

    def _on_local_pe_crash(self, pe: PERuntime, reason: str) -> None:
        """A host controller reports a local PE crash."""
        detection_ts = self.kernel.now
        self.kernel.schedule(
            self.failure_notification_delay,
            self._dispatch_pe_failure,
            pe,
            reason,
            detection_ts,
        )

    def _on_host_failure(self, host_name: str, detection_ts: float) -> None:
        """SRM reports a host failure (missed heartbeats)."""
        hc = self.hcs.get(host_name)
        if hc is not None and hc.alive:
            hc.kill()
        for job in self.jobs.values():
            if job.state is not JobState.RUNNING:
                continue
            for pe in job.pes:
                if pe.host_name == host_name and pe.state is PEState.CRASHED:
                    self._dispatch_pe_failure(pe, "host_failure", detection_ts)
        for sink in self._orca_host_sinks.values():
            sink(host_name, detection_ts)

    def _dispatch_pe_failure(
        self, pe: PERuntime, reason: str, detection_ts: float
    ) -> None:
        job = pe.job
        if job.state is not JobState.RUNNING:
            return
        for observer in self.pe_failure_observers:
            observer(pe, reason)
        sink = None
        if job.owner_orca is not None:
            sink = self._orca_failure_sinks.get(job.owner_orca)
        if sink is not None:
            # One extra RPC from SAM to the ORCA service (Sec. 3): the
            # notification delay was already applied by the caller.
            sink(pe, reason, detection_ts)
        elif self.auto_restart_pes:
            self.restart_pe(job.job_id, pe.pe_id)

    # -- orchestrator registry ------------------------------------------------------------

    def register_orca(
        self,
        orca_id: str,
        failure_sink: Callable,
        host_failure_sink: Optional[Callable] = None,
    ) -> None:
        """An ORCA service subscribes to failures of the jobs it owns."""
        self._orca_failure_sinks[orca_id] = failure_sink
        if host_failure_sink is not None:
            self._orca_host_sinks[orca_id] = host_failure_sink

    def unregister_orca(self, orca_id: str) -> None:
        self._orca_failure_sinks.pop(orca_id, None)
        self._orca_host_sinks.pop(orca_id, None)

    # -- queries ------------------------------------------------------------------------------

    def get_job(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise UnknownJobError(f"unknown job {job_id!r}") from None

    def running_jobs(self) -> List[Job]:
        return [j for j in self.jobs.values() if j.state is JobState.RUNNING]

    def _pes_per_host(self) -> Dict[str, int]:
        load: Dict[str, int] = {}
        for job in self.jobs.values():
            if job.state in (JobState.CANCELLED,):
                continue
            for pe in job.pes:
                if pe.host_name is not None and pe.state is not PEState.STOPPED:
                    load[pe.host_name] = load.get(pe.host_name, 0) + 1
        return load
