"""PE placement scheduler.

Sec. 2.1 of the paper: "during runtime, PEs are distributed over hosts
according to host placement constraints informed by developers (e.g. PEs 1
and 3 cannot run on the same host) as well as the resource availability of
hosts and load balance".  Sec. 4.3 adds exclusive host pools: sets of hosts
that cannot be used by any other application, which the replica-failover
orchestrator (Sec. 5.2) relies on.

The scheduler is stateless; SAM passes in the current cluster occupancy and
reservation map and records the decisions the scheduler returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import PlacementError
from repro.spl.compiler import CompiledApplication, PESpec
from repro.spl.hostpool import DEFAULT_POOL, HostPool, HostPoolSet
from repro.runtime.host import Host


@dataclass
class PlacementResult:
    """Host assignment for every PE plus any new exclusive reservations."""

    assignment: Dict[int, str]  #: PE index -> host name
    newly_reserved: List[str] = field(default_factory=list)


class PlacementScheduler:
    """Places the PEs of one job onto cluster hosts."""

    def place(
        self,
        compiled: CompiledApplication,
        hosts: List[Host],
        load: Dict[str, int],
        reserved: Dict[str, str],
        job_id: str,
    ) -> PlacementResult:
        """Compute a host for every PE of ``compiled``.

        ``load`` is the current number of PEs per host; ``reserved`` maps a
        host name to the job id holding it exclusively.  Raises
        :class:`PlacementError` when constraints cannot be met.
        """
        return self.place_pes(
            compiled.pes,
            compiled.application.host_pools,
            hosts=hosts,
            load=load,
            reserved=reserved,
            job_id=job_id,
        )

    def place_pes(
        self,
        pe_specs: List[PESpec],
        host_pools: HostPoolSet,
        hosts: List[Host],
        load: Dict[str, int],
        reserved: Dict[str, str],
        job_id: str,
    ) -> PlacementResult:
        """Place an arbitrary set of PE specs (a whole job, or PEs added to
        a running job when a parallel region scales out)."""
        pools = host_pools
        live = [h for h in hosts if h.is_up]
        if not live:
            raise PlacementError("no hosts are up")

        newly_reserved: List[str] = []
        # Resolve the candidate host list per pool name (None = default).
        pool_candidates: Dict[Optional[str], List[Host]] = {}
        pes_per_pool: Dict[Optional[str], List[PESpec]] = {}
        for pe in pe_specs:
            pes_per_pool.setdefault(pe.host_pool, []).append(pe)
        for pool_name, pool_pes in pes_per_pool.items():
            if pool_name is not None:
                pool = pools.get(pool_name)
            elif "default" in pools:
                # Unpinned PEs fall into the application's own default pool
                # when it declares one — this is how the exclusive-pool
                # actuation (Sec. 4.3) captures pool-less applications.
                pool = pools.get("default")
            else:
                pool = DEFAULT_POOL
            candidates = self._resolve_pool(
                pool, pool_pes, live, load, reserved, job_id, newly_reserved
            )
            pool_candidates[pool_name] = candidates

        # Place PEs respecting exlocation / colocation tags, balancing load.
        running_load = dict(load)
        assignment: Dict[int, str] = {}
        exloc_hosts: Dict[str, List[str]] = {}  # tag -> hosts already used
        coloc_hosts: Dict[str, str] = {}  # tag -> chosen host
        for pe in sorted(pe_specs, key=lambda p: p.index):
            candidates = list(pool_candidates[pe.host_pool])
            # colocation pins the PE to an already-chosen host
            pinned: Optional[str] = None
            for tag in sorted(pe.host_colocations):
                if tag in coloc_hosts:
                    if pinned is not None and coloc_hosts[tag] != pinned:
                        raise PlacementError(
                            f"PE {pe.index}: contradictory colocation tags"
                        )
                    pinned = coloc_hosts[tag]
            if pinned is not None:
                candidates = [h for h in candidates if h.name == pinned]
            # exlocation removes hosts already used by peers with the tag
            for tag in pe.host_exlocations:
                used = exloc_hosts.get(tag, [])
                candidates = [h for h in candidates if h.name not in used]
            # capacity
            candidates = [
                h
                for h in candidates
                if h.capacity is None or running_load.get(h.name, 0) < h.capacity
            ]
            if not candidates:
                raise PlacementError(
                    f"no host satisfies constraints of PE {pe.index} "
                    f"(pool={pe.host_pool!r}, exloc={sorted(pe.host_exlocations)}, "
                    f"coloc={sorted(pe.host_colocations)}) in job {job_id}"
                )
            chosen = min(
                candidates, key=lambda h: (running_load.get(h.name, 0), h.name)
            )
            assignment[pe.index] = chosen.name
            running_load[chosen.name] = running_load.get(chosen.name, 0) + 1
            for tag in pe.host_exlocations:
                exloc_hosts.setdefault(tag, []).append(chosen.name)
            for tag in pe.host_colocations:
                coloc_hosts[tag] = chosen.name
        return PlacementResult(assignment=assignment, newly_reserved=newly_reserved)

    # -- helpers -----------------------------------------------------------------

    def _resolve_pool(
        self,
        pool: HostPool,
        pool_pes: List[PESpec],
        live: List[Host],
        load: Dict[str, int],
        reserved: Dict[str, str],
        job_id: str,
        newly_reserved: List[str],
    ) -> List[Host]:
        """Candidate hosts for a pool; reserves hosts for exclusive pools."""
        matching = [
            h
            for h in live
            if pool.matches_host(h.name, h.tags)
            and reserved.get(h.name, job_id) == job_id
        ]
        if not pool.exclusive:
            if pool.size is not None:
                matching = sorted(
                    matching, key=lambda h: (load.get(h.name, 0), h.name)
                )[: pool.size]
            if not matching:
                raise PlacementError(f"host pool {pool.name!r} matches no usable host")
            return matching
        # Exclusive pool: only hosts that are currently empty (no other
        # job's PEs) and unreserved can be taken over.
        free = [
            h
            for h in matching
            if load.get(h.name, 0) == 0 and h.name not in reserved
        ]
        want = pool.size if pool.size is not None else max(1, len(pool_pes))
        take = sorted(free, key=lambda h: h.name)[:want]
        if pool.size is not None and len(take) < pool.size:
            raise PlacementError(
                f"exclusive pool {pool.name!r} requires {pool.size} free hosts, "
                f"only {len(take)} available"
            )
        if not take:
            raise PlacementError(
                f"exclusive pool {pool.name!r}: no free host to reserve"
            )
        for host in take:
            reserved[host.name] = job_id
            newly_reserved.append(host.name)
        return take
