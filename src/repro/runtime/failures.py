"""Failure injection.

The paper's Sec. 5.2 experiment "forcefully trigger[s] an orchestrator
event" by killing a PE of the active replica.  The injector provides that
kill switch — immediate or scheduled — plus whole-host failures, which SRM
then detects through missed heartbeats.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import UnknownHostError, UnknownPEError
from repro.sim.kernel import Kernel, ScheduledEvent
from repro.runtime.hc import HostController
from repro.runtime.pe import PEState
from repro.runtime.sam import SAM


class FailureInjector:
    """Deterministic fault injection for experiments and tests."""

    def __init__(self, kernel: Kernel, sam: SAM) -> None:
        self.kernel = kernel
        self.sam = sam
        self.injected = 0

    def crash_pe(
        self,
        job_id: str,
        pe_index: Optional[int] = None,
        pe_id: Optional[str] = None,
        reason: str = "injected_fault",
        at: Optional[float] = None,
    ) -> Optional[ScheduledEvent]:
        """Crash one PE of a job, now or at an absolute simulated time."""
        job = self.sam.get_job(job_id)
        if pe_id is not None:
            pe = job.pe_by_id(pe_id)
        elif pe_index is not None:
            pe = job.pe_by_index(pe_index)
        else:
            raise UnknownPEError("crash_pe needs pe_index or pe_id")

        def do_crash() -> None:
            if pe.state is PEState.RUNNING:
                self.injected += 1
                pe.crash(reason)

        if at is None:
            do_crash()
            return None
        return self.kernel.schedule_at(at, do_crash, label=f"crash-{pe.pe_id}")

    def fail_host(
        self, host_name: str, at: Optional[float] = None
    ) -> Optional[ScheduledEvent]:
        """Take a whole host down (kills its HC and every local PE)."""
        hc: Optional[HostController] = self.sam.hcs.get(host_name)
        if hc is None:
            raise UnknownHostError(f"unknown host {host_name!r}")

        def do_fail() -> None:
            if hc.alive:
                self.injected += 1
                hc.kill()

        if at is None:
            do_fail()
            return None
        return self.kernel.schedule_at(at, do_fail, label=f"fail-{host_name}")
