"""Failure injection.

The paper's Sec. 5.2 experiment "forcefully trigger[s] an orchestrator
event" by killing a PE of the active replica.  The injector provides that
kill switch — immediate or scheduled — plus whole-host failures, which SRM
then detects through missed heartbeats.

The injector is the bottom rung of the chaos subsystem
(:mod:`repro.chaos`): scheduled injections are tracked and cancellable,
injections that find their target already down are *recorded no-ops*
instead of silent skips, and per-kind counters make every campaign's
fault mix inspectable (exposed through the ORCA service's
``chaos_status()``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import UnknownHostError, UnknownPEError
from repro.sim.kernel import Kernel, ScheduledEvent
from repro.runtime.hc import HostController
from repro.runtime.pe import PEState
from repro.runtime.sam import SAM


@dataclass(frozen=True)
class NoopInjection:
    """An injection that fired but found nothing left to kill.

    A crash aimed at a PE that already crashed (or was stopped) is not an
    error — concurrent faults race by design — but it must not disappear
    either, or a campaign could not tell "the fault landed" from "the
    fault was a ghost".
    """

    kind: str
    target: str
    reason: str
    time: float


@dataclass
class InjectionStats:
    """Counters of one injector, as served by ``chaos_status()``."""

    injected: int
    by_kind: Dict[str, int] = field(default_factory=dict)
    noops: int = 0
    pending: int = 0


class FailureInjector:
    """Deterministic fault injection for experiments and tests."""

    def __init__(self, kernel: Kernel, sam: SAM) -> None:
        self.kernel = kernel
        self.sam = sam
        #: total injections that actually landed (kills issued)
        self.injected = 0
        #: injection kind ("crash_pe", "fail_host", ...) -> landed count
        self.by_kind: Dict[str, int] = {}
        #: injections that found their target already down, in order
        self.noops: List[NoopInjection] = []
        #: (handle, fired-flag) per scheduled injection
        self._pending: List[tuple] = []

    # -- bookkeeping --------------------------------------------------------

    def _record(self, kind: str) -> None:
        self.injected += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def _record_noop(self, kind: str, target: str, reason: str) -> None:
        self.noops.append(
            NoopInjection(kind=kind, target=target, reason=reason, time=self.kernel.now)
        )

    def _schedule(self, at: float, fn, label: str) -> ScheduledEvent:
        """Schedule an injection callback with an explicit fired flag.

        ``ScheduledEvent`` cannot tell "already ran" from "pending at the
        same timestamp", so the wrapper records firing — pending counts
        and cancel_all stay exact even when queried from a handler
        running at the injection's own sim instant.
        """
        fired: List[bool] = []

        def run() -> None:
            fired.append(True)
            fn()

        handle = self.kernel.schedule_at(at, run, label=label)
        self._pending.append((handle, fired))
        if len(self._pending) > 64:
            self._pending = [
                (h, f) for h, f in self._pending if not h.cancelled and not f
            ]
        return handle

    def pending_count(self) -> int:
        """Scheduled injections that have neither fired nor been cancelled."""
        return sum(
            1 for handle, fired in self._pending
            if not handle.cancelled and not fired
        )

    def cancel_all(self) -> int:
        """Cancel every still-pending scheduled injection.

        Returns:
            How many injections were actually retracted.
        """
        cancelled = 0
        for handle, fired in self._pending:
            if not handle.cancelled and not fired:
                handle.cancel()
                cancelled += 1
        self._pending = []
        return cancelled

    def stats(self) -> InjectionStats:
        """Counter snapshot (the ``chaos_status()`` inspection payload)."""
        return InjectionStats(
            injected=self.injected,
            by_kind=dict(self.by_kind),
            noops=len(self.noops),
            pending=self.pending_count(),
        )

    # -- PE faults ----------------------------------------------------------

    def crash_pe(
        self,
        job_id: str,
        pe_index: Optional[int] = None,
        pe_id: Optional[str] = None,
        reason: str = "injected_fault",
        at: Optional[float] = None,
    ) -> Optional[ScheduledEvent]:
        """Crash one PE of a job, now or at an absolute simulated time.

        A crash aimed at a PE that is not RUNNING when the injection fires
        is a recorded no-op (see :class:`NoopInjection`), never an error:
        chaos campaigns race faults against recoveries by design.

        Args:
            job_id: The job owning the PE.
            pe_index: PE index within the job (or pass ``pe_id``).
            pe_id: PE id (or pass ``pe_index``).
            reason: Crash reason propagated to failure events.
            at: Absolute sim time to fire (None: immediately).

        Returns:
            The cancellable schedule handle when ``at`` is given, else None.
        """
        job = self.sam.get_job(job_id)
        if pe_id is not None:
            pe = job.pe_by_id(pe_id)
        elif pe_index is not None:
            pe = job.pe_by_index(pe_index)
        else:
            raise UnknownPEError("crash_pe needs pe_index or pe_id")

        def do_crash() -> None:
            if pe.state is PEState.RUNNING:
                self._record("crash_pe")
                pe.crash(reason)
            else:
                self._record_noop("crash_pe", pe.pe_id, f"pe_{pe.state.value}")

        if at is None:
            do_crash()
            return None
        return self._schedule(at, do_crash, f"crash-{pe.pe_id}")

    def restart_pe(
        self,
        job_id: str,
        pe_id: str,
        rehydrate: bool = False,
        at: Optional[float] = None,
    ) -> Optional[ScheduledEvent]:
        """Issue a SAM restart for a downed PE, now or at a scheduled time.

        The recovery half of a PE flap.  Restarting a PE that is already
        RUNNING when the injection fires is a recorded no-op.

        Args:
            job_id: The job owning the PE.
            pe_id: The PE to restart.
            rehydrate: Restore state from the best available snapshot.
            at: Absolute sim time to fire (None: immediately).

        Returns:
            The cancellable schedule handle when ``at`` is given, else None.
        """
        job = self.sam.get_job(job_id)
        pe = job.pe_by_id(pe_id)

        def do_restart() -> None:
            if pe.state is PEState.RUNNING:
                self._record_noop("restart_pe", pe.pe_id, "pe_running")
                return
            if all(p.pe_id != pe_id for p in job.pes):
                # the PE was removed (e.g. a rescale shrank it away)
                # between scheduling and firing: a recorded no-op, never
                # an exception into the kernel
                self._record_noop("restart_pe", pe.pe_id, "pe_removed")
                return
            self._record("restart_pe")
            self.sam.restart_pe(job_id, pe_id, rehydrate=rehydrate)

        if at is None:
            do_restart()
            return None
        return self._schedule(at, do_restart, f"restart-{pe_id}")

    # -- host faults --------------------------------------------------------

    def fail_host(
        self, host_name: str, at: Optional[float] = None
    ) -> Optional[ScheduledEvent]:
        """Take a whole host down (kills its HC and every local PE).

        Failing a host whose controller is already dead is a recorded
        no-op.

        Args:
            host_name: The host to kill.
            at: Absolute sim time to fire (None: immediately).

        Returns:
            The cancellable schedule handle when ``at`` is given, else None.
        """
        hc: Optional[HostController] = self.sam.hcs.get(host_name)
        if hc is None:
            raise UnknownHostError(f"unknown host {host_name!r}")

        def do_fail() -> None:
            if hc.alive:
                self._record("fail_host")
                hc.kill()
            else:
                self._record_noop("fail_host", host_name, "host_down")

        if at is None:
            do_fail()
            return None
        return self._schedule(at, do_fail, f"fail-{host_name}")

    def revive_host(
        self, host_name: str, at: Optional[float] = None
    ) -> Optional[ScheduledEvent]:
        """Bring a failed host (and its controller) back up, with no PEs.

        The recovery half of a host flap; crashed PEs that lived on the
        host stay down until something restarts them.  Reviving a host
        that is already alive is a recorded no-op.

        Args:
            host_name: The host to revive.
            at: Absolute sim time to fire (None: immediately).

        Returns:
            The cancellable schedule handle when ``at`` is given, else None.
        """
        hc: Optional[HostController] = self.sam.hcs.get(host_name)
        if hc is None:
            raise UnknownHostError(f"unknown host {host_name!r}")

        def do_revive() -> None:
            if hc.alive:
                self._record_noop("revive_host", host_name, "host_up")
                return
            self._record("revive_host")
            hc.revive()

        if at is None:
            do_revive()
            return None
        return self._schedule(at, do_revive, f"revive-{host_name}")
