"""Simulated System S runtime.

This package is the substrate of the paper: the middleware the orchestrator
plugs into.  It reproduces the three daemons of Sec. 2.2 — SAM (job
lifecycle), SRM (hosts, liveness, metrics collection) and per-host HCs —
plus PEs that genuinely execute operator code over a discrete-event kernel,
dynamic import/export stream connections, and failure injection/detection.
"""

from repro.runtime.host import Host, HostState
from repro.runtime.job import Job, JobState
from repro.runtime.pe import PERuntime, PEState
from repro.runtime.system import SystemConfig, SystemS

__all__ = [
    "Host",
    "HostState",
    "Job",
    "JobState",
    "PERuntime",
    "PEState",
    "SystemConfig",
    "SystemS",
]
