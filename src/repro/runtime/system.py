"""SystemS — the facade wiring the whole simulated middleware together.

Constructing a :class:`SystemS` builds the kernel, SRM, per-host HCs, the
transport, the import/export registry, SAM and the failure injector, and
starts the periodic daemon loops.  Orchestrators are submitted through
:meth:`SystemS.submit_orchestrator`, mirroring the paper's Fig. 4 flow
(user submits the ORCA descriptor to SAM, which forks the ORCA service
process).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.checkpoint import CheckpointService, CheckpointStore
from repro.sim.rand import RandomStreams
from repro.runtime.exec import build_executor
from repro.spl.application import Application
from repro.spl.compiler import CompiledApplication, SPLCompiler
from repro.runtime.failures import FailureInjector
from repro.runtime.hc import HostController
from repro.runtime.host import Host
from repro.runtime.ids import IdRegistry
from repro.runtime.imports import ImportExportRegistry
from repro.runtime.job import Job
from repro.runtime.sam import SAM
from repro.runtime.srm import SRM
from repro.runtime.transport import Transport

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.engine import ChaosEngine
    from repro.elastic.controller import ElasticController
    from repro.orca.descriptor import OrcaDescriptor
    from repro.orca.service import OrcaService


@dataclass
class SystemConfig:
    """Timing constants and policies of the simulated middleware.

    Defaults follow the paper where it states them: PEs/operators deliver
    updated metric values to SRM every 3 seconds; the ORCA service polls
    SRM every 15 seconds (changeable at runtime); PE failure events are
    pushed immediately, costing one extra RPC.
    """

    #: scheduler backend: "sim" (deterministic discrete-event kernel,
    #: the default and the testing twin) or "wallclock" (real-time
    #: executor over ``time.monotonic()`` — see :mod:`repro.runtime.exec`)
    executor: str = "sim"
    #: wallclock backend only: virtual seconds per real second (> 1
    #: compresses campaign timelines for fast real-time smoke tests;
    #: benchmarks report at 1.0)
    wallclock_time_scale: float = 1.0
    metric_push_interval: float = 3.0
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 3.0
    sweep_interval: float = 1.0
    transport_latency: float = 0.001
    #: transport batching: values > 1 coalesce same-flow tuples into
    #: :class:`~repro.spl.tuples.TupleBatch` units flushed at this size
    #: (one kernel event and one operator dispatch per batch); 1 keeps
    #: today's one-event-per-tuple semantics and is the default
    batch_max_size: int = 1
    #: sim-time linger before a partially filled batch flushes; 0.0
    #: flushes at the end of the current kernel instant, which still
    #: coalesces bursts emitted within one upstream activation
    batch_linger: float = 0.0
    #: transport delivery guarantee: "best_effort" (the paper's
    #: semantics — lossy faults lose tuples, crashes condemn in-flight
    #: items), "at_least_once" (per-link acks with sim-time retry/backoff
    #: recover wire losses; duplicates possible), or "exactly_once"
    #: (at-least-once plus in-order receivers with (link, seq) duplicate
    #: suppression, watermarks persisted into checkpoint epochs, and
    #: epoch-aligned crash replay) — see :mod:`repro.runtime.delivery`
    delivery: str = "best_effort"
    #: reliable modes: sim-seconds without an ack before the first
    #: retransmit (the default clears ordinary latency spikes without
    #: spurious retransmission but beats sub-second partitions)
    ack_timeout: float = 0.25
    #: reliable modes: multiplier applied to the retry interval after
    #: every unacknowledged attempt
    retry_backoff: float = 2.0
    #: reliable modes: ceiling on the backed-off retry interval
    max_retry_interval: float = 2.0
    #: exactly-once: per-link byte cap on the replay buffer retained
    #: between epoch commits; a link at the cap parks new units in a
    #: sender-side stall queue (backpressure) until the next commit
    #: truncates the buffer; 0 = unbounded (the historical behavior).
    #: Only links toward PEs that commit epochs (stateful, checkpointed)
    #: are capped — a never-committing destination could never release
    #: the stall, so those links keep unbounded retention
    replay_buffer_max_bytes: int = 0
    pe_spawn_delay: float = 0.1
    pe_restart_delay: float = 1.0
    failure_notification_delay: float = 0.05
    orca_rpc_latency: float = 0.002
    orca_poll_interval: float = 15.0
    auto_restart_pes: bool = False
    #: elastic re-parallelization: drain-poll cadence and give-up horizon
    elastic_drain_poll: float = 0.05
    elastic_drain_timeout: float = 60.0
    #: periodic checkpointing: sim-seconds between background snapshots of
    #: every stateful PE's state store (0 keeps the paper's no-checkpoint
    #: default: only graceful stops produce restorable snapshots)
    checkpoint_interval: float = 0.0
    #: committed checkpoint epochs retained per PE (>= 1; 2 keeps one
    #: fallback epoch behind the newest commit for torn-epoch recovery)
    checkpoint_retention: int = 2
    #: repro.obs: data-plane span tracing (per-tuple emit/transport/
    #: process spans and the kernel event tap); off keeps the hot path
    #: at a single None check — control-plane recording is always on
    trace_enabled: bool = False
    #: trace every Nth newly created tuple (1 = all; deterministic
    #: counter, never randomness)
    trace_sample_every: int = 1
    #: flight-recorder ring capacity (recent spans retained per job)
    flight_capacity: int = 2048
    #: repro.obs.health: evaluation tick of the always-on health plane
    #: (sliding windows, lag watermarks, bottleneck attribution, SLO
    #: burn rates); <= 0 disables it for microbenchmarks
    health_interval: float = 0.5
    #: burn-rate confirmation window (sim-seconds)
    health_short_window: float = 5.0
    #: burn-rate sustain window (sim-seconds)
    health_long_window: float = 30.0


class SystemS:
    """One simulated System S instance."""

    def __init__(
        self,
        hosts: Union[int, Sequence[Host]] = 4,
        config: Optional[SystemConfig] = None,
        seed: int = 42,
    ) -> None:
        self.config = config or SystemConfig()
        # the executor backend (sim kernel or wall-clock) — every
        # component below schedules against the same contract
        self.kernel = build_executor(self.config)
        self.random = RandomStreams(seed)
        self.ids = IdRegistry()
        if isinstance(hosts, int):
            host_list: List[Host] = [Host(f"host{i + 1}") for i in range(hosts)]
        else:
            host_list = list(hosts)
        self.srm = SRM(
            self.kernel,
            heartbeat_timeout=self.config.heartbeat_timeout,
            sweep_interval=self.config.sweep_interval,
        )
        self.transport = Transport(
            self.kernel,
            latency=self.config.transport_latency,
            # seeded stream: probabilistic link faults (chaos campaigns)
            # stay deterministic per system seed
            rng=self.random.stream("transport"),
            batch_max_size=self.config.batch_max_size,
            batch_linger=self.config.batch_linger,
            delivery=self.config.delivery,
            ack_timeout=self.config.ack_timeout,
            retry_backoff=self.config.retry_backoff,
            max_retry_interval=self.config.max_retry_interval,
            # separate seeded stream: ack drop rolls must not perturb
            # the forward-path roll sequence
            ack_rng=self.random.stream("transport_acks"),
            replay_buffer_max_bytes=self.config.replay_buffer_max_bytes,
        )
        self.import_export = ImportExportRegistry(
            self.kernel, latency=self.config.transport_latency
        )
        self.hcs: Dict[str, HostController] = {}
        for host in host_list:
            self.srm.register_host(host)
            hc = HostController(
                host,
                self.kernel,
                self.srm,
                metric_push_interval=self.config.metric_push_interval,
                heartbeat_interval=self.config.heartbeat_interval,
            )
            self.hcs[host.name] = hc
        self.checkpoint_store = CheckpointStore(
            retention=self.config.checkpoint_retention
        )
        self.sam = SAM(
            kernel=self.kernel,
            srm=self.srm,
            hcs=self.hcs,
            transport=self.transport,
            import_export=self.import_export,
            ids=self.ids,
            pe_spawn_delay=self.config.pe_spawn_delay,
            pe_restart_delay=self.config.pe_restart_delay,
            failure_notification_delay=self.config.failure_notification_delay,
            auto_restart_pes=self.config.auto_restart_pes,
            checkpoint_store=self.checkpoint_store,
        )
        self.failures = FailureInjector(self.kernel, self.sam)
        from repro.elastic.controller import ElasticController  # late: layer cycle

        self.elastic: "ElasticController" = ElasticController(
            sam=self.sam,
            transport=self.transport,
            kernel=self.kernel,
            drain_poll_interval=self.config.elastic_drain_poll,
            drain_timeout=self.config.elastic_drain_timeout,
            # one transactional state-epoch clock for reconfiguration AND
            # fault tolerance (Fries-style): rescale epochs, checkpoint
            # epochs, and reclaim epochs are totally ordered
            epochs=self.checkpoint_store.epochs,
            checkpoint_store=self.checkpoint_store,
        )
        self.checkpoints = CheckpointService(
            kernel=self.kernel,
            sam=self.sam,
            store=self.checkpoint_store,
            interval=self.config.checkpoint_interval,
        )
        self.sam.checkpoint_service = self.checkpoints
        self.checkpoints.start()
        # Crashed parallel-region channels are routed around automatically:
        # SAM tells the elastic controller about PE crashes / completed
        # restarts; the controller masks / unmasks the affected channels on
        # the region's splitter.
        self.sam.pe_failure_observers.append(self.elastic.handle_pe_failure)
        self.sam.pe_restart_observers.append(self.elastic.handle_pe_restarted)
        from repro.chaos.engine import ChaosEngine  # late: layer cycle

        # The chaos-campaign engine: schedules scenario steps on the
        # kernel, journals injections, and feeds chaos_injected events to
        # every orchestrator (see repro.chaos).
        self.chaos: "ChaosEngine" = ChaosEngine(self)
        from repro.obs.hub import ObsHub  # late: obs observes every layer

        # The observability hub: always constructed (control-plane spans,
        # metrics registry, flight recorder); data-plane tuple tracing is
        # wired only when config.trace_enabled (see repro.obs).
        self.obs = ObsHub(
            self.kernel,
            trace_enabled=self.config.trace_enabled,
            trace_sample_every=self.config.trace_sample_every,
            flight_capacity=self.config.flight_capacity,
            health_interval=self.config.health_interval,
            health_short_window=self.config.health_short_window,
            health_long_window=self.config.health_long_window,
        )
        self.obs.attach(self)
        self.orcas: Dict[str, "OrcaService"] = {}
        self.srm.start()
        for hc in self.hcs.values():
            hc.start()

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.kernel.now

    def run_for(self, duration: float) -> None:
        self.kernel.run_for(duration)

    def run_until(self, time: float) -> None:
        self.kernel.run_until(time)

    # -- job convenience -------------------------------------------------------

    def compile(
        self,
        application: Application,
        strategy: str = "manual",
        target_pe_count: int = 0,
    ) -> CompiledApplication:
        return SPLCompiler(strategy, target_pe_count).compile(application)

    def submit_job(
        self,
        app: Union[Application, CompiledApplication],
        params: Optional[Dict[str, str]] = None,
    ) -> Job:
        """Submit a plain (non-orchestrated) job."""
        compiled = app if isinstance(app, CompiledApplication) else self.compile(app)
        return self.sam.submit_job(compiled, params=params)

    def cancel_job(self, job_id: str) -> Job:
        return self.sam.cancel_job(job_id)

    # -- orchestrator submission --------------------------------------------------

    def submit_orchestrator(
        self,
        descriptor: "OrcaDescriptor",
    ) -> "OrcaService":
        """Fig. 4: submit an orchestrator descriptor to SAM.

        SAM 'forks a new process' for the ORCA service, which loads the
        ORCA logic and invokes its start callback.  Returns the running
        service.
        """
        from repro.orca.service import OrcaService  # late import: layer cycle

        orca_id = self.ids.orcas.allocate()
        service = OrcaService(orca_id=orca_id, system=self, descriptor=descriptor)
        self.orcas[orca_id] = service
        self.sam.register_orca(
            orca_id, service._receive_pe_failure, service._receive_host_failure
        )
        service._boot()
        return service

    def cancel_orchestrator(self, orca_id: str) -> None:
        service = self.orcas.pop(orca_id, None)
        if service is not None:
            service.shutdown()
            self.sam.unregister_orca(orca_id)
