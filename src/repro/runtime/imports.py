"""Dynamic import/export stream connections.

Sec. 2.1 of the paper: "SPL allows applications to import and export
streams to/from other applications.  Developers must associate a stream ID
or properties with a stream produced by an application, and then use such
ID or properties to consume this same stream in another application.  When
both applications are executing, the SPL runtime automatically connects the
exporter and importer operators."

The registry tracks every Export/Import operator of every running job and
routes published items to all matching importers with transport latency.
Connections appear and disappear as jobs are submitted and cancelled —
this is the mechanism behind incremental deployment and the C1/C2/C3
composition of Sec. 5.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.sim.kernel import Kernel
from repro.spl.tuples import Punctuation, StreamTuple
from repro.runtime.job import Job

Item = Union[StreamTuple, Punctuation]


@dataclass
class ExportEntry:
    job: Job
    op_name: str
    pe_index: int
    stream_id: Optional[str]
    properties: Dict[str, Any]


@dataclass
class ImportEntry:
    job: Job
    op_name: str
    pe_index: int
    stream_id: Optional[str]
    subscription: Dict[str, Any]


def subscription_matches(export: ExportEntry, import_: ImportEntry) -> bool:
    """Whether an import's criteria select an export."""
    if import_.stream_id is not None:
        return export.stream_id == import_.stream_id
    if import_.subscription:
        return all(
            export.properties.get(key) == value
            for key, value in import_.subscription.items()
        )
    return False


class ImportExportRegistry:
    """System-wide matching of exported and imported streams."""

    def __init__(self, kernel: Kernel, latency: float = 0.001) -> None:
        self.kernel = kernel
        self.latency = latency
        self._exports: Dict[str, List[ExportEntry]] = {}
        self._imports: Dict[str, List[ImportEntry]] = {}
        #: quick lookup: (job_id, export op name) -> entry
        self._export_index: Dict[Tuple[str, str], ExportEntry] = {}

    # -- job lifecycle -----------------------------------------------------------

    def connect_job(self, job: Job) -> None:
        """Register the job's Import/Export operators."""
        app = job.compiled.application
        exports = []
        for spec_info in app.export_specs():
            entry = ExportEntry(
                job=job,
                op_name=spec_info["operator"],
                pe_index=job.compiled.pe_of(spec_info["operator"]),
                stream_id=spec_info["stream_id"],
                properties=spec_info["properties"],
            )
            exports.append(entry)
            self._export_index[(job.job_id, entry.op_name)] = entry
        imports = []
        for spec_info in app.import_specs():
            imports.append(
                ImportEntry(
                    job=job,
                    op_name=spec_info["operator"],
                    pe_index=job.compiled.pe_of(spec_info["operator"]),
                    stream_id=spec_info["stream_id"],
                    subscription=spec_info["subscription"],
                )
            )
        if exports:
            self._exports[job.job_id] = exports
        if imports:
            self._imports[job.job_id] = imports

    def disconnect_job(self, job_id: str) -> None:
        self._exports.pop(job_id, None)
        self._imports.pop(job_id, None)
        self._export_index = {
            key: entry for key, entry in self._export_index.items() if key[0] != job_id
        }

    # -- publication ----------------------------------------------------------------

    def publish(self, job_id: str, export_op_name: str, item: Item) -> int:
        """Route an exported item to every matching importer.

        Returns the number of importers the item was sent to.
        """
        export = self._export_index.get((job_id, export_op_name))
        if export is None:
            return 0
        sent = 0
        for entries in self._imports.values():
            for import_ in entries:
                if import_.job.job_id == job_id:
                    continue  # no self-import loops
                if not import_.job.is_running:
                    continue
                if subscription_matches(export, import_):
                    pe = import_.job.pe_by_index(import_.pe_index)
                    self.kernel.schedule(
                        self.latency,
                        pe.deliver_import,
                        import_.op_name,
                        item,
                        label=f"import->{import_.op_name}",
                    )
                    sent += 1
        return sent

    # -- introspection ----------------------------------------------------------------

    def connections(self) -> List[Tuple[ExportEntry, ImportEntry]]:
        """All currently matched (export, import) pairs among running jobs."""
        pairs = []
        for exports in self._exports.values():
            for export in exports:
                if not export.job.is_running:
                    continue
                for entries in self._imports.values():
                    for import_ in entries:
                        if import_.job.job_id == export.job.job_id:
                            continue
                        if import_.job.is_running and subscription_matches(
                            export, import_
                        ):
                            pairs.append((export, import_))
        return pairs
