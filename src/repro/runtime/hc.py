"""Host Controller (HC).

One HC runs on every host (Sec. 2.2): it starts local PE processes on
behalf of SAM, keeps process status, collects metrics from local PEs and
periodically pushes them to SRM (every 3 seconds by default — the paper's
stated rate), and sends liveness heartbeats that SRM uses to detect host
failures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.sim.kernel import Kernel, ScheduledEvent
from repro.spl.metrics import OperatorMetricName, PEMetricName
from repro.runtime.host import Host
from repro.runtime.pe import PERuntime

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.srm import SRM, MetricSample


class HostController:
    """Per-host daemon: local PE supervision and metric collection."""

    def __init__(
        self,
        host: Host,
        kernel: Kernel,
        srm: "SRM",
        metric_push_interval: float = 3.0,
        heartbeat_interval: float = 1.0,
    ) -> None:
        self.host = host
        self.kernel = kernel
        self.srm = srm
        self.metric_push_interval = metric_push_interval
        self.heartbeat_interval = heartbeat_interval
        self.pes: Dict[str, PERuntime] = {}
        #: SAM installs this to learn about local PE crashes.
        self.on_pe_crash: Optional[Callable[[PERuntime, str], None]] = None
        self._loops: list[ScheduledEvent] = []
        self._alive = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._alive = True
        self._loops.append(
            self.kernel.schedule(self.heartbeat_interval, self._heartbeat_loop)
        )
        self._loops.append(
            self.kernel.schedule(self.metric_push_interval, self._metric_loop)
        )
        self.srm.heartbeat(self.host.name, self.kernel.now)

    def kill(self) -> None:
        """Host failure: HC dies with the host, PEs crash silently.

        No crash notifications are sent (the notifying daemon is dead too),
        and the host is *not* marked down here: SRM discovers the failure
        through missed heartbeats and updates its host registry at
        detection time (the gap between death and detection is real).
        """
        self._alive = False
        for loop in self._loops:
            loop.cancel()
        self._loops = []
        for pe in list(self.pes.values()):
            pe.on_crash = None
            pe.crash("host_failure")

    @property
    def alive(self) -> bool:
        return self._alive

    def revive(self) -> None:
        """Bring the host (and its controller) back up, with no PEs."""
        self.host.mark_up()
        self.pes = {}
        self.start()

    # -- PE supervision ----------------------------------------------------------

    def add_pe(self, pe: PERuntime) -> None:
        self.pes[pe.pe_id] = pe
        pe.host_name = self.host.name
        pe.on_crash = self._local_pe_crashed

    def remove_pe(self, pe_id: str) -> None:
        pe = self.pes.pop(pe_id, None)
        if pe is not None:
            pe.on_crash = None

    def _local_pe_crashed(self, pe: PERuntime, reason: str) -> None:
        if self._alive and self.on_pe_crash is not None:
            self.on_pe_crash(pe, reason)

    # -- periodic loops ------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        if not self._alive:
            return
        self.srm.heartbeat(self.host.name, self.kernel.now)
        self._loops.append(
            self.kernel.schedule(self.heartbeat_interval, self._heartbeat_loop)
        )
        self._trim_loops()

    def _metric_loop(self) -> None:
        if not self._alive:
            return
        self.collect_and_push()
        self._loops.append(
            self.kernel.schedule(self.metric_push_interval, self._metric_loop)
        )
        self._trim_loops()

    def _trim_loops(self) -> None:
        if len(self._loops) > 64:
            self._loops = [h for h in self._loops if not h.cancelled]

    def collect_and_push(self) -> int:
        """Snapshot metrics of all local running PEs into SRM.

        Returns the number of samples pushed (handy in tests).
        """
        from repro.runtime.srm import MetricSample  # local import: cycle guard

        now = self.kernel.now
        pushed = 0
        for pe in self.pes.values():
            if not pe.is_running:
                continue
            pe.update_queue_metrics()
            samples = []
            for port, name, metric in pe.metrics:
                samples.append(
                    MetricSample(
                        job_id=pe.job.job_id,
                        app_name=pe.job.app_name,
                        pe_id=pe.pe_id,
                        operator=None,
                        port=port,
                        name=name,
                        value=metric.value,
                        collection_ts=now,
                        is_custom=name not in PEMetricName.ALL,
                    )
                )
            for op_name, operator in pe.operators.items():
                for port, name, metric in operator.metrics:
                    samples.append(
                        MetricSample(
                            job_id=pe.job.job_id,
                            app_name=pe.job.app_name,
                            pe_id=pe.pe_id,
                            operator=op_name,
                            port=port,
                            name=name,
                            value=metric.value,
                            collection_ts=now,
                            is_custom=name not in OperatorMetricName.ALL,
                        )
                    )
            self.srm.store_metrics(samples)
            pushed += len(samples)
        return pushed
