"""Host model.

Hosts are the machines available to the System S runtime for application
deployment (tracked by SRM, Sec. 2.2).  Each host runs a Host Controller;
host failure kills every PE placed on the host and is detected by SRM via
missed heartbeats.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable, Optional


class HostState(enum.Enum):
    UP = "up"
    DOWN = "down"


class Host:
    """A machine that can run PEs."""

    def __init__(
        self,
        name: str,
        tags: Iterable[str] = (),
        capacity: Optional[int] = None,
    ) -> None:
        self.name = name
        self.tags: FrozenSet[str] = frozenset(tags)
        #: Maximum number of PEs the host may run (None = unbounded).
        self.capacity = capacity
        self.state = HostState.UP

    @property
    def is_up(self) -> bool:
        return self.state is HostState.UP

    def mark_down(self) -> None:
        self.state = HostState.DOWN

    def mark_up(self) -> None:
        self.state = HostState.UP

    def __repr__(self) -> str:
        return f"Host({self.name}, {self.state.value}, tags={sorted(self.tags)})"
