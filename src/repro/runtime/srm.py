"""SRM — Streams Resource Manager.

Sec. 2.2 of the paper: SRM maintains which hosts are available, tracks the
liveness of system components and PEs, detects and notifies process/host
failures, and "serves as a collector for all metrics maintained by the
system" — built-in and custom metrics of all SPL applications.

The ORCA service periodically *pulls* metric snapshots from SRM (default
every 15 seconds, Sec. 4.2); that pull "does not generate further remote
calls to operators" because host controllers push updated values on their
own fixed 3-second cadence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import UnknownHostError
from repro.obs.naming import legacy_metric_name
from repro.sim.kernel import Kernel
from repro.runtime.host import Host


@dataclass(frozen=True)
class MetricSample:
    """One metric value as stored by SRM.

    ``operator`` is None for PE-level metrics; ``port`` is None for
    operator/PE scope (non-port) metrics.
    """

    job_id: str
    app_name: str
    pe_id: str
    operator: Optional[str]
    port: Optional[int]
    name: str
    value: float
    collection_ts: float
    is_custom: bool


#: Storage key: (job, pe, operator-or-None, port-or-None, metric name).
_Key = Tuple[str, str, Optional[str], Optional[int], str]


@dataclass
class MetricAggregate:
    """Aggregation of one metric over a set of operators (Sec. 4.2 extended).

    Used for parallel regions: the per-channel backlog of a region is the
    aggregate of the channel's operators' values.  Operators with no stored
    sample contribute 0.0 (a channel whose PE has not pushed yet is empty).
    """

    per_operator: Dict[str, float]
    total: float
    mean: float
    maximum: float
    minimum: float


class SRM:
    """Host registry, liveness tracking, and the system-wide metric store."""

    def __init__(
        self,
        kernel: Kernel,
        heartbeat_timeout: float = 3.0,
        sweep_interval: float = 1.0,
    ) -> None:
        self.kernel = kernel
        self.heartbeat_timeout = heartbeat_timeout
        self.sweep_interval = sweep_interval
        self.hosts: Dict[str, Host] = {}
        self._heartbeats: Dict[str, float] = {}
        self._metrics: Dict[_Key, MetricSample] = {}
        #: SAM installs this to learn about host failures.
        self.on_host_failure: Optional[Callable[[str, float], None]] = None
        self._sweeping = False

    # -- host registry ----------------------------------------------------------

    def register_host(self, host: Host) -> None:
        self.hosts[host.name] = host

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise UnknownHostError(f"unknown host {name!r}") from None

    def up_hosts(self) -> List[Host]:
        return [h for h in self.hosts.values() if h.is_up]

    # -- liveness -----------------------------------------------------------------

    def start(self) -> None:
        """Begin the heartbeat sweep loop."""
        if not self._sweeping:
            self._sweeping = True
            self.kernel.schedule(self.sweep_interval, self._sweep)

    def heartbeat(self, host_name: str, ts: float) -> None:
        self._heartbeats[host_name] = ts

    def _sweep(self) -> None:
        now = self.kernel.now
        for name, host in self.hosts.items():
            if not host.is_up:
                continue
            last = self._heartbeats.get(name)
            if last is None:
                continue
            if now - last > self.heartbeat_timeout:
                host.mark_down()
                if self.on_host_failure is not None:
                    self.on_host_failure(name, now)
        self.kernel.schedule(self.sweep_interval, self._sweep)

    # -- metrics --------------------------------------------------------------------

    def store_metrics(self, samples: Iterable[MetricSample]) -> None:
        """Upsert the latest value of each metric (host controllers push here)."""
        for sample in samples:
            key = (
                sample.job_id,
                sample.pe_id,
                sample.operator,
                sample.port,
                sample.name,
            )
            self._metrics[key] = sample

    def get_metrics(self, job_ids: Optional[Iterable[str]] = None) -> List[MetricSample]:
        """Snapshot of all stored metrics, optionally restricted to some jobs.

        This is the call the ORCA service makes on every poll; the response
        "contains all metrics associated with a set of jobs" (Sec. 4.2).
        """
        if job_ids is None:
            return list(self._metrics.values())
        wanted = set(job_ids)
        return [s for s in self._metrics.values() if s.job_id in wanted]

    def drop_job_metrics(self, job_id: str) -> None:
        """Forget all metrics of a cancelled job."""
        self._metrics = {
            key: sample
            for key, sample in self._metrics.items()
            if sample.job_id != job_id
        }

    def drop_pe_metrics(self, job_id: str, pe_id: str) -> None:
        """Forget the metrics of one PE (removed from a running job).

        Without this, a parallel-region scale-in would leave ghost samples
        of the removed channels behind, and the ORCA metric poll would keep
        emitting events for operators that no longer exist.
        """
        self._metrics = {
            key: sample
            for key, sample in self._metrics.items()
            if not (sample.job_id == job_id and sample.pe_id == pe_id)
        }

    def aggregate_operator_metric(
        self,
        job_id: str,
        operator_names: Iterable[str],
        name: str,
        port: Optional[int] = None,
    ) -> MetricAggregate:
        """Aggregate one metric's latest values over a set of operators.

        This is the per-channel metrics query of the elastic subsystem: the
        ORCA service and scaling policies call it with the operator names of
        one channel (or of a whole region) to judge backlog/throughput.

        ``name`` may be either the stored legacy spelling
        (``queueSize``) or its canonical ``repro_*`` form — canonical
        names resolve through the :mod:`repro.obs.naming` shim.
        """
        name = legacy_metric_name(name)
        per: Dict[str, float] = {op: 0.0 for op in operator_names}
        if per:
            for sample in self._metrics.values():
                if (
                    sample.job_id == job_id
                    and sample.operator in per
                    and sample.name == name
                    and sample.port == port
                ):
                    per[sample.operator] = sample.value
        values = list(per.values()) or [0.0]
        return MetricAggregate(
            per_operator=per,
            total=sum(values),
            mean=sum(values) / len(values),
            maximum=max(values),
            minimum=min(values),
        )

    def sum_operator_metric_by_group(
        self,
        job_id: str,
        groups: Dict[int, Iterable[str]],
        name: str,
        port: Optional[int] = None,
    ) -> Dict[int, float]:
        """Per-group totals of one metric, in a single pass over the store.

        The ORCA congestion check aggregates a region's metric per channel
        on every poll; doing that channel-by-channel would rescan the whole
        system-wide metric store once per channel.  This walks it once.
        Accepts legacy or canonical metric names (see
        :meth:`aggregate_operator_metric`).
        """
        name = legacy_metric_name(name)
        group_of: Dict[str, int] = {
            op: key for key, ops in groups.items() for op in ops
        }
        totals: Dict[int, float] = {key: 0.0 for key in groups}
        for sample in self._metrics.values():
            if (
                sample.job_id == job_id
                and sample.name == name
                and sample.port == port
            ):
                key = group_of.get(sample.operator)
                if key is not None:
                    totals[key] += sample.value
        return totals

    def metric_value(
        self,
        job_id: str,
        pe_id: str,
        operator: Optional[str],
        name: str,
        port: Optional[int] = None,
    ) -> Optional[float]:
        """Point query (tests and tools).

        Accepts legacy or canonical metric names (see
        :meth:`aggregate_operator_metric`).
        """
        name = legacy_metric_name(name)
        sample = self._metrics.get((job_id, pe_id, operator, port, name))
        return sample.value if sample else None
