"""Job: a running instance of a submitted application.

Each application submitted to SAM is "considered a new job in the system"
(Sec. 2.2).  A job owns PE runtimes created from the compiled application's
PE specs; several jobs may instantiate the same application (replicas).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import UnknownPEError
from repro.spl.compiler import CompiledApplication

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.pe import PERuntime


class JobState(enum.Enum):
    SUBMITTED = "submitted"
    RUNNING = "running"
    CANCELLING = "cancelling"
    CANCELLED = "cancelled"


class Job:
    """A submitted application instance."""

    def __init__(
        self,
        job_id: str,
        compiled: CompiledApplication,
        params: Dict[str, str],
        submit_time: float,
        owner_orca: Optional[str] = None,
    ) -> None:
        self.job_id = job_id
        self.compiled = compiled
        self.params = params
        self.submit_time = submit_time
        #: id of the ORCA service that submitted the job (None: plain job).
        self.owner_orca = owner_orca
        self.state = JobState.SUBMITTED
        self.pes: List["PERuntime"] = []
        self.cancel_time: Optional[float] = None
        #: hosts reserved for this job via exclusive pools
        self.reserved_hosts: List[str] = []

    @property
    def app_name(self) -> str:
        return self.compiled.name

    @property
    def is_running(self) -> bool:
        return self.state is JobState.RUNNING

    def pe_by_index(self, index: int) -> "PERuntime":
        for pe in self.pes:
            if pe.index == index:
                return pe
        raise UnknownPEError(f"job {self.job_id}: no PE with index {index}")

    def pe_by_id(self, pe_id: str) -> "PERuntime":
        for pe in self.pes:
            if pe.pe_id == pe_id:
                return pe
        raise UnknownPEError(f"job {self.job_id}: no PE with id {pe_id!r}")

    def pe_of_operator(self, op_full_name: str) -> "PERuntime":
        index = self.compiled.pe_of(op_full_name)
        return self.pe_by_index(index)

    def operator_instance(self, op_full_name: str):
        """The live operator instance (or None if its PE is down)."""
        pe = self.pe_of_operator(op_full_name)
        return pe.operators.get(op_full_name)

    def all_operator_names(self) -> List[str]:
        return list(self.compiled.application.graph.operators)

    def __repr__(self) -> str:
        return f"Job({self.job_id}, app={self.app_name}, {self.state.value})"
