"""Inter-PE stream transport.

Tuples crossing a PE boundary travel through the transport with a small
configurable latency, modelling the TCP hop between operating system
processes.  The number of items in flight toward each destination input
port backs the ``queueSize`` built-in metric (the metric Fig. 5 of the
paper subscribes to for Split/Merge operators).

Intra-PE connections do not use the transport at all: fused operators call
each other synchronously, which is exactly why fusion removes queueing —
and why the orchestrator may care about partitioning (Sec. 4.3).

Two fault surfaces extend the plain hop model for chaos experiments
(:mod:`repro.chaos`):

* **Link faults** — :class:`LinkFault` modifiers installed per link
  (selected by source/destination PE or host) add latency, drop a seeded
  fraction of items, or *partition* the link: partitioned items are held
  and flushed when the fault heals, modelling TCP retransmission rather
  than silent loss.  Delivery stays FIFO per (source PE, destination PE)
  pair even when a fault expires mid-stream, exactly like a TCP
  connection.
* **Crash accounting** — when a PE crashes, everything in flight toward
  it is condemned: each such item is counted in ``dropped_in_flight``
  instead of being silently delivered to the next incarnation of the
  process (a crash-restart within one transport latency must not leak
  pre-crash items into the restarted PE).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

from repro.sim.kernel import Kernel
from repro.spl.tuples import Punctuation, StreamTuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import ObsHub
    from repro.runtime.pe import PERuntime

Item = Union[StreamTuple, Punctuation]


@dataclass(frozen=True)
class DeliveryRecord:
    """One successful transport delivery, as seen by delivery taps.

    ``link_seq`` is the item's per-link send index (links key on
    ``(source PE id or "", destination PE id)``): the transport assigns
    it at *original send time* — before any partition holds or flush
    re-scheduling — so a tap observing deliveries whose ``link_seq``
    ever decreases on one link has caught a genuine per-connection FIFO
    violation, exactly what the chaos fuzzer's
    :class:`~repro.chaos.fuzz.oracles.FifoProbe` checks.

    Attributes:
        src_key: Sending PE id ("" for registry-less senders).
        dst_pe_id: Receiving PE id.
        op_full_name: Destination operator full name.
        port: Destination input port.
        link_seq: Per-link send index (1-based, monotone per link).
        time: Sim time of the delivery.
    """

    src_key: str
    dst_pe_id: str
    op_full_name: str
    port: int
    link_seq: int
    time: float


@dataclass
class LinkFault:
    """One installed per-link perturbation.

    A fault applies to a send when every selector that is set matches
    (selectors left as None match anything): ``src_pe``/``dst_pe`` match
    PE ids, ``src_host``/``dst_host`` match host names.  Effects compose
    across matching faults (latencies add; any matching partition holds;
    drop probabilities apply independently).

    Attributes:
        fault_id: Registry key, allocated by :meth:`Transport.install_link_fault`.
        extra_latency: Seconds added to the base transport latency.
        drop_probability: Chance (seeded, deterministic) the item is lost.
        partition: When True, items are held until the fault heals and
            then delivered in order (TCP-retransmit semantics, no loss).
        until: Absolute sim time the fault expires on its own; None means
            it lasts until :meth:`Transport.clear_link_fault`.
    """

    fault_id: int
    extra_latency: float = 0.0
    drop_probability: float = 0.0
    partition: bool = False
    src_pe: Optional[str] = None
    dst_pe: Optional[str] = None
    src_host: Optional[str] = None
    dst_host: Optional[str] = None
    until: Optional[float] = None

    def matches(
        self,
        src_pe_id: Optional[str],
        src_host: Optional[str],
        dst_pe_id: str,
        dst_host: Optional[str],
    ) -> bool:
        """Whether this fault applies to one (source, destination) link."""
        if self.src_pe is not None and self.src_pe != src_pe_id:
            return False
        if self.dst_pe is not None and self.dst_pe != dst_pe_id:
            return False
        if self.src_host is not None and self.src_host != src_host:
            return False
        if self.dst_host is not None and self.dst_host != dst_host:
            return False
        return True


class Transport:
    """Delivers items between PEs with latency and in-flight accounting."""

    def __init__(
        self,
        kernel: Kernel,
        latency: float = 0.001,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.kernel = kernel
        self.latency = latency
        #: seeded stream for probabilistic link-fault drops (deterministic)
        self.rng = rng if rng is not None else random.Random(0)
        #: (pe_id, operator full name, port) -> items scheduled but not delivered
        self._in_flight: Dict[Tuple[str, str, int], int] = {}
        self.total_sent = 0
        self.total_delivered = 0
        #: items that arrived at a non-running PE and were discarded
        self.total_dropped = 0
        #: items condemned because their destination PE crashed while they
        #: were in flight (they never reach the restarted incarnation)
        self.dropped_in_flight = 0
        #: items lost to a lossy link fault (drop_probability)
        self.dropped_by_fault = 0
        #: destination PE id -> incarnation number; bumped on every crash
        #: so in-flight items addressed to the dead incarnation are dropped
        self._incarnations: Dict[str, int] = {}
        #: installed link faults by id
        self._link_faults: Dict[int, LinkFault] = {}
        #: fault id -> items held by an *untimed* partition, flushed in
        #: order when the fault is cleared
        self._held: Dict[int, List[tuple]] = {}
        self._next_fault_id = 1
        #: (src pe id or "", dst pe id) -> latest scheduled arrival, so a
        #: fault expiring mid-stream cannot reorder a connection's items
        self._fifo_horizon: Dict[Tuple[str, str], float] = {}
        #: (src pe id or "", dst pe id) -> send index of the last item
        #: *sent* on that link — assigned before any hold/flush, stamped
        #: onto deliveries for FIFO taps and used to keep flushed
        #: partition queues merged in send order
        self._link_send_seq: Dict[Tuple[str, str], int] = {}
        #: callbacks invoked with a :class:`DeliveryRecord` after every
        #: successful delivery — the chaos fuzzer's FIFO oracle registers
        #: here; the hot path skips record construction while empty
        self.delivery_taps: List[Callable[[DeliveryRecord], None]] = []
        #: the observability hub, set by ObsHub.attach() only when span
        #: tracing is enabled — None keeps the send path at one check
        self.obs: Optional["ObsHub"] = None

    # -- link faults --------------------------------------------------------

    def install_link_fault(
        self,
        extra_latency: float = 0.0,
        drop_probability: float = 0.0,
        partition: bool = False,
        src_pe: Optional[str] = None,
        dst_pe: Optional[str] = None,
        src_host: Optional[str] = None,
        dst_host: Optional[str] = None,
        duration: Optional[float] = None,
    ) -> LinkFault:
        """Install a per-link perturbation and return its handle.

        Args:
            extra_latency: Seconds added to every matching delivery.
            drop_probability: Seeded drop chance in [0, 1] per item.
            partition: Hold matching items until the fault heals.
            src_pe: Only sends from this PE id (None: any).
            dst_pe: Only sends toward this PE id (None: any).
            src_host: Only sends from PEs on this host (None: any).
            dst_host: Only sends toward PEs on this host (None: any).
            duration: Seconds until self-expiry (None: until cleared).

        Returns:
            The installed :class:`LinkFault` (pass to
            :meth:`clear_link_fault` to heal it early).
        """
        fault = LinkFault(
            fault_id=self._next_fault_id,
            extra_latency=extra_latency,
            drop_probability=drop_probability,
            partition=partition,
            src_pe=src_pe,
            dst_pe=dst_pe,
            src_host=src_host,
            dst_host=dst_host,
            until=None if duration is None else self.kernel.now + duration,
        )
        self._next_fault_id += 1
        self._link_faults[fault.fault_id] = fault
        return fault

    def clear_link_fault(self, fault: Union[LinkFault, int]) -> None:
        """Heal one link fault now (idempotent).

        Timed partitions' items were scheduled against the fault's
        ``until`` and keep those delivery times; an *untimed* partition's
        held items are flushed now, in order, with the base latency.

        Args:
            fault: The handle (or id) returned by :meth:`install_link_fault`.
        """
        fault_id = fault.fault_id if isinstance(fault, LinkFault) else fault
        installed = self._link_faults.pop(fault_id, None)
        held = self._held.pop(fault_id, [])
        if installed is None and not held:
            return
        # Items re-held by a *still-open* untimed partition are collected
        # per target fault and merged into its queue by original per-link
        # send sequence: with overlapping partitions either fault may be
        # cleared first, so neither plain append nor plain prepend keeps
        # a link's items in send order — the send-time stamp does.
        reheld: Dict[int, List[tuple]] = {}
        for entry in held:
            self._resend_held(*entry, reheld=reheld)
        for target_id, group in reheld.items():
            merged = group + self._held.get(target_id, [])
            merged.sort(key=lambda entry: entry[6])
            self._held[target_id] = merged
        self._prune_faults()

    def _resend_held(
        self,
        src_pe: Optional["PERuntime"],
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        item: Item,
        incarnation: int,
        link_seq: int,
        reheld: Optional[Dict[int, List[tuple]]] = None,
    ) -> None:
        """Re-route one flushed item through the faults active *now*.

        Fault composition survives the flush: a still-open partition on
        the same link re-holds the item (collected into ``reheld`` so the
        caller can merge the flushed group into that fault's queue by
        original send sequence), a timed partition or latency spike still
        in force delays it, and an unimpeded link delivers it with the
        base latency.  Drop faults are not re-applied — the item already
        survived its send.  ``link_seq`` is the item's original send-time
        stamp and rides along unchanged.
        """
        faults = self._matching_faults(src_pe, dst_pe)
        latency = self.latency
        hold_until: Optional[float] = None
        for fault in faults:
            latency += fault.extra_latency
            if fault.partition:
                if fault.until is None:
                    entry = (
                        src_pe, dst_pe, op_full_name, port, item,
                        incarnation, link_seq,
                    )
                    if reheld is not None:
                        reheld.setdefault(fault.fault_id, []).append(entry)
                    else:
                        self._held.setdefault(fault.fault_id, []).append(entry)
                    return
                hold_until = max(hold_until or 0.0, fault.until)
        deliver_at = self.kernel.now + latency
        if hold_until is not None:
            deliver_at = max(deliver_at, hold_until + self.latency)
        self._schedule_delivery(
            deliver_at,
            src_pe.pe_id if src_pe is not None else "",
            dst_pe,
            op_full_name,
            port,
            item,
            incarnation=incarnation,
            link_seq=link_seq,
        )

    def active_link_faults(self) -> List[LinkFault]:
        """Snapshot of the faults currently in force (expired ones pruned)."""
        self._prune_faults()
        return list(self._link_faults.values())

    def _prune_faults(self) -> None:
        now = self.kernel.now
        expired = [
            fault_id
            for fault_id, fault in self._link_faults.items()
            if fault.until is not None and fault.until <= now
        ]
        for fault_id in expired:
            del self._link_faults[fault_id]

    def _matching_faults(
        self, src_pe: Optional["PERuntime"], dst_pe: "PERuntime"
    ) -> List[LinkFault]:
        if not self._link_faults:
            return []
        self._prune_faults()
        src_pe_id = src_pe.pe_id if src_pe is not None else None
        src_host = src_pe.host_name if src_pe is not None else None
        return [
            fault
            for fault in self._link_faults.values()
            if fault.matches(src_pe_id, src_host, dst_pe.pe_id, dst_pe.host_name)
        ]

    # -- crash accounting ----------------------------------------------------

    def drop_in_flight(self, pe_id: str) -> None:
        """Condemn everything currently in flight toward a crashed PE.

        Called by :meth:`PERuntime.crash`: the items stay scheduled (their
        kernel events cannot be retracted cheaply) but are recognized at
        delivery time by incarnation mismatch, counted in
        ``dropped_in_flight``, and never handed to the restarted process.

        Args:
            pe_id: The crashed PE.
        """
        self._incarnations[pe_id] = self._incarnations.get(pe_id, 0) + 1

    # -- send / deliver ------------------------------------------------------

    def send(
        self,
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        item: Item,
        src_pe: Optional["PERuntime"] = None,
    ) -> None:
        """Schedule delivery of ``item`` to an input port of a remote PE.

        Args:
            dst_pe: Destination PE runtime.
            op_full_name: Destination operator full name.
            port: Destination input port.
            item: Tuple or punctuation to deliver.
            src_pe: Sending PE, when known — enables per-link fault
                matching and per-connection FIFO (None for registry-less
                senders such as tests).
        """
        self.total_sent += 1
        faults = self._matching_faults(src_pe, dst_pe)
        latency = self.latency
        hold_until: Optional[float] = None
        untimed_partition: Optional[LinkFault] = None
        for fault in faults:
            if fault.drop_probability > 0.0 and (
                self.rng.random() < fault.drop_probability
            ):
                self.dropped_by_fault += 1
                return
            latency += fault.extra_latency
            if fault.partition:
                if fault.until is None:
                    # untimed partition: hold the item until the fault is
                    # cleared (clear_link_fault flushes the queue)
                    untimed_partition = fault
                else:
                    hold_until = max(hold_until or 0.0, fault.until)
        src_key = src_pe.pe_id if src_pe is not None else ""
        key = (dst_pe.pe_id, op_full_name, port)
        self._in_flight[key] = self._in_flight.get(key, 0) + 1
        link_seq = self._next_link_seq(src_key, dst_pe.pe_id)
        if untimed_partition is not None:
            # the destination incarnation and link send-sequence are
            # captured at *send* time (a crash during the partition must
            # still condemn held items; the seq keeps flushed queues in
            # send order) and the source PE rides along so the flush can
            # re-match faults like ordinary sends
            self._held.setdefault(untimed_partition.fault_id, []).append(
                (
                    src_pe,
                    dst_pe,
                    op_full_name,
                    port,
                    item,
                    self._incarnations.get(dst_pe.pe_id, 0),
                    link_seq,
                )
            )
            return
        deliver_at = self.kernel.now + latency
        if hold_until is not None:
            deliver_at = max(deliver_at, hold_until + self.latency)
        self._schedule_delivery(
            deliver_at, src_key, dst_pe, op_full_name, port, item,
            link_seq=link_seq,
        )

    def _next_link_seq(self, src_key: str, dst_pe_id: str) -> int:
        """Allocate the next send-time sequence number of one link."""
        link = (src_key, dst_pe_id)
        seq = self._link_send_seq.get(link, 0) + 1
        self._link_send_seq[link] = seq
        return seq

    def _schedule_delivery(
        self,
        deliver_at: float,
        src_key: Optional[str],
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        item: Item,
        incarnation: Optional[int] = None,
        link_seq: Optional[int] = None,
    ) -> None:
        """Schedule one (already in-flight-counted) delivery, FIFO per link."""
        link = (src_key or "", dst_pe.pe_id)
        deliver_at = max(deliver_at, self._fifo_horizon.get(link, 0.0))
        self._fifo_horizon[link] = deliver_at
        if link_seq is None:
            link_seq = self._next_link_seq(link[0], link[1])
        if incarnation is None:
            incarnation = self._incarnations.get(dst_pe.pe_id, 0)
        if (
            self.obs is not None
            and isinstance(item, StreamTuple)
            and item.traced
        ):
            # one span per scheduled hop: covers fresh sends and
            # partition flushes alike; deliver_at is post-FIFO-clamp,
            # so the span end is the true arrival time
            self.obs.record_transport(
                op_full_name,
                link[0],
                dst_pe.pe_id,
                dst_pe.job.job_id,
                self.kernel.now,
                deliver_at,
            )
        self.kernel.schedule_at(
            deliver_at,
            self._deliver,
            dst_pe,
            op_full_name,
            port,
            item,
            incarnation,
            link[0],
            link_seq,
            label=f"transport->{op_full_name}[{port}]",
        )

    def _deliver(
        self,
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        item: Item,
        incarnation: int = 0,
        src_key: str = "",
        link_seq: int = 0,
    ) -> None:
        key = (dst_pe.pe_id, op_full_name, port)
        count = self._in_flight.get(key, 0)
        if count <= 1:
            self._in_flight.pop(key, None)
        else:
            self._in_flight[key] = count - 1
        if incarnation != self._incarnations.get(dst_pe.pe_id, 0):
            # The destination crashed after this item was sent: the item
            # died with the process and must not leak into its restarted
            # incarnation.
            self.dropped_in_flight += 1
            return
        if not dst_pe.is_running:
            # Receiving process is down: the tuple is lost (the paper's
            # Sec. 5.2: crashes of stateless PEs "may lead to tuple loss").
            self.total_dropped += 1
            return
        self.total_delivered += 1
        if self.delivery_taps:
            record = DeliveryRecord(
                src_key=src_key,
                dst_pe_id=dst_pe.pe_id,
                op_full_name=op_full_name,
                port=port,
                link_seq=link_seq,
                time=self.kernel.now,
            )
            for tap in list(self.delivery_taps):
                tap(record)
        dst_pe.receive(op_full_name, port, item)

    def queue_size(self, pe_id: str, op_full_name: str, port: int) -> int:
        """Items currently in flight toward one input port."""
        return self._in_flight.get((pe_id, op_full_name, port), 0)
