"""Inter-PE stream transport.

Tuples crossing a PE boundary travel through the transport with a small
configurable latency, modelling the TCP hop between operating system
processes.  The number of items in flight toward each destination input
port backs the ``queueSize`` built-in metric (the metric Fig. 5 of the
paper subscribes to for Split/Merge operators).

Intra-PE connections do not use the transport at all: fused operators call
each other synchronously, which is exactly why fusion removes queueing —
and why the orchestrator may care about partitioning (Sec. 4.3).

Two fault surfaces extend the plain hop model for chaos experiments
(:mod:`repro.chaos`):

* **Link faults** — :class:`LinkFault` modifiers installed per link
  (selected by source/destination PE or host) add latency, drop a seeded
  fraction of items, or *partition* the link: partitioned items are held
  and flushed when the fault heals, modelling TCP retransmission rather
  than silent loss.  Delivery stays FIFO per (source PE, destination PE)
  pair even when a fault expires mid-stream, exactly like a TCP
  connection.
* **Crash accounting** — when a PE crashes, everything in flight toward
  it is condemned: each such item is counted in ``dropped_in_flight``
  instead of being silently delivered to the next incarnation of the
  process (a crash-restart within one transport latency must not leak
  pre-crash items into the restarted PE).

Both behaviours describe the default ``delivery="best_effort"`` mode.
The ``at_least_once`` and ``exactly_once`` modes route sends through a
:class:`~repro.runtime.delivery.DeliveryPlane` that layers per-link acks,
sim-time retry/backoff timers, duplicate-suppression watermarks, and
epoch-aligned crash replay on top of the same link-fault pipeline — see
:mod:`repro.runtime.delivery` for the full contract per mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

from repro.sim.kernel import Kernel, ScheduledEvent
from repro.spl.tuples import Punctuation, StreamTuple, TupleBatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import ObsHub
    from repro.runtime.pe import PERuntime

Item = Union[StreamTuple, Punctuation]
#: what actually travels on the wire: a single item, or a coalesced batch
Payload = Union[StreamTuple, Punctuation, TupleBatch]


@dataclass(frozen=True)
class DeliveryRecord:
    """One successful transport delivery, as seen by delivery taps.

    ``link_seq`` is the item's per-link send index (links key on
    ``(source PE id or "", destination PE id)``): the transport assigns
    it when the item is committed to the wire — at send time for single
    items, at flush time for batch members (one contiguous range per
    batch) — and always before any partition holds or flush
    re-scheduling, so a tap observing deliveries whose ``link_seq``
    ever decreases on one link has caught a genuine per-connection FIFO
    violation, exactly what the chaos fuzzer's
    :class:`~repro.chaos.fuzz.oracles.FifoProbe` checks.

    Attributes:
        src_key: Sending PE id ("" for registry-less senders).
        dst_pe_id: Receiving PE id.
        op_full_name: Destination operator full name.
        port: Destination input port.
        link_seq: Per-link send index (1-based, monotone per link).
        time: Sim time of the delivery.
        redelivery: True for a post-restart replay of a unit the dead
            incarnation had already processed (exactly-once mode): its
            ``link_seq`` legitimately rewinds below the link's high-water
            mark, and FIFO taps must treat that as a fresh baseline
            rather than a per-connection ordering violation.
    """

    src_key: str
    dst_pe_id: str
    op_full_name: str
    port: int
    link_seq: int
    time: float
    redelivery: bool = False


@dataclass
class LinkFault:
    """One installed per-link perturbation.

    A fault applies to a send when every selector that is set matches
    (selectors left as None match anything): ``src_pe``/``dst_pe`` match
    PE ids, ``src_host``/``dst_host`` match host names.  Effects compose
    across matching faults (latencies add; any matching partition holds;
    drop probabilities apply independently).

    Attributes:
        fault_id: Registry key, allocated by :meth:`Transport.install_link_fault`.
        extra_latency: Seconds added to the base transport latency.
        drop_probability: Chance (seeded, deterministic) the item is lost.
        partition: When True, items are held until the fault heals and
            then delivered in order (TCP-retransmit semantics, no loss).
        until: Absolute sim time the fault expires on its own; None means
            it lasts until :meth:`Transport.clear_link_fault`.
    """

    fault_id: int
    extra_latency: float = 0.0
    drop_probability: float = 0.0
    partition: bool = False
    src_pe: Optional[str] = None
    dst_pe: Optional[str] = None
    src_host: Optional[str] = None
    dst_host: Optional[str] = None
    until: Optional[float] = None

    def matches(
        self,
        src_pe_id: Optional[str],
        src_host: Optional[str],
        dst_pe_id: str,
        dst_host: Optional[str],
    ) -> bool:
        """Whether this fault applies to one (source, destination) link."""
        if self.src_pe is not None and self.src_pe != src_pe_id:
            return False
        if self.dst_pe is not None and self.dst_pe != dst_pe_id:
            return False
        if self.src_host is not None and self.src_host != src_host:
            return False
        if self.dst_host is not None and self.dst_host != dst_host:
            return False
        return True


class _OpenBatch:
    """One flow's not-yet-flushed tuple run (batching enabled only).

    A *flow* is ``(src_key, dst_pe_id, op_full_name, port)`` — the finest
    unit on which ordering matters.  The source/destination PE handles
    ride along so the flush can re-match link faults exactly like an
    ordinary send would have.
    """

    __slots__ = ("src_pe", "dst_pe", "tuples", "flush_event", "opened_at")

    def __init__(
        self,
        src_pe: Optional["PERuntime"],
        dst_pe: "PERuntime",
        opened_at: float = 0.0,
    ) -> None:
        self.src_pe = src_pe
        self.dst_pe = dst_pe
        self.tuples: List[StreamTuple] = []
        self.flush_event: Optional[ScheduledEvent] = None
        #: sim-time the first tuple was buffered — the health plane's
        #: open-batch residency signal measures from here
        self.opened_at = opened_at


class Transport:
    """Delivers items between PEs with latency and in-flight accounting.

    With ``batch_max_size > 1`` the transport additionally coalesces
    same-flow tuples into :class:`~repro.spl.tuples.TupleBatch` units:
    tuples append to a per-flow open batch that is committed to the wire
    when it reaches ``batch_max_size``, when the ``batch_linger`` expires
    (linger 0.0 = the end of the current kernel instant), when
    punctuation follows on the same flow, or when
    :meth:`flush_open_batches` forces it (drain barriers, crashes).  A
    flushed batch consumes one contiguous ``link_seq`` range and one
    kernel event, so per-connection FIFO, crash condemnation, and link
    fault accounting operate on whole batches with unchanged observable
    semantics.  ``batch_max_size <= 1`` (the default) never touches the
    batch path at all.
    """

    def __init__(
        self,
        kernel: Kernel,
        latency: float = 0.001,
        rng: Optional[random.Random] = None,
        batch_max_size: int = 1,
        batch_linger: float = 0.0,
        delivery: str = "best_effort",
        ack_timeout: float = 0.25,
        retry_backoff: float = 2.0,
        max_retry_interval: float = 2.0,
        ack_rng: Optional[random.Random] = None,
        replay_buffer_max_bytes: int = 0,
    ) -> None:
        if delivery not in ("best_effort", "at_least_once", "exactly_once"):
            raise ValueError(f"unknown delivery mode {delivery!r}")
        self.kernel = kernel
        self.latency = latency
        #: the delivery-guarantee mode this transport runs under
        self.delivery = delivery
        #: batch size that forces a flush; <= 1 disables batching
        self.batch_max_size = batch_max_size
        #: sim-time linger before a partially filled batch flushes
        self.batch_linger = batch_linger
        #: flow key -> open (unflushed) batch; only populated when
        #: batching is enabled
        self._open_batches: Dict[Tuple[str, str, str, int], _OpenBatch] = {}
        #: observer invoked with the member count of every flushed batch
        #: (the obs hub points this at its batch-size histogram); None
        #: keeps the flush path at one check
        self.batch_observer: Optional[Callable[[int], None]] = None
        #: seeded stream for probabilistic link-fault drops (deterministic)
        self.rng = rng if rng is not None else random.Random(0)
        #: dedicated seeded stream for reverse-link ack drop rolls — a
        #: separate stream so making acks lossy never perturbs the
        #: forward-path roll sequence (committed artifacts without
        #: reverse-link faults stay byte-identical)
        self.ack_rng = ack_rng if ack_rng is not None else random.Random(10007)
        #: (pe_id, operator full name, port) -> items scheduled but not delivered
        self._in_flight: Dict[Tuple[str, str, int], int] = {}
        self.total_sent = 0
        self.total_delivered = 0
        #: items that arrived at a non-running PE and were discarded
        self.total_dropped = 0
        #: items condemned because their destination PE crashed while they
        #: were in flight (they never reach the restarted incarnation);
        #: under a reliable mode only a *removed-for-good* destination
        #: condemns, and only units no drop fault already claimed
        #: (first-cause-wins attribution)
        self.dropped_in_flight = 0
        #: items lost to a lossy link fault (drop_probability); under a
        #: reliable mode: items whose wire copy was lost at least once —
        #: counted on the first casualty only, and recovered by
        #: retransmission unless the destination is removed for good
        self.dropped_by_fault = 0
        #: reliable modes: wire units re-sent after an ack timeout
        self.retransmissions = 0
        #: reliable modes: acknowledgements processed (one per wire unit)
        self.acks = 0
        #: exactly-once: items whose copy arrived at or below the link's
        #: delivered watermark and was suppressed by the in-order receiver
        self.duplicates_suppressed = 0
        #: exactly-once: items re-sent to a restarted PE with emission
        #: suppression because the dead incarnation already processed them
        self.replayed = 0
        #: reliable modes: acknowledgements lost to a reverse-link fault
        #: (the sender retransmits; the receiver re-acks the duplicate)
        self.acks_dropped = 0
        #: exactly-once: items parked by replay-buffer backpressure
        #: (``replay_buffer_max_bytes``) until an epoch commit truncates
        #: the link's buffer
        self.replay_stalls = 0
        #: destination PE id -> incarnation number; bumped on every crash
        #: so in-flight items addressed to the dead incarnation are dropped
        self._incarnations: Dict[str, int] = {}
        #: installed link faults by id
        self._link_faults: Dict[int, LinkFault] = {}
        #: fault id -> items held by an *untimed* partition, flushed in
        #: order when the fault is cleared
        self._held: Dict[int, List[tuple]] = {}
        self._next_fault_id = 1
        #: (src pe id or "", dst pe id) -> latest scheduled arrival, so a
        #: fault expiring mid-stream cannot reorder a connection's items
        self._fifo_horizon: Dict[Tuple[str, str], float] = {}
        #: (src pe id or "", dst pe id) -> send index of the last item
        #: *sent* on that link — assigned before any hold/flush, stamped
        #: onto deliveries for FIFO taps and used to keep flushed
        #: partition queues merged in send order
        self._link_send_seq: Dict[Tuple[str, str], int] = {}
        #: callbacks invoked with a :class:`DeliveryRecord` after every
        #: successful delivery — the chaos fuzzer's FIFO oracle registers
        #: here; the hot path skips record construction while empty
        self.delivery_taps: List[Callable[[DeliveryRecord], None]] = []
        #: the observability hub, set by ObsHub.attach() only when span
        #: tracing is enabled — None keeps the send path at one check
        self.obs: Optional["ObsHub"] = None
        #: reliability event callback ``(kind, count, op, attempt, time)``
        #: with kind in {"retransmit", "ack", "duplicate_suppressed",
        #: "replay", "ack_dropped", "replay_stall"} — the obs hub
        #: registers here (lazily created series keep best-effort
        #: expositions byte-identical)
        self.reliability_observer: Optional[
            Callable[[str, int, str, int, float], None]
        ] = None
        #: health-plane pressure tap ``(kind, value, link_name)`` — the
        #: reliable delivery plane reports each unit's ack round trip
        #: here ("ack_rtt"); None keeps the ack path at one check
        self.pressure_observer: Optional[
            Callable[[str, float, str], None]
        ] = None
        #: the reliable-delivery plane; None in best-effort mode keeps
        #: every hot path at a single check
        self.reliability = None
        if delivery != "best_effort":
            from repro.runtime.delivery import DeliveryPlane

            self.reliability = DeliveryPlane(
                self,
                exactly_once=(delivery == "exactly_once"),
                ack_timeout=ack_timeout,
                retry_backoff=retry_backoff,
                max_retry_interval=max_retry_interval,
                replay_buffer_max_bytes=replay_buffer_max_bytes,
            )

    # -- link faults --------------------------------------------------------

    def install_link_fault(
        self,
        extra_latency: float = 0.0,
        drop_probability: float = 0.0,
        partition: bool = False,
        src_pe: Optional[str] = None,
        dst_pe: Optional[str] = None,
        src_host: Optional[str] = None,
        dst_host: Optional[str] = None,
        duration: Optional[float] = None,
    ) -> LinkFault:
        """Install a per-link perturbation and return its handle.

        Args:
            extra_latency: Seconds added to every matching delivery.
            drop_probability: Seeded drop chance in [0, 1] per item.
            partition: Hold matching items until the fault heals.
            src_pe: Only sends from this PE id (None: any).
            dst_pe: Only sends toward this PE id (None: any).
            src_host: Only sends from PEs on this host (None: any).
            dst_host: Only sends toward PEs on this host (None: any).
            duration: Seconds until self-expiry (None: until cleared).

        Returns:
            The installed :class:`LinkFault` (pass to
            :meth:`clear_link_fault` to heal it early).
        """
        fault = LinkFault(
            fault_id=self._next_fault_id,
            extra_latency=extra_latency,
            drop_probability=drop_probability,
            partition=partition,
            src_pe=src_pe,
            dst_pe=dst_pe,
            src_host=src_host,
            dst_host=dst_host,
            until=None if duration is None else self.kernel.now + duration,
        )
        self._next_fault_id += 1
        self._link_faults[fault.fault_id] = fault
        return fault

    def clear_link_fault(self, fault: Union[LinkFault, int]) -> None:
        """Heal one link fault now (idempotent).

        Timed partitions' items were scheduled against the fault's
        ``until`` and keep those delivery times; an *untimed* partition's
        held items are flushed now, in order, with the base latency.

        Args:
            fault: The handle (or id) returned by :meth:`install_link_fault`.
        """
        fault_id = fault.fault_id if isinstance(fault, LinkFault) else fault
        installed = self._link_faults.pop(fault_id, None)
        held = self._held.pop(fault_id, [])
        if installed is None and not held:
            return
        # Items re-held by a *still-open* untimed partition are collected
        # per target fault and merged into its queue by original per-link
        # send sequence: with overlapping partitions either fault may be
        # cleared first, so neither plain append nor plain prepend keeps
        # a link's items in send order — the send-time stamp does.
        reheld: Dict[int, List[tuple]] = {}
        for entry in held:
            self._resend_held(*entry, reheld=reheld)
        for target_id, group in reheld.items():
            merged = group + self._held.get(target_id, [])
            merged.sort(key=lambda entry: entry[6])
            self._held[target_id] = merged
        self._prune_faults()

    def _resend_held(
        self,
        src_pe: Optional["PERuntime"],
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        item: Payload,
        incarnation: int,
        link_seq: int,
        redelivery: bool = False,
        reheld: Optional[Dict[int, List[tuple]]] = None,
    ) -> None:
        """Re-route one flushed item through the faults active *now*.

        Fault composition survives the flush: a still-open partition on
        the same link re-holds the item (collected into ``reheld`` so the
        caller can merge the flushed group into that fault's queue by
        original send sequence), a timed partition or latency spike still
        in force delays it, and an unimpeded link delivers it with the
        base latency.  Drop faults are not re-applied — the item already
        survived its send.  ``link_seq`` is the item's original send-time
        stamp and rides along unchanged, as does the reliable modes'
        ``redelivery`` marker.
        """
        faults = self._matching_faults(src_pe, dst_pe)
        latency = self.latency
        hold_until: Optional[float] = None
        for fault in faults:
            latency += fault.extra_latency
            if fault.partition:
                if fault.until is None:
                    entry = (
                        src_pe, dst_pe, op_full_name, port, item,
                        incarnation, link_seq, redelivery,
                    )
                    if reheld is not None:
                        reheld.setdefault(fault.fault_id, []).append(entry)
                    else:
                        self._held.setdefault(fault.fault_id, []).append(entry)
                    return
                hold_until = max(hold_until or 0.0, fault.until)
        deliver_at = self.kernel.now + latency
        if hold_until is not None:
            deliver_at = max(deliver_at, hold_until + self.latency)
        self._schedule_delivery(
            deliver_at,
            src_pe.pe_id if src_pe is not None else "",
            dst_pe,
            op_full_name,
            port,
            item,
            incarnation=incarnation,
            link_seq=link_seq,
            redelivery=redelivery,
        )

    def active_link_faults(self) -> List[LinkFault]:
        """Snapshot of the faults currently in force (expired ones pruned)."""
        self._prune_faults()
        return list(self._link_faults.values())

    def _prune_faults(self) -> None:
        now = self.kernel.now
        expired = [
            fault_id
            for fault_id, fault in self._link_faults.items()
            if fault.until is not None and fault.until <= now
        ]
        for fault_id in expired:
            del self._link_faults[fault_id]

    def _matching_faults(
        self, src_pe: Optional["PERuntime"], dst_pe: "PERuntime"
    ) -> List[LinkFault]:
        if not self._link_faults:
            return []
        self._prune_faults()
        src_pe_id = src_pe.pe_id if src_pe is not None else None
        src_host = src_pe.host_name if src_pe is not None else None
        return [
            fault
            for fault in self._link_faults.values()
            if fault.matches(src_pe_id, src_host, dst_pe.pe_id, dst_pe.host_name)
        ]

    # -- crash accounting ----------------------------------------------------

    def drop_in_flight(self, pe_id: str) -> None:
        """Condemn everything currently in flight toward a crashed PE.

        Called by :meth:`PERuntime.crash`: the items stay scheduled (their
        kernel events cannot be retracted cheaply) but are recognized at
        delivery time by incarnation mismatch, counted in
        ``dropped_in_flight``, and never handed to the restarted process.

        Args:
            pe_id: The crashed PE.
        """
        if self._open_batches:
            # tuples still buffered toward the crashed PE are committed
            # to the wire *before* the incarnation bump, so they are
            # condemned at delivery time exactly like items that were
            # already in flight — no buffered tuple ever leaks into the
            # restarted incarnation, and none goes unaccounted
            self.flush_open_batches(dst_pe_id=pe_id)
        self._incarnations[pe_id] = self._incarnations.get(pe_id, 0) + 1
        if self.reliability is not None:
            self.reliability.on_pe_crashed(pe_id)

    # -- send / deliver ------------------------------------------------------

    def send(
        self,
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        item: Item,
        src_pe: Optional["PERuntime"] = None,
    ) -> None:
        """Schedule delivery of ``item`` to an input port of a remote PE.

        Args:
            dst_pe: Destination PE runtime.
            op_full_name: Destination operator full name.
            port: Destination input port.
            item: Tuple or punctuation to deliver.
            src_pe: Sending PE, when known — enables per-link fault
                matching and per-connection FIFO (None for registry-less
                senders such as tests).
        """
        if self.batch_max_size > 1:
            if isinstance(item, StreamTuple):
                self._append_to_batch(src_pe, dst_pe, op_full_name, port, item)
                return
            # punctuation never rides in a batch: flush the flow's open
            # batch first so the marker cannot overtake tuples buffered
            # ahead of it, then fall through to the one-item path
            src_key = src_pe.pe_id if src_pe is not None else ""
            flow = (src_key, dst_pe.pe_id, op_full_name, port)
            if flow in self._open_batches:
                self._flush_flow(flow)
        self.total_sent += 1
        if self.reliability is not None:
            self.reliability.send(src_pe, dst_pe, op_full_name, port, item)
            return
        faults = self._matching_faults(src_pe, dst_pe)
        latency = self.latency
        hold_until: Optional[float] = None
        untimed_partition: Optional[LinkFault] = None
        for fault in faults:
            if fault.drop_probability > 0.0 and (
                self.rng.random() < fault.drop_probability
            ):
                self.dropped_by_fault += 1
                return
            latency += fault.extra_latency
            if fault.partition:
                if fault.until is None:
                    # untimed partition: hold the item until the fault is
                    # cleared (clear_link_fault flushes the queue)
                    untimed_partition = fault
                else:
                    hold_until = max(hold_until or 0.0, fault.until)
        src_key = src_pe.pe_id if src_pe is not None else ""
        key = (dst_pe.pe_id, op_full_name, port)
        self._in_flight[key] = self._in_flight.get(key, 0) + 1
        link_seq = self._next_link_seq(src_key, dst_pe.pe_id)
        if untimed_partition is not None:
            # the destination incarnation and link send-sequence are
            # captured at *send* time (a crash during the partition must
            # still condemn held items; the seq keeps flushed queues in
            # send order) and the source PE rides along so the flush can
            # re-match faults like ordinary sends
            self._held.setdefault(untimed_partition.fault_id, []).append(
                (
                    src_pe,
                    dst_pe,
                    op_full_name,
                    port,
                    item,
                    self._incarnations.get(dst_pe.pe_id, 0),
                    link_seq,
                    False,
                )
            )
            return
        deliver_at = self.kernel.now + latency
        if hold_until is not None:
            deliver_at = max(deliver_at, hold_until + self.latency)
        self._schedule_delivery(
            deliver_at, src_key, dst_pe, op_full_name, port, item,
            link_seq=link_seq,
        )

    # -- batching ------------------------------------------------------------

    def send_batch(
        self,
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        tuples: List[StreamTuple],
        src_pe: Optional["PERuntime"] = None,
    ) -> None:
        """Send a run of tuples toward one input port in a single call.

        With batching disabled this degenerates to a loop over
        :meth:`send` (identical semantics, one kernel event per tuple);
        with batching enabled the whole run lands on the flow's open
        batch in one append and flushes by the usual size/linger rules.
        A bulk append larger than ``batch_max_size`` flushes as one
        oversized batch: size is a flush trigger, not a hard cap.

        Args:
            dst_pe: Destination PE runtime.
            op_full_name: Destination operator full name.
            port: Destination input port.
            tuples: Tuples to deliver, in order.
            src_pe: Sending PE, when known (see :meth:`send`).
        """
        if self.batch_max_size <= 1:
            for tup in tuples:
                self.send(dst_pe, op_full_name, port, tup, src_pe=src_pe)
            return
        if not tuples:
            return
        n = len(tuples)
        self.total_sent += n
        key = (dst_pe.pe_id, op_full_name, port)
        self._in_flight[key] = self._in_flight.get(key, 0) + n
        src_key = src_pe.pe_id if src_pe is not None else ""
        flow = (src_key, dst_pe.pe_id, op_full_name, port)
        batch = self._open_flow(flow, src_pe, dst_pe)
        batch.tuples.extend(tuples)
        if len(batch.tuples) >= self.batch_max_size:
            self._flush_flow(flow)

    def _append_to_batch(
        self,
        src_pe: Optional["PERuntime"],
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        tup: StreamTuple,
    ) -> None:
        """Buffer one tuple on its flow's open batch, flushing at size.

        The tuple counts as sent and in flight from the moment it is
        buffered, so ``queue_size`` (and through it the elastic drain
        barrier's backlog probe) sees open-batch occupants.
        """
        self.total_sent += 1
        key = (dst_pe.pe_id, op_full_name, port)
        self._in_flight[key] = self._in_flight.get(key, 0) + 1
        src_key = src_pe.pe_id if src_pe is not None else ""
        flow = (src_key, dst_pe.pe_id, op_full_name, port)
        batch = self._open_flow(flow, src_pe, dst_pe)
        batch.tuples.append(tup)
        if len(batch.tuples) >= self.batch_max_size:
            self._flush_flow(flow)

    def _open_flow(
        self,
        flow: Tuple[str, str, str, int],
        src_pe: Optional["PERuntime"],
        dst_pe: "PERuntime",
    ) -> _OpenBatch:
        """Return the flow's open batch, creating (and arming) it if needed.

        The linger clock starts at the first buffered tuple.  A linger of
        0.0 arms a ``call_soon`` flush instead: it fires at the end of
        the current kernel instant, which still coalesces a burst emitted
        within one upstream activation while never delaying delivery in
        sim time — crash instants between kernel ticks therefore observe
        no open batches, exactly like the unbatched transport.
        """
        batch = self._open_batches.get(flow)
        if batch is None:
            batch = _OpenBatch(src_pe, dst_pe, opened_at=self.kernel.now)
            self._open_batches[flow] = batch
            if self.batch_linger > 0.0:
                batch.flush_event = self.kernel.schedule(
                    self.batch_linger,
                    self._flush_flow,
                    flow,
                    label="transport-batch-linger",
                )
            else:
                batch.flush_event = self.kernel.call_soon(
                    self._flush_flow,
                    flow,
                    label="transport-batch-flush",
                )
        return batch

    def _flush_flow(self, flow: Tuple[str, str, str, int]) -> None:
        """Commit one flow's open batch to the wire (idempotent).

        The batch re-runs the same fault pipeline an ordinary send would:
        seeded drop rolls apply per member (casualties leave the batch
        and the in-flight count), latencies compose once for the whole
        batch, an untimed partition holds the batch as a single queue
        entry, and a timed one delays it.  Survivors take one contiguous
        ``link_seq`` range allocated here, at commit time — per-link
        ranges are claimed in flush order, which is also per-link
        delivery order, so FIFO taps observe strictly increasing
        sequences exactly as before.
        """
        open_batch = self._open_batches.pop(flow, None)
        if open_batch is None:
            return
        if open_batch.flush_event is not None:
            open_batch.flush_event.cancel()
        if self.reliability is not None:
            self.reliability.send_flushed_batch(open_batch, flow)
            return
        src_key, dst_pe_id, op_full_name, port = flow
        src_pe, dst_pe = open_batch.src_pe, open_batch.dst_pe
        items = open_batch.tuples
        faults = self._matching_faults(src_pe, dst_pe)
        latency = self.latency
        hold_until: Optional[float] = None
        untimed_partition: Optional[LinkFault] = None
        for fault in faults:
            if fault.drop_probability > 0.0 and items:
                roll = self.rng.random
                p = fault.drop_probability
                kept: List[StreamTuple] = []
                for tup in items:
                    if roll() < p:
                        self.dropped_by_fault += 1
                    else:
                        kept.append(tup)
                items = kept
            latency += fault.extra_latency
            if fault.partition:
                if fault.until is None:
                    untimed_partition = fault
                else:
                    hold_until = max(hold_until or 0.0, fault.until)
        dropped = len(open_batch.tuples) - len(items)
        if dropped:
            key = (dst_pe_id, op_full_name, port)
            count = self._in_flight.get(key, 0) - dropped
            if count <= 0:
                self._in_flight.pop(key, None)
            else:
                self._in_flight[key] = count
        if not items:
            return
        if self.batch_observer is not None:
            self.batch_observer(len(items))
        batch = TupleBatch(items)
        link = (src_key, dst_pe_id)
        base = self._link_send_seq.get(link, 0)
        self._link_send_seq[link] = base + len(items)
        first_seq = base + 1
        if untimed_partition is not None:
            # held as ONE queue entry carrying the whole batch; the
            # first member's seq is the entry's sort key, so flushed
            # queues merge with singles in commit order (see
            # clear_link_fault) and the destination incarnation is
            # captured now so a crash during the partition still
            # condemns the held batch
            self._held.setdefault(untimed_partition.fault_id, []).append(
                (
                    src_pe,
                    dst_pe,
                    op_full_name,
                    port,
                    batch,
                    self._incarnations.get(dst_pe_id, 0),
                    first_seq,
                    False,
                )
            )
            return
        deliver_at = self.kernel.now + latency
        if hold_until is not None:
            deliver_at = max(deliver_at, hold_until + self.latency)
        self._schedule_delivery(
            deliver_at, src_key, dst_pe, op_full_name, port, batch,
            link_seq=first_seq,
        )

    def flush_open_batches(self, dst_pe_id: Optional[str] = None) -> None:
        """Force every open batch (optionally: toward one PE) onto the wire.

        Called at drain/quiesce barriers (the elastic controller must not
        declare a region drained while tuples sit in open batches) and by
        :meth:`drop_in_flight` so crash condemnation covers buffered
        tuples.  A no-op when batching is off or nothing is buffered.

        Args:
            dst_pe_id: Only flush flows toward this PE (None: all flows).
        """
        if not self._open_batches:
            return
        flows = [
            flow
            for flow in self._open_batches
            if dst_pe_id is None or flow[1] == dst_pe_id
        ]
        for flow in flows:
            self._flush_flow(flow)

    def _next_link_seq(self, src_key: str, dst_pe_id: str) -> int:
        """Allocate the next send-time sequence number of one link."""
        link = (src_key, dst_pe_id)
        seq = self._link_send_seq.get(link, 0) + 1
        self._link_send_seq[link] = seq
        return seq

    def _schedule_delivery(
        self,
        deliver_at: float,
        src_key: Optional[str],
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        item: Payload,
        incarnation: Optional[int] = None,
        link_seq: Optional[int] = None,
        redelivery: bool = False,
    ) -> float:
        """Schedule one (already in-flight-counted) delivery, FIFO per link.

        Returns the actual (post-FIFO-clamp) arrival time, which the
        reliable plane records so barrier expediting can tell a copy
        still on the wire from one that was lost.
        """
        link = (src_key or "", dst_pe.pe_id)
        deliver_at = max(deliver_at, self._fifo_horizon.get(link, 0.0))
        self._fifo_horizon[link] = deliver_at
        if link_seq is None:
            link_seq = self._next_link_seq(link[0], link[1])
        if incarnation is None:
            incarnation = self._incarnations.get(dst_pe.pe_id, 0)
        if self.obs is not None and getattr(item, "traced", False):
            # one span per scheduled hop: covers fresh sends and
            # partition flushes alike; deliver_at is post-FIFO-clamp,
            # so the span end is the true arrival time.  A traced batch
            # records ONE span for the whole hop — tracing overhead
            # shrinks alongside dispatch overhead
            self.obs.record_transport(
                op_full_name,
                link[0],
                dst_pe.pe_id,
                dst_pe.job.job_id,
                self.kernel.now,
                deliver_at,
            )
        self.kernel.schedule_at(
            deliver_at,
            self._deliver,
            dst_pe,
            op_full_name,
            port,
            item,
            incarnation,
            link[0],
            link_seq,
            redelivery,
            label=f"transport->{op_full_name}[{port}]",
        )
        return deliver_at

    def _deliver(
        self,
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        item: Payload,
        incarnation: int = 0,
        src_key: str = "",
        link_seq: int = 0,
        redelivery: bool = False,
    ) -> None:
        if isinstance(item, TupleBatch):
            self._deliver_batch(
                dst_pe, op_full_name, port, item, incarnation, src_key,
                link_seq, redelivery,
            )
            return
        if self.reliability is not None:
            # the plane owns receiver semantics: in-flight accounting is
            # tied to a unit's *first* delivery, stale copies are ignored
            # without condemnation, and duplicates are suppressed or
            # passed through per mode
            self.reliability.on_arrival(
                dst_pe, op_full_name, port, item, incarnation, src_key,
                link_seq, redelivery,
            )
            return
        key = (dst_pe.pe_id, op_full_name, port)
        count = self._in_flight.get(key, 0)
        if count <= 1:
            self._in_flight.pop(key, None)
        else:
            self._in_flight[key] = count - 1
        if incarnation != self._incarnations.get(dst_pe.pe_id, 0):
            # The destination crashed after this item was sent: the item
            # died with the process and must not leak into its restarted
            # incarnation.
            self.dropped_in_flight += 1
            return
        if not dst_pe.is_running:
            # Receiving process is down: the tuple is lost (the paper's
            # Sec. 5.2: crashes of stateless PEs "may lead to tuple loss").
            self.total_dropped += 1
            return
        self.total_delivered += 1
        if self.delivery_taps:
            record = DeliveryRecord(
                src_key=src_key,
                dst_pe_id=dst_pe.pe_id,
                op_full_name=op_full_name,
                port=port,
                link_seq=link_seq,
                time=self.kernel.now,
            )
            for tap in list(self.delivery_taps):
                tap(record)
        dst_pe.receive(op_full_name, port, item)

    def _deliver_batch(
        self,
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        batch: TupleBatch,
        incarnation: int,
        src_key: str,
        first_seq: int,
        redelivery: bool = False,
    ) -> None:
        """Deliver one batch: accounting in bulk, one receive call.

        Counters move by the batch's member count — an incarnation
        mismatch condemns the whole batch (it was committed before the
        crash bump), a stopped destination loses it whole.  Delivery
        taps still observe one :class:`DeliveryRecord` per member, with
        the batch's contiguous seq range unrolled, so FIFO oracles need
        no batch awareness.
        """
        if self.reliability is not None:
            self.reliability.on_arrival(
                dst_pe, op_full_name, port, batch, incarnation, src_key,
                first_seq, redelivery,
            )
            return
        n = len(batch.tuples)
        key = (dst_pe.pe_id, op_full_name, port)
        count = self._in_flight.get(key, 0)
        if count <= n:
            self._in_flight.pop(key, None)
        else:
            self._in_flight[key] = count - n
        if incarnation != self._incarnations.get(dst_pe.pe_id, 0):
            self.dropped_in_flight += n
            return
        if not dst_pe.is_running:
            self.total_dropped += n
            return
        self.total_delivered += n
        if self.delivery_taps:
            now = self.kernel.now
            taps = list(self.delivery_taps)
            for offset in range(n):
                record = DeliveryRecord(
                    src_key=src_key,
                    dst_pe_id=dst_pe.pe_id,
                    op_full_name=op_full_name,
                    port=port,
                    link_seq=first_seq + offset,
                    time=now,
                )
                for tap in taps:
                    tap(record)
        dst_pe.receive(op_full_name, port, batch)

    def queue_size(self, pe_id: str, op_full_name: str, port: int) -> int:
        """Items currently in flight toward one input port."""
        return self._in_flight.get((pe_id, op_full_name, port), 0)

    def _dec_in_flight(self, key: Tuple[str, str, int], n: int = 1) -> None:
        """Drop one port's in-flight count by ``n`` (never below zero)."""
        count = self._in_flight.get(key, 0)
        if count <= n:
            self._in_flight.pop(key, None)
        else:
            self._in_flight[key] = count - n

    # -- reliable-delivery surface (no-ops in best-effort mode) --------------

    def checkpoint_watermarks(self, pe_id: str) -> Optional[dict]:
        """The ``"__transport__"`` epoch payload for one PE, or None.

        Exactly-once mode persists each link's delivered watermark into
        every checkpoint epoch so crash recovery can replay precisely the
        units the restored state does not cover.
        """
        if self.reliability is None:
            return None
        return self.reliability.checkpoint_watermarks(pe_id)

    def on_epoch_committed(self, pe_id: str, floor: Dict[str, int]) -> None:
        """A checkpoint epoch committed: truncate replay buffers.

        Args:
            pe_id: The checkpointed PE.
            floor: Per-source-key watermarks of the *oldest* retained
                committed epoch (see
                :meth:`~repro.checkpoint.store.CheckpointStore.committed_watermark_floor`).
        """
        if self.reliability is not None:
            self.reliability.on_epoch_committed(pe_id, floor)

    def on_pe_restarted(
        self, pe: "PERuntime", restored: Optional[Dict[str, int]] = None
    ) -> None:
        """A PE came back: rewind receiver state and replay toward it.

        Args:
            pe: The restarted PE runtime.
            restored: The watermark map of the epoch it rehydrated from
                (None: restarted empty or best-effort mode).
        """
        if self.reliability is not None:
            self.reliability.on_pe_restarted(pe, restored)

    def expedite_pending(self, dst_pe_id: Optional[str] = None) -> None:
        """Retransmit unacknowledged units now, bypassing retry backoff.

        Drain/quiesce barriers call this next to
        :meth:`flush_open_batches`: a barrier waits on the in-flight
        backlog, and pending retries are part of it — quiescence must not
        sit out a multi-second backoff timer.

        Args:
            dst_pe_id: Only expedite units toward this PE (None: all).
        """
        if self.reliability is not None:
            self.reliability.expedite_pending(dst_pe_id)

    def forget_pe(self, pe_id: str) -> None:
        """Condemn pending units toward a PE removed for good (scale-in).

        First-cause-wins: units a drop fault already claimed stay in
        ``dropped_by_fault`` and are not recounted in
        ``dropped_in_flight``.
        """
        if self.reliability is not None:
            self.reliability.forget_pe(pe_id)
