"""Inter-PE stream transport.

Tuples crossing a PE boundary travel through the transport with a small
configurable latency, modelling the TCP hop between operating system
processes.  The number of items in flight toward each destination input
port backs the ``queueSize`` built-in metric (the metric Fig. 5 of the
paper subscribes to for Split/Merge operators).

Intra-PE connections do not use the transport at all: fused operators call
each other synchronously, which is exactly why fusion removes queueing —
and why the orchestrator may care about partitioning (Sec. 4.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple, Union

from repro.sim.kernel import Kernel
from repro.spl.tuples import Punctuation, StreamTuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.pe import PERuntime

Item = Union[StreamTuple, Punctuation]


class Transport:
    """Delivers items between PEs with latency and in-flight accounting."""

    def __init__(self, kernel: Kernel, latency: float = 0.001) -> None:
        self.kernel = kernel
        self.latency = latency
        #: (pe_id, operator full name, port) -> items scheduled but not delivered
        self._in_flight: Dict[Tuple[str, str, int], int] = {}
        self.total_sent = 0
        self.total_delivered = 0
        self.total_dropped = 0

    def send(
        self,
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        item: Item,
    ) -> None:
        """Schedule delivery of ``item`` to an input port of a remote PE."""
        key = (dst_pe.pe_id, op_full_name, port)
        self._in_flight[key] = self._in_flight.get(key, 0) + 1
        self.total_sent += 1
        self.kernel.schedule(
            self.latency,
            self._deliver,
            dst_pe,
            op_full_name,
            port,
            item,
            label=f"transport->{op_full_name}[{port}]",
        )

    def _deliver(
        self, dst_pe: "PERuntime", op_full_name: str, port: int, item: Item
    ) -> None:
        key = (dst_pe.pe_id, op_full_name, port)
        count = self._in_flight.get(key, 0)
        if count <= 1:
            self._in_flight.pop(key, None)
        else:
            self._in_flight[key] = count - 1
        if not dst_pe.is_running:
            # Receiving process is down: the tuple is lost (the paper's
            # Sec. 5.2: crashes of stateless PEs "may lead to tuple loss").
            self.total_dropped += 1
            return
        self.total_delivered += 1
        dst_pe.receive(op_full_name, port, item)

    def queue_size(self, pe_id: str, op_full_name: str, port: int) -> int:
        """Items currently in flight toward one input port."""
        return self._in_flight.get((pe_id, op_full_name, port), 0)
