"""Reliable delivery plane: acks, retries, and epoch-aligned replay.

:class:`~repro.runtime.transport.Transport` is best-effort by default:
a lossy link fault permanently loses tuples and a crash condemns
everything in flight.  This module implements the two reliable modes of
the ``delivery`` config axis on
:class:`~repro.runtime.system.SystemConfig`:

* ``at_least_once`` — every wire unit (a single item, or one flushed
  :class:`~repro.spl.tuples.TupleBatch`) registers a pending entry keyed
  by ``(link, first link_seq)``.  The receiver acknowledges a unit when
  it is first delivered; acks travel the *reverse* link and are subject
  to the same seeded link faults as data (a ``LinkLoss`` covering the
  reverse direction drops acks on the transport's dedicated ack rng
  stream; partitions hold or swallow them).  A lost ack leaves the unit
  pending, so the retry timer retransmits it and the receiver re-acks
  the duplicate — delivery converges without a lossless side channel.
  Until the ack lands, a sim-time retry timer retransmits the unit with
  exponential backoff, so a lossy link delays tuples instead of losing
  them.  The receiver stays naive: every copy that arrives is
  delivered, so duplicates are possible (a partition-delayed original
  and a retransmit can both arrive at heal, and an ack loss forces a
  duplicate delivery by design) and per-connection FIFO is no longer
  promised after a loss-retransmit race.
* ``exactly_once`` — the same sender-side machinery plus an in-order
  receiver: each link delivers strictly by ``link_seq`` (out-of-order
  arrivals wait in a reorder buffer; already-delivered sequences are
  suppressed and counted in ``duplicates_suppressed``), and the per-link
  delivered watermark is persisted into checkpoint epochs under the
  reserved ``"__transport__"`` payload key.  Crash recovery restores the
  victim to a committed epoch and the plane replays every retained unit
  above the restored watermark: units the dead incarnation had already
  processed are re-processed with downstream emissions suppressed (state
  rebuilds without duplicate propagation, because their outputs already
  left the PE before the crash), and condemned in-flight units are
  re-sent instead of being counted in ``dropped_in_flight``.

Replay buffers are bounded: ``replay_buffer_max_bytes`` (0 = unbounded)
caps the payload bytes retained per link between epoch commits.  A link
at its cap applies *sender-side backpressure*: new units park in a
per-link stall queue before their link sequence is allocated (so FIFO is
preserved — sequences are claimed at release, in park order), the
``replay_stalls`` counter moves, and the units still count as in flight
so drain barriers and the health plane see the backlog.  The next epoch
commit truncates the buffer and releases the queue in order.

Loss attribution is **first-cause-wins**: a unit that loses a wire copy
to a seeded drop fault counts in ``dropped_by_fault`` exactly once, on
its first casualty, and a later condemnation (destination PE removed for
good) must not recount it in ``dropped_in_flight`` — and vice versa.

Everything here is sim-time scheduled and the only randomness is the
transport's seeded drop-roll and ack-roll streams, so runs replay
byte-identically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.spl.tuples import TupleBatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.pe import PERuntime
    from repro.runtime.transport import Payload, Transport

#: a directed connection: (source PE id or "", destination PE id)
Link = Tuple[str, str]


class PendingEntry:
    """One wire unit awaiting acknowledgement (or retained for replay).

    A unit is a single item or a whole flushed batch: it occupies the
    contiguous ``link_seq`` range ``[first_seq, first_seq + count - 1]``
    on its link, is retransmitted atomically, and is acknowledged by one
    ack — "one ack per flushed TupleBatch".
    """

    __slots__ = (
        "src_pe",
        "dst_pe",
        "op_full_name",
        "port",
        "payload",
        "link",
        "first_seq",
        "count",
        "delivered",
        "acked",
        "condemned",
        "attempts",
        "loss_attributed",
        "ack_lost",
        "retry_event",
        "next_arrival",
        "sent_at",
    )

    def __init__(
        self,
        src_pe: Optional["PERuntime"],
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        payload: "Payload",
        link: Link,
        first_seq: int,
        count: int,
    ) -> None:
        self.src_pe = src_pe
        self.dst_pe = dst_pe
        self.op_full_name = op_full_name
        self.port = port
        self.payload = payload
        self.link = link
        self.first_seq = first_seq
        self.count = count
        #: the unit reached the application at least once (its outputs
        #: exist downstream; a replay must suppress re-emission)
        self.delivered = False
        #: the sender saw the ack; the unit is off the pending registry
        self.acked = False
        #: the destination was removed for good; never retry again
        self.condemned = False
        #: completed retransmission attempts (drives the backoff)
        self.attempts = 0
        #: the unit has been counted in a loss counter (first-cause-wins)
        self.loss_attributed = False
        #: the most recent ack attempt was lost to a reverse-link fault;
        #: the retry timer must retransmit (provoking a re-ack) instead
        #: of waiting for an ack that will never land
        self.ack_lost = False
        self.retry_event = None
        #: scheduled arrival time of the newest live wire copy (None:
        #: the last copy was dropped; +inf: held by an untimed partition)
        self.next_arrival: Optional[float] = None
        #: sim-time the unit first hit the wire — the health plane's ack
        #: round-trip signal measures from here (set at registration)
        self.sent_at = 0.0


class DeliveryPlane:
    """Sender/receiver bookkeeping for the reliable delivery modes.

    Owned by (and mutating the counters of) one
    :class:`~repro.runtime.transport.Transport`; ``None`` on the
    transport means best-effort and keeps every hot path at one check.
    """

    def __init__(
        self,
        transport: "Transport",
        exactly_once: bool,
        ack_timeout: float,
        retry_backoff: float,
        max_retry_interval: float,
        replay_buffer_max_bytes: int = 0,
    ) -> None:
        self.transport = transport
        self.kernel = transport.kernel
        self.exactly_once = exactly_once
        self.ack_timeout = ack_timeout
        self.retry_backoff = retry_backoff
        self.max_retry_interval = max_retry_interval
        #: exactly-once: per-link cap on replay-buffer payload bytes
        #: (0 = unbounded, the historical behavior)
        self.replay_buffer_max_bytes = replay_buffer_max_bytes
        #: (link, first_seq) -> unacknowledged unit
        self.pending: Dict[Tuple[Link, int], PendingEntry] = {}
        #: exactly-once receiver: link -> highest contiguously delivered seq
        self.delivered_wm: Dict[Link, int] = {}
        #: exactly-once receiver: link -> first_seq -> parked early arrival
        self.reorder: Dict[Link, Dict[int, tuple]] = {}
        #: exactly-once sender: link -> first_seq -> acked unit retained
        #: until its seq range drops below every restorable epoch
        self.replay_buffer: Dict[Link, Dict[int, PendingEntry]] = {}
        #: link -> watermark the replay buffer was last truncated to (the
        #: oldest retained committed epoch can always replay from here)
        self.truncated_to: Dict[Link, int] = {}
        #: link -> payload bytes currently retained in ``replay_buffer``
        self.replay_bytes: Dict[Link, int] = {}
        #: link -> units parked by the replay cap *before* link-seq
        #: allocation (sequences are claimed at release, in park order,
        #: so per-link FIFO survives the stall); each entry is
        #: ``(src_pe, dst_pe, op_full_name, port, payload, count)``
        self.stalled: Dict[Link, List[tuple]] = {}
        #: PEs that have committed at least one epoch — the only
        #: destinations the replay cap may stall.  A link toward a PE
        #: that never commits (stateless sink, splitter, checkpointing
        #: disabled) can never truncate its replay buffer, so stalling
        #: it would deadlock the flow; those links keep the historical
        #: unbounded retention their replay-from-zero restart semantics
        #: require anyway.
        self.committing_pes: Set[str] = set()

    # -- send path ----------------------------------------------------------

    def send(
        self,
        src_pe: Optional["PERuntime"],
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        item: "Payload",
    ) -> None:
        """Register one single-item unit and put its first copy on the wire.

        Unlike the best-effort path, the link sequence is allocated and
        the pending entry registered *before* any drop roll: a dropped
        copy keeps its seq and retries, so the in-order receiver stalls
        the link until the retransmit fills the gap (FIFO preserved).
        """
        t = self.transport
        key = (dst_pe.pe_id, op_full_name, port)
        t._in_flight[key] = t._in_flight.get(key, 0) + 1
        src_key = src_pe.pe_id if src_pe is not None else ""
        link = (src_key, dst_pe.pe_id)
        if self._must_stall(link):
            self._park(link, src_pe, dst_pe, op_full_name, port, item, 1)
            return
        self._dispatch(src_pe, dst_pe, op_full_name, port, item, 1)

    def send_flushed_batch(self, open_batch, flow: Tuple[str, str, str, int]) -> None:
        """Commit one open batch to the wire as a single reliable unit.

        The whole batch takes one contiguous seq range, one pending
        entry, one ack, and retransmits atomically — so batching changes
        granularity, never semantics.  Drop rolls apply to the wire copy
        as a whole (a lost packet loses the whole batch), not per member
        as in the best-effort flush.
        """
        t = self.transport
        src_key, dst_pe_id, op_full_name, port = flow
        items = open_batch.tuples
        if not items:
            return
        if t.batch_observer is not None:
            t.batch_observer(len(items))
        link = (src_key, dst_pe_id)
        if self._must_stall(link):
            self._park(
                link,
                open_batch.src_pe,
                open_batch.dst_pe,
                op_full_name,
                port,
                TupleBatch(items),
                len(items),
            )
            return
        self._dispatch(
            open_batch.src_pe,
            open_batch.dst_pe,
            op_full_name,
            port,
            TupleBatch(items),
            len(items),
        )

    def _dispatch(
        self,
        src_pe: Optional["PERuntime"],
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        payload: "Payload",
        count: int,
    ) -> None:
        """Allocate the unit's seq range, register it, and transmit.

        The single commit point of the reliable send path: link
        sequences are claimed here — after any stall — so parked units
        keep per-link FIFO when released.
        """
        t = self.transport
        src_key = src_pe.pe_id if src_pe is not None else ""
        link = (src_key, dst_pe.pe_id)
        base = t._link_send_seq.get(link, 0)
        t._link_send_seq[link] = base + count
        entry = PendingEntry(
            src_pe, dst_pe, op_full_name, port, payload, link, base + 1, count
        )
        entry.sent_at = self.kernel.now
        self.pending[(link, base + 1)] = entry
        self._transmit(entry)
        self._arm_retry(entry)

    # -- replay-buffer backpressure -----------------------------------------

    def _must_stall(self, link: Link) -> bool:
        """True when the link's replay buffer is at its byte cap.

        A link with parked units stalls unconditionally — newer units
        must queue behind the backlog or FIFO would break at release.
        Only links toward a destination that has *committed an epoch*
        are ever stalled: backpressure is released exclusively by
        epoch-commit truncation, so stalling a never-committing
        destination (stateless PE, checkpointing off) would deadlock
        the flow rather than bound it.
        """
        if not self.exactly_once or self.replay_buffer_max_bytes <= 0:
            return False
        if link[1] not in self.committing_pes:
            return False
        if link in self.stalled:
            return True
        return self.replay_bytes.get(link, 0) >= self.replay_buffer_max_bytes

    def _park(
        self,
        link: Link,
        src_pe: Optional["PERuntime"],
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        payload: "Payload",
        count: int,
    ) -> None:
        """Queue one unit behind the link's replay-cap backpressure.

        The unit already counts as in flight (its sender incremented the
        in-flight gauge), so drain barriers and the health plane see the
        stalled backlog; the link seq is *not* allocated yet.
        """
        self.stalled.setdefault(link, []).append(
            (src_pe, dst_pe, op_full_name, port, payload, count)
        )
        t = self.transport
        t.replay_stalls += count
        self._observe("replay_stall", count, op_full_name)

    def _release_stalled(self, link: Link) -> None:
        """Dispatch parked units in order while the link is under its cap."""
        queue = self.stalled.get(link)
        if not queue:
            return
        cap = self.replay_buffer_max_bytes
        while queue and self.replay_bytes.get(link, 0) < cap:
            src_pe, dst_pe, op_full_name, port, payload, count = queue.pop(0)
            self._dispatch(src_pe, dst_pe, op_full_name, port, payload, count)
        if not queue:
            del self.stalled[link]

    def _transmit(self, entry: PendingEntry, redelivery: bool = False) -> None:
        """Run one wire copy of a unit through the link-fault pipeline.

        A seeded drop loses the copy (the unit stays pending and will be
        retransmitted; ``dropped_by_fault`` moves only on the unit's
        first casualty), partitions hold or delay it exactly like a
        best-effort send, and a clean link schedules delivery after the
        composed latency.  ``redelivery=True`` marks a post-restart
        replay of an already-processed unit: the receiver will suppress
        downstream emissions when it lands.
        """
        t = self.transport
        faults = t._matching_faults(entry.src_pe, entry.dst_pe)
        latency = t.latency
        hold_until: Optional[float] = None
        untimed = None
        for fault in faults:
            if fault.drop_probability > 0.0 and (
                t.rng.random() < fault.drop_probability
            ):
                if not entry.loss_attributed:
                    entry.loss_attributed = True
                    t.dropped_by_fault += entry.count
                entry.next_arrival = None
                return
            latency += fault.extra_latency
            if fault.partition:
                if fault.until is None:
                    untimed = fault
                else:
                    hold_until = max(hold_until or 0.0, fault.until)
        incarnation = t._incarnations.get(entry.dst_pe.pe_id, 0)
        if untimed is not None:
            t._held.setdefault(untimed.fault_id, []).append(
                (
                    entry.src_pe,
                    entry.dst_pe,
                    entry.op_full_name,
                    entry.port,
                    entry.payload,
                    incarnation,
                    entry.first_seq,
                    redelivery,
                )
            )
            entry.next_arrival = float("inf")
            return
        deliver_at = self.kernel.now + latency
        if hold_until is not None:
            deliver_at = max(deliver_at, hold_until + t.latency)
        entry.next_arrival = t._schedule_delivery(
            deliver_at,
            entry.link[0],
            entry.dst_pe,
            entry.op_full_name,
            entry.port,
            entry.payload,
            incarnation=incarnation,
            link_seq=entry.first_seq,
            redelivery=redelivery,
        )

    # -- retry timers -------------------------------------------------------

    def _arm_retry(self, entry: PendingEntry) -> None:
        delay = min(
            self.ack_timeout * (self.retry_backoff ** entry.attempts),
            self.max_retry_interval,
        )
        entry.retry_event = self.kernel.schedule(
            delay, self._on_retry, entry, label="transport-retry"
        )

    def _on_retry(self, entry: PendingEntry) -> None:
        """Ack timeout expired: retransmit (the sender cannot tell a lost
        copy from a delayed one, so a copy stuck behind a partition gets a
        sibling — the receiver's dedup absorbs whichever lands second)."""
        entry.retry_event = None
        if entry.acked or entry.condemned:
            return
        if entry.delivered and not entry.ack_lost:
            # an ack copy survived the reverse-link fault pipeline and
            # is on its way; it will land
            return
        entry.attempts += 1
        if not entry.dst_pe.is_running:
            # destination down: hold fire, keep the timer as a fallback
            # (a restart expedites pending units immediately)
            self._arm_retry(entry)
            return
        t = self.transport
        t.retransmissions += 1
        self._observe("retransmit", entry.count, entry.op_full_name, entry.attempts)
        self._transmit(entry)
        self._arm_retry(entry)

    def expedite_pending(self, dst_pe_id: Optional[str] = None) -> None:
        """Retransmit undelivered units now, bypassing their backoff.

        Called at drain/quiesce barriers (polled) and on PE restart, so a
        barrier never sits out a multi-second backoff.  Units with a live
        copy still on the wire, held behind an active partition, or
        headed to a stopped PE are left alone — the poll must not pile up
        copies.
        """
        now = self.kernel.now
        t = self.transport
        for entry in list(self.pending.values()):
            if dst_pe_id is not None and entry.dst_pe.pe_id != dst_pe_id:
                continue
            if entry.delivered or entry.acked or entry.condemned:
                continue
            if not entry.dst_pe.is_running:
                continue
            if entry.next_arrival is not None and now < entry.next_arrival:
                continue
            if any(
                fault.partition
                for fault in t._matching_faults(entry.src_pe, entry.dst_pe)
            ):
                continue
            entry.attempts += 1
            t.retransmissions += 1
            self._observe(
                "retransmit", entry.count, entry.op_full_name, entry.attempts
            )
            if entry.retry_event is not None:
                entry.retry_event.cancel()
            self._transmit(entry)
            self._arm_retry(entry)

    # -- receiver -----------------------------------------------------------

    def on_arrival(
        self,
        dst_pe: "PERuntime",
        op_full_name: str,
        port: int,
        payload: "Payload",
        incarnation: int,
        src_key: str,
        first_seq: int,
        redelivery: bool,
    ) -> None:
        """Handle one wire copy reaching the destination process.

        Copies addressed to a dead incarnation or a stopped process are
        ignored without accounting — the unit is still pending on the
        sender and will be retransmitted, which is exactly the difference
        from the best-effort transport (there, these copies are the loss).
        """
        t = self.transport
        if incarnation != t._incarnations.get(dst_pe.pe_id, 0):
            return
        if not dst_pe.is_running:
            return
        count = len(payload.tuples) if isinstance(payload, TupleBatch) else 1
        if self.exactly_once:
            self._arrive_exactly_once(
                dst_pe, op_full_name, port, payload, src_key, first_seq,
                count, redelivery,
            )
        else:
            self._arrive_at_least_once(
                dst_pe, op_full_name, port, payload, src_key, first_seq, count
            )

    def _arrive_at_least_once(
        self, dst_pe, op_full_name, port, payload, src_key, first_seq, count
    ) -> None:
        """Naive receiver: deliver every copy that arrives, dup or not."""
        entry = self.pending.get(((src_key, dst_pe.pe_id), first_seq))
        if entry is not None and not entry.delivered:
            entry.delivered = True
            self.transport._dec_in_flight(
                (dst_pe.pe_id, op_full_name, port), count
            )
            self._schedule_ack(entry)
        elif entry is not None and entry.ack_lost:
            # a retransmit provoked by a lost ack: re-ack this copy
            self._schedule_ack(entry)
        self._hand_over(
            dst_pe, op_full_name, port, payload, src_key, first_seq, count,
            redelivery=False,
        )

    def _arrive_exactly_once(
        self,
        dst_pe,
        op_full_name,
        port,
        payload,
        src_key,
        first_seq,
        count,
        redelivery,
    ) -> None:
        """In-order receiver: strict per-link seq delivery with dedup."""
        link = (src_key, dst_pe.pe_id)
        wm = self.delivered_wm.get(link, 0)
        if first_seq + count - 1 <= wm:
            self.transport.duplicates_suppressed += count
            self._observe("duplicate_suppressed", count, op_full_name)
            self._reack_if_lost(link, first_seq)
            return
        if first_seq != wm + 1:
            buf = self.reorder.setdefault(link, {})
            if first_seq in buf:
                self.transport.duplicates_suppressed += count
                self._observe("duplicate_suppressed", count, op_full_name)
            else:
                buf[first_seq] = (
                    op_full_name, port, payload, first_seq, count, redelivery
                )
            return
        self._deliver_in_order(
            link, dst_pe, op_full_name, port, payload, first_seq, count,
            redelivery,
        )
        buf = self.reorder.get(link)
        while buf:
            parked = buf.pop(self.delivered_wm[link] + 1, None)
            if parked is None:
                break
            self._deliver_in_order(link, dst_pe, *parked)
        if buf is not None and not buf:
            self.reorder.pop(link, None)

    def _deliver_in_order(
        self, link, dst_pe, op_full_name, port, payload, first_seq, count,
        redelivery,
    ) -> None:
        self.delivered_wm[link] = first_seq + count - 1
        entry = self.pending.get((link, first_seq))
        if entry is not None and not entry.delivered:
            entry.delivered = True
            self.transport._dec_in_flight(
                (dst_pe.pe_id, op_full_name, port), count
            )
            self._schedule_ack(entry)
        elif entry is not None and entry.ack_lost:
            self._schedule_ack(entry)
        self._hand_over(
            dst_pe, op_full_name, port, payload, link[0], first_seq, count,
            redelivery=redelivery,
        )

    def _hand_over(
        self, dst_pe, op_full_name, port, payload, src_key, first_seq, count,
        redelivery,
    ) -> None:
        """Count the delivery, fire taps, and hand the unit to the PE.

        ``redelivery=True`` deliveries re-process with downstream
        emissions suppressed: the unit's outputs already left the PE in a
        previous incarnation, so only the state effect must be rebuilt.
        """
        t = self.transport
        t.total_delivered += count
        if t.delivery_taps:
            from repro.runtime.transport import DeliveryRecord

            now = self.kernel.now
            taps = list(t.delivery_taps)
            for offset in range(count):
                record = DeliveryRecord(
                    src_key=src_key,
                    dst_pe_id=dst_pe.pe_id,
                    op_full_name=op_full_name,
                    port=port,
                    link_seq=first_seq + offset,
                    time=now,
                    redelivery=redelivery,
                )
                for tap in taps:
                    tap(record)
        dst_pe.receive(op_full_name, port, payload, suppress_emissions=redelivery)

    # -- acks ---------------------------------------------------------------

    def _schedule_ack(self, entry: PendingEntry) -> None:
        """Put one ack on the reverse link, through its fault pipeline.

        Acks are data on the wire, not a lossless side channel: faults
        matching the *reverse* direction (receiver back to sender) apply.
        Drop rolls draw from the transport's dedicated ``ack_rng`` stream
        so forward-path rolls — and therefore every committed sim
        artifact without reverse-link faults — are untouched.  A dropped
        or partition-swallowed ack marks the entry ``ack_lost``, which
        re-arms the sender's retransmit path; the receiver re-acks the
        resulting duplicate, so delivery converges.
        """
        t = self.transport
        latency = t.latency
        entry.ack_lost = False
        if t._link_faults and entry.src_pe is not None:
            hold_until: Optional[float] = None
            for fault in t._matching_faults(entry.dst_pe, entry.src_pe):
                if fault.drop_probability > 0.0 and (
                    t.ack_rng.random() < fault.drop_probability
                ):
                    entry.ack_lost = True
                    t.acks_dropped += 1
                    self._observe("ack_dropped", 1, entry.op_full_name)
                    return
                latency += fault.extra_latency
                if fault.partition:
                    if fault.until is None:
                        # an untimed partition swallows the ack: the
                        # retransmit after heal provokes a fresh one
                        entry.ack_lost = True
                        t.acks_dropped += 1
                        self._observe("ack_dropped", 1, entry.op_full_name)
                        return
                    hold_until = max(hold_until or 0.0, fault.until)
            if hold_until is not None:
                latency = max(latency, hold_until + t.latency - self.kernel.now)
        self.kernel.schedule(latency, self._on_ack, entry, label="transport-ack")

    def _on_ack(self, entry: PendingEntry) -> None:
        if entry.acked or entry.condemned:
            return
        entry.acked = True
        t = self.transport
        t.acks += 1
        self._observe("ack", entry.count, entry.op_full_name)
        if t.pressure_observer is not None:
            t.pressure_observer(
                "ack_rtt",
                self.kernel.now - entry.sent_at,
                f"{entry.op_full_name}@{entry.dst_pe.pe_id}#{entry.port}",
            )
        if entry.retry_event is not None:
            entry.retry_event.cancel()
            entry.retry_event = None
        self.pending.pop((entry.link, entry.first_seq), None)
        if self.exactly_once:
            self.replay_buffer.setdefault(entry.link, {})[entry.first_seq] = entry
            self.replay_bytes[entry.link] = self.replay_bytes.get(
                entry.link, 0
            ) + getattr(entry.payload, "size_bytes", 0)

    def _reack_if_lost(self, link: Link, first_seq: int) -> None:
        """Re-ack a suppressed duplicate whose original ack was lost.

        Without this the sender retransmits forever: the in-order
        receiver suppresses every duplicate copy, so only a fresh ack
        can break the livelock.
        """
        entry = self.pending.get((link, first_seq))
        if entry is not None and entry.delivered and entry.ack_lost:
            self._schedule_ack(entry)

    # -- crash / restart / epochs -------------------------------------------

    def on_pe_crashed(self, pe_id: str) -> None:
        """Wipe arrived-but-undelivered copies toward the dead process.

        Parked reorder-buffer copies died with the process; their units
        are still pending on the senders and will be retransmitted to the
        new incarnation, so nothing is condemned here — the whole point
        of reliable delivery.
        """
        for link in [l for l in self.reorder if l[1] == pe_id]:
            del self.reorder[link]

    def on_pe_restarted(
        self, pe: "PERuntime", restored: Optional[Dict[str, int]]
    ) -> None:
        """Reset receiver state and replay toward a restarted PE.

        ``restored`` is the per-link watermark map of the epoch the PE
        rehydrated from (None: restarted empty).  Each link rewinds to
        ``max(restored watermark, truncation floor)`` and every retained
        unit above it is re-sent in seq order: already-processed units
        replay with emissions suppressed (``redelivery``), undelivered
        units retransmit normally — so condemned in-flight tuples reach
        the new incarnation instead of being counted as lost.
        """
        pe_id = pe.pe_id
        t = self.transport
        if not self.exactly_once:
            self.expedite_pending(dst_pe_id=pe_id)
            return
        links = {l for l in self.delivered_wm if l[1] == pe_id}
        links |= {l for l in self.replay_buffer if l[1] == pe_id}
        links |= {link for (link, _seq) in self.pending if link[1] == pe_id}
        restored = restored or {}
        for link in sorted(links):
            base = max(
                restored.get(link[0], 0), self.truncated_to.get(link, 0)
            )
            self.delivered_wm[link] = base
            self.reorder.pop(link, None)
            # a restart is a fresh connection: do not inherit the dead
            # incarnation's FIFO horizon (stale copies no-op on arrival)
            t._fifo_horizon.pop(link, None)
            units: List[PendingEntry] = [
                entry
                for seq, entry in self.replay_buffer.get(link, {}).items()
                if seq > base
            ]
            units.extend(
                entry
                for (l, _seq), entry in self.pending.items()
                if l == link
            )
            for entry in sorted(units, key=lambda e: e.first_seq):
                if entry.delivered and entry.first_seq + entry.count - 1 <= base:
                    continue  # covered by the restored state; ack will clear
                if entry.retry_event is not None:
                    entry.retry_event.cancel()
                    entry.retry_event = None
                if entry.delivered:
                    t.replayed += entry.count
                    self._observe("replay", entry.count, entry.op_full_name)
                    self._transmit(entry, redelivery=True)
                else:
                    entry.attempts += 1
                    t.retransmissions += 1
                    self._observe(
                        "retransmit", entry.count, entry.op_full_name,
                        entry.attempts,
                    )
                    self._transmit(entry)
                    self._arm_retry(entry)

    def checkpoint_watermarks(self, pe_id: str) -> Optional[dict]:
        """The ``"__transport__"`` payload riding this PE's epochs.

        Exactly-once only: the per-link delivered watermarks at capture
        time, which by construction cover precisely the units whose state
        effects are in the captured operator snapshots.
        """
        if not self.exactly_once:
            return None
        return {
            "watermarks": {
                link[0]: wm
                for link, wm in self.delivered_wm.items()
                if link[1] == pe_id
            }
        }

    def on_epoch_committed(self, pe_id: str, floor: Dict[str, int]) -> None:
        """Truncate replay buffers to the oldest restorable epoch's floor.

        ``floor`` maps source keys to the watermarks of the *oldest*
        retained committed epoch — any retained epoch can still be chosen
        for rehydration (torn-commit fallback), so replay must be able to
        start from the oldest one, not the newest.
        """
        if not self.exactly_once:
            return
        self.committing_pes.add(pe_id)
        for link in [l for l in self.replay_buffer if l[1] == pe_id]:
            wm = floor.get(link[0], 0)
            if wm <= self.truncated_to.get(link, 0):
                continue
            self.truncated_to[link] = wm
            buf = self.replay_buffer[link]
            freed = 0
            for seq in [s for s, e in buf.items() if s + e.count - 1 <= wm]:
                freed += getattr(buf[seq].payload, "size_bytes", 0)
                del buf[seq]
            if not buf:
                del self.replay_buffer[link]
            if freed:
                remaining = self.replay_bytes.get(link, 0) - freed
                if remaining > 0:
                    self.replay_bytes[link] = remaining
                else:
                    self.replay_bytes.pop(link, None)
                # truncation lifted the backpressure: let parked units
                # claim their sequences and hit the wire, in park order
                self._release_stalled(link)

    def forget_pe(self, pe_id: str) -> None:
        """Condemn every unit toward a PE that is removed for good.

        Undelivered units count in ``dropped_in_flight`` — unless a drop
        fault already claimed them (first-cause-wins); delivered units
        were counted on delivery and are simply discarded.
        """
        t = self.transport
        for key in [k for k in self.pending if k[0][1] == pe_id]:
            entry = self.pending.pop(key)
            entry.condemned = True
            if entry.retry_event is not None:
                entry.retry_event.cancel()
                entry.retry_event = None
            if not entry.delivered:
                t._dec_in_flight(
                    (pe_id, entry.op_full_name, entry.port), entry.count
                )
                if not entry.loss_attributed:
                    entry.loss_attributed = True
                    t.dropped_in_flight += entry.count
        for link in [l for l in self.stalled if l[1] == pe_id]:
            # parked units never reached the wire; condemn them like
            # pending ones (they are counted in flight since parking)
            for _src, _dst, op_full_name, port, _payload, count in self.stalled.pop(
                link
            ):
                t._dec_in_flight((pe_id, op_full_name, port), count)
                t.dropped_in_flight += count
        for mapping in (
            self.delivered_wm,
            self.reorder,
            self.replay_buffer,
            self.truncated_to,
            self.replay_bytes,
        ):
            for link in [l for l in mapping if l[1] == pe_id]:
                del mapping[link]
        self.committing_pes.discard(pe_id)

    # -- observability ------------------------------------------------------

    def _observe(
        self, kind: str, count: int, op_full_name: str, attempt: int = 0
    ) -> None:
        observer = self.transport.reliability_observer
        if observer is not None:
            observer(kind, count, op_full_name, attempt, self.kernel.now)
