"""PE (processing element) runtime container.

A PE is the runtime container for one or more fused operators and maps to
an operating system process (Sec. 2.1).  The PE instantiates its operators
at start, routes tuples between them (synchronously when fused, through
the transport when crossing PE boundaries), maintains the PE-level
built-in metrics, and models the two lifecycle disruptions the paper's
use cases rely on:

* **crash** — operator instances are discarded *without* shutdown hooks;
  scheduled work is cancelled; in-flight tuples toward the PE are lost.
* **restart** — fresh operator instances with empty state (windows refill
  from scratch, which is what Fig. 9(b) shows).  Optionally,
  ``restart(rehydrate=True)`` reinstalls state from the best available
  source: the latest *committed* checkpoint epoch when the runtime has a
  :class:`~repro.checkpoint.store.CheckpointStore` (which makes
  rehydration meaningful after *crashes* too — torn epochs are never
  loaded), falling back to the last quiesced snapshot captured at the
  most recent graceful stop.  Without a store, the paper's semantics are
  unchanged: a crash never produces a snapshot, so a crashed PE that was
  never cleanly stopped still restarts empty.  Every rehydrating restart
  leaves a :class:`~repro.checkpoint.store.RestoreReport` in
  ``last_restore`` so observers can distinguish a restored PE from an
  empty one (the ``rehydrate_skipped`` ORCA event).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

from repro.checkpoint.store import CheckpointStore, RestoreReport
from repro.errors import PEControlError
from repro.sim.kernel import Kernel, ScheduledEvent
from repro.spl.compiler import CompiledApplication, PESpec
from repro.spl.library import Export, Import
from repro.spl.metrics import MetricKind, MetricRegistry, PEMetricName, OperatorMetricName
from repro.spl.operators import Operator, OperatorContext
from repro.spl.tuples import Punctuation, StreamTuple, TupleBatch
from repro.runtime.transport import Transport

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.job import Job

Item = Union[StreamTuple, Punctuation]


class PEState(enum.Enum):
    CONSTRUCTED = "constructed"
    RUNNING = "running"
    STOPPED = "stopped"
    CRASHED = "crashed"


class PERuntime:
    """Runtime container executing a slice of an application graph."""

    def __init__(
        self,
        pe_id: str,
        spec: PESpec,
        job: "Job",
        kernel: Kernel,
        transport: Transport,
        publish_export: Callable[[str, str, Item], None],
        host_name: Optional[str] = None,
        checkpoints: Optional[CheckpointStore] = None,
    ) -> None:
        self.pe_id = pe_id
        self.spec = spec
        self.job = job
        self.kernel = kernel
        self.transport = transport
        #: observability hub when span tracing is on (the transport holds
        #: the system-wide reference; None keeps delivery at one check)
        self.obs = transport.obs
        self.publish_export = publish_export
        self.host_name = host_name
        self.state = PEState.CONSTRUCTED
        self.operators: Dict[str, Operator] = {}
        self.metrics = MetricRegistry()
        #: operator full name -> last quiesced state snapshot (captured on
        #: graceful stop; consumed by ``restart(rehydrate=True)`` when no
        #: checkpoint store is wired in)
        self.state_registry: Dict[str, dict] = {}
        #: committed-epoch snapshots (preferred rehydration source); the
        #: graceful-stop snapshot is also recorded here so quiesced state
        #: and periodic checkpoints share one epoch mechanism
        self.checkpoints = checkpoints
        #: what the last ``restart(rehydrate=True)`` restored (None when
        #: the last restart did not request rehydration)
        self.last_restore: Optional[RestoreReport] = None
        self._pending: List[ScheduledEvent] = []
        self.last_crash_reason: Optional[str] = None
        self.on_crash: Optional[Callable[["PERuntime", str], None]] = None
        #: exactly-once replay depth: while > 0, operator emissions are
        #: swallowed in :meth:`_route`/:meth:`_route_batch` — the tuples
        #: being re-processed already sent their outputs downstream in a
        #: previous incarnation, so only the state effect may recur
        self._suppress_emissions = 0
        self._routes = self._build_routes(job.compiled)
        self._create_pe_metrics()

    # -- construction helpers -------------------------------------------------

    @property
    def index(self) -> int:
        return self.spec.index

    @property
    def is_running(self) -> bool:
        return self.state is PEState.RUNNING

    def _create_pe_metrics(self) -> None:
        self.metrics.create(PEMetricName.N_TUPLES_PROCESSED, MetricKind.COUNTER)
        self.metrics.create(PEMetricName.N_TUPLE_BYTES_PROCESSED, MetricKind.COUNTER)
        self.metrics.create(PEMetricName.N_TUPLES_SUBMITTED, MetricKind.COUNTER)
        self.metrics.create(PEMetricName.N_RESTARTS, MetricKind.COUNTER)

    def _build_routes(
        self, compiled: CompiledApplication
    ) -> Dict[Tuple[str, int], List[Tuple[str, int, int]]]:
        """(src op, out port) -> [(dst op, in port, dst PE index)] for local ops."""
        local = set(self.spec.operators)
        routes: Dict[Tuple[str, int], List[Tuple[str, int, int]]] = {}
        for edge in compiled.application.graph.edges:
            src_name = edge.src.full_name
            if src_name not in local:
                continue
            routes.setdefault((src_name, edge.src_port), []).append(
                (edge.dst.full_name, edge.dst_port, compiled.pe_of(edge.dst.full_name))
            )
        return routes

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        if self.state is PEState.RUNNING:
            raise PEControlError(f"PE {self.pe_id} already running")
        self._instantiate_operators()
        self.state = PEState.RUNNING
        for operator in self.operators.values():
            operator.on_initialize()

    def _instantiate_operators(self) -> None:
        graph = self.job.compiled.application.graph
        self.operators = {}
        for op_name in self.spec.operators:
            spec = graph.operators[op_name]
            ctx = OperatorContext(
                spec=spec,
                job_id=self.job.job_id,
                app_name=self.job.app_name,
                submission_params=self.job.params,
                now_fn=lambda: self.kernel.now,
                submit_fn=self._make_submit(op_name),
                punct_fn=self._make_punct(op_name),
                schedule_fn=self._schedule_guarded,
                pe_id=self.pe_id,
            )
            ctx.obs = self.obs
            ctx.submit_batch_fn = self._make_submit_batch(op_name)
            operator = spec.op_class(ctx)
            if isinstance(operator, Export):
                operator.bind_export(
                    lambda item, name=op_name: self.publish_export(
                        self.job.job_id, name, item
                    )
                )
            self.operators[op_name] = operator

    def stop(self, capture_state: bool = True) -> None:
        """Graceful stop: quiesced snapshots captured, shutdown hooks run,
        pending work cancelled.

        ``capture_state=False`` skips the snapshot deep-copy — used when
        the PE is being discarded for good (job cancellation, parallel
        region scale-in) and nothing could ever rehydrate from it.
        """
        if self.state is not PEState.RUNNING:
            return
        if capture_state:
            self.capture_state_snapshots()
        for operator in self.operators.values():
            operator.on_shutdown()
        self._cancel_pending()
        self.state = PEState.STOPPED

    def capture_state_snapshots(self) -> Dict[str, dict]:
        """Snapshot every stateful operator into the state registry.

        An operator is snapshotted when the compiler declared it stateful
        (``PESpec.stateful_ops``) or when its state store is in use (a
        Custom operator may hold state without a STATEFUL class marker).
        """
        declared = set(getattr(self.spec, "stateful_ops", ()) or ())
        captured: Dict[str, dict] = {}
        for op_name, operator in self.operators.items():
            if op_name in declared or operator.state.in_use:
                captured[op_name] = operator.snapshot()
        self.state_registry.update(captured)
        if captured and self.checkpoints is not None:
            # Quiesced snapshots ride the same epoch mechanism as periodic
            # checkpoints: record + commit in one step (the PE is stopped,
            # nothing can tear the capture).
            n_keys = sum(
                self.operators[name].state.n_keys() for name in captured
            )
            payloads = dict(captured)
            # exactly-once: the transport's per-link delivered watermarks
            # ride the epoch (reserved key, skipped by operator restore)
            wm_payload = self.transport.checkpoint_watermarks(self.pe_id)
            if wm_payload is not None:
                payloads["__transport__"] = wm_payload
            entry = self.checkpoints.record(
                self.job.job_id,
                self.pe_id,
                payloads,
                self.kernel.now,
                full=True,
                keys_dirty=n_keys,
                keys_total=n_keys,
            )
            self.checkpoints.commit(self.job.job_id, self.pe_id, entry.epoch)
            if wm_payload is not None:
                floor = self.checkpoints.committed_watermark_floor(
                    self.job.job_id, self.pe_id
                )
                self.transport.on_epoch_committed(self.pe_id, floor or {})
        return dict(self.state_registry)

    def crash(self, reason: str = "crash") -> None:
        """Abrupt process death: no shutdown hooks, state is lost.

        The state registry keeps whatever was captured at the *previous*
        graceful stop — the in-memory state at crash time is gone.
        """
        if self.state is not PEState.RUNNING:
            return
        self._cancel_pending()
        self.operators = {}
        self.state = PEState.CRASHED
        self.last_crash_reason = reason
        # Items in flight toward this PE die with the process: they are
        # counted (dropped_in_flight) instead of being delivered to the
        # next incarnation after a restart.
        self.transport.drop_in_flight(self.pe_id)
        if self.on_crash is not None:
            self.on_crash(self, reason)

    def restart(self, rehydrate: bool = False) -> None:
        """Bring a stopped/crashed PE back.

        ``rehydrate=False`` (the paper's semantics, and the default):
        fresh operator instances with empty state.  ``rehydrate=True``:
        operators are restored from the latest *committed* checkpoint
        epoch when a store is wired in (crash recovery), else from the
        last quiesced snapshot in the state registry (graceful-stop
        recovery), else they start empty — with the outcome recorded in
        ``last_restore`` either way.
        """
        if self.state is PEState.RUNNING:
            raise PEControlError(f"PE {self.pe_id} is running; stop it first")
        self.metrics.get(PEMetricName.N_RESTARTS).increment()
        self._instantiate_operators()
        self.last_restore = None
        restored_watermarks: Optional[Dict[str, int]] = None
        if rehydrate:
            payloads: Dict[str, dict] = {}
            source = "none"
            epoch: Optional[int] = None
            if self.checkpoints is not None:
                entry = self.checkpoints.latest_committed(
                    self.job.job_id, self.pe_id
                )
                if entry is not None:
                    payloads, source, epoch = entry.payloads, "checkpoint", entry.epoch
            if not payloads and self.state_registry:
                payloads, source = dict(self.state_registry), "quiesced"
            restored = []
            for op_name, payload in payloads.items():
                operator = self.operators.get(op_name)
                if operator is not None:
                    operator.restore(payload)
                    restored.append(op_name)
            wm_payload = payloads.get("__transport__")
            if wm_payload is not None:
                restored_watermarks = dict(wm_payload.get("watermarks", {}))
            self.last_restore = RestoreReport(
                source=source if restored else "none",
                epoch=epoch if restored else None,
                restored_ops=tuple(restored),
                time=self.kernel.now,
            )
        self.state = PEState.RUNNING
        for operator in self.operators.values():
            operator.on_initialize()
        # reliable delivery: rewind the receiver to the restored epoch's
        # watermarks and replay retained units toward the new incarnation
        # (a no-op in best-effort mode)
        self.transport.on_pe_restarted(self, restored_watermarks)

    def rebuild_routes(self) -> None:
        """Re-derive tuple routes after the job's compiled plan changed.

        Called by the elastic controller when a parallel region is rewired:
        the splitter's PE gains/loses channel destinations while every
        operator instance keeps running.
        """
        self._routes = self._build_routes(self.job.compiled)

    def _cancel_pending(self) -> None:
        for handle in self._pending:
            handle.cancel()
        self._pending = []

    def _schedule_guarded(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule operator work that silently no-ops if the PE is down."""

        def guarded() -> None:
            if self.state is PEState.RUNNING:
                callback()

        handle = self.kernel.schedule(delay, guarded, label=f"{self.pe_id}-opwork")
        self._pending.append(handle)
        if len(self._pending) > 256:
            self._pending = [h for h in self._pending if not h.cancelled]
        return handle

    # -- tuple routing ---------------------------------------------------------

    def _make_submit(self, op_name: str) -> Callable[[int, StreamTuple], None]:
        def submit(port: int, tup: StreamTuple) -> None:
            self._route(op_name, port, tup)

        return submit

    def _make_punct(self, op_name: str) -> Callable[[int, Punctuation], None]:
        def submit_punct(port: int, punct: Punctuation) -> None:
            self._route(op_name, port, punct)

        return submit_punct

    def _make_submit_batch(
        self, op_name: str
    ) -> Callable[[int, List[StreamTuple]], None]:
        def submit_batch(port: int, tuples: List[StreamTuple]) -> None:
            self._route_batch(op_name, port, tuples)

        return submit_batch

    def _route(self, src_op: str, src_port: int, item: Item) -> None:
        if self.state is not PEState.RUNNING:
            return
        if self._suppress_emissions:
            return
        if isinstance(item, StreamTuple):
            self.metrics.get(PEMetricName.N_TUPLES_SUBMITTED).increment()
        for dst_name, dst_port, dst_pe_index in self._routes.get((src_op, src_port), ()):
            if dst_pe_index == self.index:
                self._deliver_local(dst_name, dst_port, item)
            else:
                dst_pe = self.job.pe_by_index(dst_pe_index)
                self.transport.send(dst_pe, dst_name, dst_port, item, src_pe=self)

    def _route_batch(
        self, src_op: str, src_port: int, tuples: List[StreamTuple]
    ) -> None:
        """Batched twin of :meth:`_route`: metrics and sends move in bulk.

        Local edges hand the run straight to the destination operator's
        ``process_batch``; remote edges use :meth:`Transport.send_batch`
        (one open-batch append for the whole run).
        """
        if self.state is not PEState.RUNNING or not tuples:
            return
        if self._suppress_emissions:
            return
        self.metrics.get(PEMetricName.N_TUPLES_SUBMITTED).increment(len(tuples))
        for dst_name, dst_port, dst_pe_index in self._routes.get(
            (src_op, src_port), ()
        ):
            if dst_pe_index == self.index:
                self._deliver_local_batch(dst_name, dst_port, tuples)
            else:
                dst_pe = self.job.pe_by_index(dst_pe_index)
                self.transport.send_batch(
                    dst_pe, dst_name, dst_port, tuples, src_pe=self
                )

    def receive(
        self,
        op_full_name: str,
        port: int,
        item: Item,
        suppress_emissions: bool = False,
    ) -> None:
        """Entry point for the transport and the import registry.

        ``suppress_emissions=True`` marks an exactly-once replay of a
        unit this PE already processed in a dead incarnation: it is
        re-processed so operator state rebuilds, but anything the
        processing tries to emit is swallowed — its outputs already left
        the PE before the crash and must not propagate twice.
        """
        if self.state is not PEState.RUNNING:
            return
        if suppress_emissions:
            self._suppress_emissions += 1
            try:
                if isinstance(item, TupleBatch):
                    self._deliver_local_batch(op_full_name, port, item.tuples)
                else:
                    self._deliver_local(op_full_name, port, item)
            finally:
                self._suppress_emissions -= 1
            return
        if isinstance(item, TupleBatch):
            self._deliver_local_batch(op_full_name, port, item.tuples)
            return
        self._deliver_local(op_full_name, port, item)

    def _deliver_local(self, op_full_name: str, port: int, item: Item) -> None:
        operator = self.operators.get(op_full_name)
        if operator is None:
            return
        if isinstance(item, StreamTuple):
            self.metrics.get(PEMetricName.N_TUPLES_PROCESSED).increment()
            self.metrics.get(PEMetricName.N_TUPLE_BYTES_PROCESSED).increment(
                item.size_bytes
            )
            if self.obs is not None and item.traced:
                self.obs.record_process(
                    op_full_name,
                    self.pe_id,
                    self.job.job_id,
                    item.created_at,
                    self.kernel.now,
                )
        operator._process(item, port)

    def _deliver_local_batch(
        self, op_full_name: str, port: int, tuples: List[StreamTuple]
    ) -> None:
        """Batched twin of :meth:`_deliver_local`.

        PE counters move once per batch; traced members still record
        per-tuple process spans (the end-to-end latency histogram keeps
        its meaning), and the operator gets one ``_process_batch`` call.
        """
        operator = self.operators.get(op_full_name)
        if operator is None or not tuples:
            return
        self.metrics.get(PEMetricName.N_TUPLES_PROCESSED).increment(len(tuples))
        self.metrics.get(PEMetricName.N_TUPLE_BYTES_PROCESSED).increment(
            sum(tup.size_bytes for tup in tuples)
        )
        if self.obs is not None:
            now = self.kernel.now
            for tup in tuples:
                if tup.traced:
                    self.obs.record_process(
                        op_full_name,
                        self.pe_id,
                        self.job.job_id,
                        tup.created_at,
                        now,
                    )
        operator._process_batch(tuples, port)

    def deliver_import(self, op_full_name: str, item: Item) -> None:
        """Deliver an item from the import/export registry to an Import op."""
        if self.state is not PEState.RUNNING:
            return
        operator = self.operators.get(op_full_name)
        if isinstance(operator, Import):
            if isinstance(item, StreamTuple):
                self.metrics.get(PEMetricName.N_TUPLES_PROCESSED).increment()
                self.metrics.get(PEMetricName.N_TUPLE_BYTES_PROCESSED).increment(
                    item.size_bytes
                )
            operator.deliver(item)

    # -- metrics ------------------------------------------------------------------

    def update_queue_metrics(self) -> None:
        """Refresh queueSize and state-size gauges at collection time.

        Called by the host controller just before a metric snapshot so the
        gauges reflect the backlog (and the operator state footprint) at
        collection time; the samples flow to SRM with everything else, so
        ORCA routines can aggregate ``stateBytes`` per region channel.
        """
        for op_name, operator in self.operators.items():
            total = 0
            for port in range(operator.n_inputs):
                backlog = self.transport.queue_size(self.pe_id, op_name, port)
                total += backlog
                gauge = operator.metrics.get_or_create(
                    OperatorMetricName.QUEUE_SIZE, MetricKind.GAUGE, port=port
                )
                gauge.set(backlog)
            operator.metrics.get_or_create(
                OperatorMetricName.QUEUE_SIZE, MetricKind.GAUGE
            ).set(total)
            if operator.state.in_use:
                operator.metrics.get_or_create(
                    "stateBytes", MetricKind.GAUGE
                ).set(operator.state.size_bytes())
                operator.metrics.get_or_create(
                    "nStateKeys", MetricKind.GAUGE
                ).set(operator.state.n_keys())
        if self.checkpoints is not None:
            latest = self.checkpoints.latest_committed(self.job.job_id, self.pe_id)
            if latest is not None:
                # staleness of the newest committed epoch: the gauge SRM
                # serves to ORCA routines that react to lagging checkpoints
                self.metrics.get_or_create(
                    "checkpointLag", MetricKind.GAUGE
                ).set(self.kernel.now - latest.time)

    def send_control(self, op_full_name: str, command: str, payload: dict) -> None:
        """Route a control command to one operator instance (Sec. 3)."""
        operator = self.operators.get(op_full_name)
        if operator is None:
            raise PEControlError(
                f"PE {self.pe_id}: operator {op_full_name!r} not running here"
            )
        operator.on_control(command, payload)

    def __repr__(self) -> str:
        return (
            f"PERuntime({self.pe_id}, job={self.job.job_id}, #{self.index}, "
            f"{self.state.value}, host={self.host_name})"
        )
