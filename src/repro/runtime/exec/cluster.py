"""Multiprocess wall-clock cluster harness.

The first real-runtime deployment shape (the subprocess-cluster step the
ROADMAP names on the way to the scalehub-style deployment): N OS worker
processes, each running a complete wall-clock :class:`~repro.runtime
.system.SystemS` — compiled application, SAM, transport, checkpoint
service, elastic controller — on its own core, reporting measurements
back over a real ``multiprocessing`` queue.

:func:`run_worker_cluster` is the generic harness (any picklable task);
:func:`wallclock_pipeline_worker` is the stock task the committed
real-time benchmark uses: a keyed parallel-region pipeline driven at a
fixed tick, optionally exercising one live rescale and one
crash-plus-rehydrate recovery, with every latency reported in wall-clock
milliseconds measured by ``time.perf_counter`` on a real core.

The ``fork`` start method is preferred (cheap, inherits the imported
library); on platforms without it the harness falls back to the default
start method, which is why the stock task is a module-level function
building its whole system *inside* the child.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List


@dataclass
class WorkerReport:
    """One worker process's measurements, marshalled over the queue."""

    worker_id: int
    #: tuples observed at the sink
    tuples: int
    #: real seconds the measured section took
    wall_seconds: float
    #: kernel callbacks executed (events/s = events / wall_seconds)
    events: int
    #: task-specific extras (rescale_ms, recovery_ms, ...)
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def tuples_per_second(self) -> float:
        """Sink throughput in tuples per real second."""
        return self.tuples / self.wall_seconds if self.wall_seconds > 0 else 0.0


def _cluster_context() -> multiprocessing.context.BaseContext:
    """Fork when available (cheap, no pickling of the library), else default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _worker_entry(
    worker_id: int,
    task: Callable[..., WorkerReport],
    kwargs: Dict[str, Any],
    queue: "multiprocessing.queues.Queue",
) -> None:
    """Child-process entry: run the task, ship the report (or the error)."""
    try:
        queue.put(("ok", worker_id, task(worker_id, **kwargs)))
    except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
        queue.put(("error", worker_id, repr(exc)))


def run_worker_cluster(
    task: Callable[..., WorkerReport],
    workers: int = 2,
    timeout: float = 60.0,
    **kwargs: Any,
) -> List[WorkerReport]:
    """Run ``task(worker_id, **kwargs)`` in ``workers`` OS processes.

    Each worker runs the task in a freshly started process and posts a
    :class:`WorkerReport` back over a shared queue.  Raises
    ``RuntimeError`` if any worker errors or the cluster does not finish
    inside ``timeout`` real seconds.

    Args:
        task: Module-level callable (picklable under spawn) returning a
            :class:`WorkerReport`.
        workers: Number of OS processes.
        timeout: Real-seconds budget for the whole cluster.
        **kwargs: Passed verbatim to every task invocation.

    Returns:
        Reports sorted by ``worker_id``.
    """
    ctx = _cluster_context()
    queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_worker_entry, args=(i, task, kwargs, queue), daemon=True
        )
        for i in range(workers)
    ]
    for proc in procs:
        proc.start()
    deadline = time.monotonic() + timeout
    reports: List[WorkerReport] = []
    errors: List[str] = []
    for _ in range(workers):
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        try:
            status, worker_id, payload = queue.get(timeout=remaining)
        except Exception:  # queue.Empty — the cluster timed out
            break
        if status == "ok":
            reports.append(payload)
        else:
            errors.append(f"worker {worker_id}: {payload}")
    for proc in procs:
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - hung worker cleanup
            proc.terminate()
    if errors:
        raise RuntimeError("cluster workers failed: " + "; ".join(errors))
    if len(reports) != workers:
        raise RuntimeError(
            f"cluster timed out: {len(reports)}/{workers} reports "
            f"within {timeout}s"
        )
    return sorted(reports, key=lambda r: r.worker_id)


def wallclock_pipeline_worker(
    worker_id: int,
    duration: float = 2.0,
    period: float = 0.001,
    time_scale: float = 1.0,
    rescale: bool = False,
    crash: bool = False,
    seed: int = 42,
) -> WorkerReport:
    """Stock cluster task: one wall-clock SystemS under real load.

    Builds a keyed parallel-region pipeline (source -> 2-wide keyed
    counters -> sink) on the ``wallclock`` executor, drives it for
    ``duration`` executor seconds at one source tick per ``period``
    seconds, and optionally performs one live 2 -> 4 rescale and one
    channel-PE crash with checkpoint rehydration — timing both in real
    milliseconds via ``perf_counter``.

    Everything is constructed inside the worker process, so the task is
    safe under both ``fork`` and ``spawn`` start methods.
    """
    from repro.runtime.system import SystemConfig, SystemS
    from repro.spl.application import Application
    from repro.spl.library import CallbackSource, KeyedCounter, Sink
    from repro.spl.parallel import parallel

    system = SystemS(
        hosts=4,
        seed=seed + worker_id,
        config=SystemConfig(
            executor="wallclock",
            wallclock_time_scale=time_scale,
            checkpoint_interval=0.25 if crash else 0.0,
            failure_notification_delay=0.001,
        ),
    )

    def _generator(now: float, count: int) -> List[Dict[str, Any]]:
        return [{"seq": count, "key": f"k{count % 8}"}]

    app = Application(f"Realtime{worker_id}")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": _generator, "period": period},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        KeyedCounter,
        params={"key": "key"},
        parallel=parallel(
            width=2, name="region", partition_by="key", max_width=8
        ),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    job = system.submit_job(app)

    extra: Dict[str, Any] = {}
    wall_start = time.perf_counter()
    system.run_for(duration / 2)

    if rescale:
        done: Dict[str, float] = {}
        t0 = time.perf_counter()
        system.elastic.set_channel_width(
            job,
            "region",
            4,
            on_complete=lambda op: done.setdefault("at", time.perf_counter()),
        )
        while "at" not in done:
            system.run_for(0.05)
        extra["rescale_ms"] = (done["at"] - t0) * 1000.0

    if crash:
        target = job.pe_of_operator(
            job.compiled.parallel_regions["region"].channel_ops[0][0]
        )
        recovered: Dict[str, float] = {}

        def _on_restart(pe: Any) -> None:
            if pe.pe_id == target.pe_id:
                recovered.setdefault("at", time.perf_counter())

        system.sam.pe_restart_observers.append(_on_restart)
        system.run_for(0.3)  # let a checkpoint epoch commit first
        t0 = time.perf_counter()
        target.crash("cluster_benchmark")
        system.failures.restart_pe(job.job_id, target.pe_id, rehydrate=True)
        while "at" not in recovered:
            system.run_for(0.05)
        extra["recovery_ms"] = (recovered["at"] - t0) * 1000.0

    system.run_for(duration / 2)
    wall_seconds = time.perf_counter() - wall_start
    sink_op = job.operator_instance("sink")
    return WorkerReport(
        worker_id=worker_id,
        tuples=len(sink_op.seen),
        wall_seconds=wall_seconds,
        events=system.kernel.events_processed,
        extra=extra,
    )
