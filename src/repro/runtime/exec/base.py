"""The executor contract extracted from the simulated kernel.

Every component of the middleware — transport, SAM, the elastic
controller, the checkpoint service, the obs hub, and the instrumentation
taps enumerated by :func:`repro.obs.listeners.subscribe_runtime` — talks
to the scheduler through exactly the surface documented here: event
scheduling (:meth:`Executor.schedule` / :meth:`Executor.schedule_at` /
:meth:`Executor.call_soon`), cancellation via the returned handle, the
``now`` time source, the execution drivers (:meth:`Executor.step`,
:meth:`Executor.run_until`, :meth:`Executor.run_for`,
:meth:`Executor.run`), and the ``event_tap`` observer hook.

Two implementations satisfy the contract:

* :class:`repro.sim.kernel.Kernel` — the deterministic discrete-event
  twin.  Virtual time jumps instantaneously between events; ties are
  broken by scheduling order, so identical seeds give byte-identical
  runs.  It is registered as a virtual subclass (it must not import this
  package: ``repro.sim`` sits below ``repro.runtime`` in the layer
  graph).
* :class:`repro.runtime.exec.wallclock.WallClockExecutor` — the
  wall-clock backend.  ``now`` derives from ``time.monotonic()``; the
  run loop sleeps until the next event is due instead of warping time.

Backends are selected with ``SystemConfig(executor=...)`` and built by
:func:`repro.runtime.exec.build_executor`; the conformance suite in
``tests/test_executor_conformance.py`` holds both to the same observable
semantics (event ordering, timer cancellation, barrier flushes, crash
condemnation).
"""

from __future__ import annotations

import abc
from typing import Any, Callable


class Executor(abc.ABC):
    """Abstract scheduler contract every backend must satisfy.

    The contract is intentionally the exact public surface of the
    historical simulated kernel, so every existing component runs
    unmodified on any backend.  Implementations must provide, beyond
    the abstract methods below, two attributes:

    ``event_tap``
        Either ``None`` or a callable invoked with each executed
        event handle *before* its callback runs (the obs hub installs
        one when tracing is enabled).

    ``wall_clock``
        Class-level bool: ``True`` when ``now`` tracks real elapsed
        time (scaled), ``False`` for virtual time.
    """

    #: True when ``now`` is driven by the host's monotonic clock.
    wall_clock: bool = False

    #: short backend name used in logs, benchmarks, and artifacts
    backend_name: str = "executor"

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (virtual or scaled-monotonic)."""

    @property
    @abc.abstractmethod
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""

    @abc.abstractmethod
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any, label: str = ""
    ) -> Any:
        """Run ``callback(*args)`` ``delay`` seconds from now; return a handle.

        The handle exposes ``cancel()`` (idempotent) and a ``time``
        attribute.  ``delay`` must be >= 0.
        """

    @abc.abstractmethod
    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any, label: str = ""
    ) -> Any:
        """Run ``callback(*args)`` at absolute ``time``; return a handle.

        Sim backends reject times in the past (determinism demands a
        total order); wall-clock backends clamp overdue times to "as
        soon as possible" because real time advances between the
        caller computing a deadline and the executor checking it.
        """

    @abc.abstractmethod
    def call_soon(
        self, callback: Callable[..., Any], *args: Any, label: str = ""
    ) -> Any:
        """Run ``callback(*args)`` after already-pending same-time work."""

    @abc.abstractmethod
    def step(self) -> bool:
        """Execute the single next pending event; False when none remain."""

    @abc.abstractmethod
    def run_until(self, time: float) -> None:
        """Execute every event due at or before ``time``.

        On return ``now`` is at least ``time`` and no event with
        ``event.time <= time`` remains pending.  Events scheduled
        *during* execution are processed too when they fall within the
        horizon, so chained periodic activities advance naturally.
        """

    @abc.abstractmethod
    def run_for(self, duration: float) -> None:
        """Equivalent to ``run_until(now + duration)``."""

    @abc.abstractmethod
    def run(self, max_events: int = 1_000_000) -> None:
        """Drain the queue completely (bounded by ``max_events``)."""

    @abc.abstractmethod
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
