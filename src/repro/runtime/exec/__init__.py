"""Executor backends: the scheduler contract and its implementations.

See :mod:`repro.runtime.exec.base` for the contract,
:mod:`repro.runtime.exec.sim` for the deterministic twin,
:mod:`repro.runtime.exec.wallclock` for the real-time backend, and
:mod:`repro.runtime.exec.cluster` for the multiprocess harness.
Backends are selected by ``SystemConfig(executor=...)`` and constructed
through :func:`build_executor`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.exec.base import Executor
from repro.runtime.exec.cluster import (
    WorkerReport,
    run_worker_cluster,
    wallclock_pipeline_worker,
)
from repro.runtime.exec.sim import SimExecutor, build_sim_executor
from repro.runtime.exec.wallclock import WallClockExecutor, WallTimeClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import SystemConfig

#: executor names accepted by ``SystemConfig(executor=...)``
EXECUTOR_BACKENDS = ("sim", "wallclock")


def build_executor(config: "SystemConfig") -> Executor:
    """Build the executor backend selected by ``config.executor``.

    ``"sim"`` (default) returns the deterministic discrete-event kernel;
    ``"wallclock"`` returns a :class:`WallClockExecutor` whose time
    source is ``time.monotonic()`` scaled by
    ``config.wallclock_time_scale``.
    """
    kind = config.executor
    if kind == "sim":
        return build_sim_executor()
    if kind == "wallclock":
        return WallClockExecutor(time_scale=config.wallclock_time_scale)
    raise ValueError(
        f"unknown executor backend {kind!r}; expected one of {EXECUTOR_BACKENDS}"
    )


__all__ = [
    "EXECUTOR_BACKENDS",
    "Executor",
    "SimExecutor",
    "WallClockExecutor",
    "WallTimeClock",
    "WorkerReport",
    "build_executor",
    "build_sim_executor",
    "run_worker_cluster",
    "wallclock_pipeline_worker",
]
