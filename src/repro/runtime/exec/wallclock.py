"""Wall-clock executor: the same event loop driven by real time.

:class:`WallClockExecutor` reuses the simulated kernel's heap, handle
type, tie-breaking, and cancellation semantics — it subclasses
:class:`repro.sim.kernel.Kernel` — but its clock is a scaled
``time.monotonic()`` reading and its run loop *sleeps* until the next
event is due instead of warping virtual time forward.  Everything built
against the executor contract (transport retry timers, checkpoint
cadence, chaos scenario steps, health-plane ticks) therefore runs
unmodified in real time.

``time_scale`` maps virtual seconds to real seconds: at the default 1.0
a 0.25 s ack timeout takes 250 real milliseconds; at ``time_scale=50`` a
60-virtual-second chaos campaign finishes in ~1.2 s of wall time while
every relative ordering is preserved.  Benchmarks report at scale 1.0.

Two deliberate contract relaxations versus the sim twin, documented in
:mod:`repro.runtime.exec.base`:

* ``schedule_at`` clamps past deadlines to "now" instead of raising —
  the monotonic clock advances between a caller computing a deadline
  and the executor checking it, so a hard error would be a race.
* Execution order of same-deadline events is still schedule order, but
  *which* events share a deadline depends on real scheduling jitter, so
  wall-clock runs are not byte-reproducible.  The sim kernel remains
  the deterministic twin.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Any, Callable

from repro.sim.kernel import Kernel, ScheduledEvent

#: longest single sleep while idling toward a horizon; keeps the loop
#: responsive to KeyboardInterrupt without measurable busy-wait cost
_MAX_SLEEP = 0.2


class WallTimeClock:
    """Monotonic real-time clock scaled into executor seconds.

    Mirrors the :class:`repro.sim.clock.Clock` interface (``now`` and
    ``_advance_to``) so the kernel machinery works unchanged, but time
    advances on its own: ``_advance_to`` is a no-op because nothing can
    move real time.
    """

    __slots__ = ("time_scale", "_origin")

    def __init__(self, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be > 0, got {time_scale}")
        self.time_scale = float(time_scale)
        self._origin = _time.monotonic()

    @property
    def now(self) -> float:
        """Scaled seconds since this clock was created."""
        return (_time.monotonic() - self._origin) * self.time_scale

    def _advance_to(self, time: float) -> None:
        """No-op: real time cannot be warped; overdue events just run."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WallTimeClock(now={self.now:.3f}, scale={self.time_scale})"


class WallClockExecutor(Kernel):
    """Executor backend where ``now`` is scaled real time.

    Inherits the heap, :class:`~repro.sim.kernel.ScheduledEvent`
    handles, ``event_tap``, and ``pending_count`` from the kernel;
    overrides the time source, the past-deadline policy, and the
    execution drivers to wait out gaps in real time.
    """

    wall_clock = True
    backend_name = "wallclock"

    def __init__(self, time_scale: float = 1.0) -> None:
        super().__init__(WallTimeClock(time_scale))

    # -- scheduling ---------------------------------------------------------

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule at absolute ``time``; overdue deadlines run ASAP.

        Unlike the sim kernel this never raises for past times — between
        a caller computing ``now + delay`` and this check, the monotonic
        clock has already advanced.
        """
        event = ScheduledEvent(time, self._seq, callback, args, label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # -- execution ----------------------------------------------------------

    def _sleep_until(self, deadline: float) -> None:
        """Block until the scaled clock reaches ``deadline``."""
        clock = self.clock
        scale = clock.time_scale
        while True:
            remaining = (deadline - clock.now) / scale
            if remaining <= 0:
                return
            _time.sleep(min(remaining, _MAX_SLEEP))

    def step(self) -> bool:
        """Run the next pending event, sleeping until it is due."""
        heap = self._heap
        while heap:
            if heap[0].cancelled:
                heapq.heappop(heap)
                continue
            self._sleep_until(heap[0].time)
            event = heapq.heappop(heap)
            if event.cancelled:  # cancelled while we slept? single-threaded,
                continue  # but harmless to re-check after the pop
            self._events_processed += 1
            if self.event_tap is not None:
                self.event_tap(event)
            event.callback(*event.args)
            return True
        return False

    def run_until(self, time: float) -> None:
        """Run events due at or before ``time``, waiting out gaps.

        Returns once real (scaled) time has passed ``time`` and no event
        with ``event.time <= time`` remains.  Overdue events — deadlines
        the loop could not honor exactly because callbacks take real
        time — are executed rather than dropped, so the post-condition
        matches the sim kernel's.
        """
        heap = self._heap
        heappop = heapq.heappop
        clock = self.clock
        self._running = True
        try:
            while True:
                while heap and heap[0].cancelled:
                    heappop(heap)
                if not heap or heap[0].time > time:
                    # nothing (left) inside the horizon: idle out the
                    # remainder so `now >= time` on return, like the twin
                    if clock.now < time:
                        self._sleep_until(time)
                        continue  # sleep may have been cut short; re-check
                    return
                event = heap[0]
                if event.time > clock.now:
                    self._sleep_until(min(event.time, time))
                    continue
                heappop(heap)
                self._events_processed += 1
                if self.event_tap is not None:
                    self.event_tap(event)
                event.callback(*event.args)
        finally:
            self._running = False
