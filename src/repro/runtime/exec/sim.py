"""The simulated kernel as an executor backend.

:class:`SimExecutor` is simply :class:`repro.sim.kernel.Kernel` — the
deterministic discrete-event twin — re-exported under the executor
naming so ``build_executor`` treats both backends uniformly.  The kernel
itself lives in :mod:`repro.sim` and must not import this package (the
layer graph puts ``repro.sim`` below ``repro.runtime``), so the
conformance relationship is declared here: the kernel is registered as a
virtual subclass of :class:`repro.runtime.exec.base.Executor`.
"""

from __future__ import annotations

from repro.sim.clock import Clock
from repro.sim.kernel import Kernel

from repro.runtime.exec.base import Executor

Executor.register(Kernel)

#: the deterministic backend is the unmodified simulated kernel
SimExecutor = Kernel


def build_sim_executor() -> Kernel:
    """Construct a fresh deterministic sim-kernel backend at time 0."""
    return Kernel(Clock())
