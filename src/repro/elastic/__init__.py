"""Elastic parallel regions: consistent live re-parallelization.

This package is the runtime-adaptation counterpart of
:mod:`repro.spl.parallel`: where the spl layer *compiles* an annotated
operator chain into N data-parallel channels, this layer *changes* N while
the job keeps running — the single most common adaptation routine in
practice (Röger & Mayer's elasticity survey, PAPERS.md), and the one the
paper's ORCA orchestrators could observe but never actuate.

* :class:`~repro.elastic.controller.ElasticController` — the
  re-parallelization protocol: quiesce the region's splitter on an epoch
  barrier (Fries-style, reusing the epoch counters of
  :mod:`repro.orca.epochs`), drain every in-flight and buffered tuple into
  the merger, rewire channels (logical graph + compiled plan + live PEs),
  and resume.  Tuple-loss-free by construction: nothing is dropped, only
  held at the barrier.
* :mod:`~repro.elastic.policy` — pluggable :class:`ScalingPolicy`
  implementations (queue-size watermarks, throughput targets) that ORCA
  logic can consult to decide target widths.
"""

from repro.elastic.controller import (
    ChannelReroute,
    ElasticController,
    RescaleOperation,
    RescaleState,
    StateMigration,
    StateReclaim,
)
from repro.elastic.policy import (
    HealthAwareScalingPolicy,
    QueueSizeScalingPolicy,
    RegionObservation,
    ScalingPolicy,
    StateAwareScalingPolicy,
    ThroughputScalingPolicy,
)

__all__ = [
    "ChannelReroute",
    "ElasticController",
    "HealthAwareScalingPolicy",
    "QueueSizeScalingPolicy",
    "RegionObservation",
    "RescaleOperation",
    "RescaleState",
    "ScalingPolicy",
    "StateAwareScalingPolicy",
    "StateMigration",
    "StateReclaim",
    "ThroughputScalingPolicy",
]
