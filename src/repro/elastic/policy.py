"""Pluggable scaling policies for parallel regions.

A policy is a pure decision function: given a :class:`RegionObservation`
(current width, per-channel backlog, optional throughput) it returns the
desired channel width, or ``None`` when no change is warranted.  Policies
never actuate; the caller (typically ORCA logic reacting to a timer or a
``channel_congested`` event) passes the decision to
``set_channel_width()``.  Keeping policies side-effect-free makes them
trivially unit-testable and composable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RegionObservation:
    """One region's state at observation time."""

    job_id: str
    region: str
    width: int
    #: channel index -> aggregated congestion-metric value of that channel
    channel_backlogs: Dict[int, float] = field(default_factory=dict)
    #: region-wide output rate (tuples/second), when the caller tracked one
    throughput: Optional[float] = None
    #: channel index -> aggregated ``stateBytes`` of the channel's operators
    #: (filled by ``OrcaService.region_observation`` from SRM; the input for
    #: state-aware policies that weigh migration cost against load)
    channel_state_sizes: Dict[int, float] = field(default_factory=dict)
    time: float = 0.0

    @property
    def max_backlog(self) -> float:
        return max(self.channel_backlogs.values()) if self.channel_backlogs else 0.0

    @property
    def total_backlog(self) -> float:
        return sum(self.channel_backlogs.values())

    @property
    def total_state_bytes(self) -> float:
        return sum(self.channel_state_sizes.values())


class ScalingPolicy:
    """Base class: maps an observation to a desired width (or None)."""

    def decide(self, observation: RegionObservation) -> Optional[int]:
        raise NotImplementedError

    def _clamp(self, width: int, lo: int, hi: int) -> int:
        return max(lo, min(hi, width))


class QueueSizeScalingPolicy(ScalingPolicy):
    """Watermark policy on per-channel backlog.

    Scale out by ``step`` when any channel's backlog exceeds
    ``high_watermark``; scale in by ``step`` when *every* channel's backlog
    is at or below ``low_watermark``.  The dead band between the two
    watermarks prevents oscillation.
    """

    def __init__(
        self,
        high_watermark: float = 10.0,
        low_watermark: float = 1.0,
        min_width: int = 1,
        max_width: int = 8,
        step: int = 1,
    ) -> None:
        if low_watermark > high_watermark:
            raise ValueError("low_watermark must not exceed high_watermark")
        if step < 1:
            raise ValueError("step must be >= 1")
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.min_width = min_width
        self.max_width = max_width
        self.step = step

    def decide(self, observation: RegionObservation) -> Optional[int]:
        width = observation.width
        if observation.max_backlog > self.high_watermark:
            target = self._clamp(width + self.step, self.min_width, self.max_width)
        elif observation.channel_backlogs and observation.max_backlog <= self.low_watermark:
            target = self._clamp(width - self.step, self.min_width, self.max_width)
        else:
            return None
        return target if target != width else None


class ThroughputScalingPolicy(ScalingPolicy):
    """Capacity policy: width = ceil(observed throughput / per-channel target).

    ``headroom`` inflates the demand estimate so the region is sized with
    spare capacity (1.2 = 20% slack).
    """

    def __init__(
        self,
        target_per_channel: float,
        min_width: int = 1,
        max_width: int = 8,
        headroom: float = 1.0,
    ) -> None:
        if target_per_channel <= 0:
            raise ValueError("target_per_channel must be positive")
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1.0")
        self.target_per_channel = target_per_channel
        self.min_width = min_width
        self.max_width = max_width
        self.headroom = headroom

    def decide(self, observation: RegionObservation) -> Optional[int]:
        if observation.throughput is None:
            return None
        demand = observation.throughput * self.headroom
        target = self._clamp(
            max(1, math.ceil(demand / self.target_per_channel)),
            self.min_width,
            self.max_width,
        )
        return target if target != observation.width else None


class StateAwareScalingPolicy(ScalingPolicy):
    """Wraps another policy and weighs the migration cost of its decision.

    A width change of a partitioned region moves roughly
    ``|Δwidth| / max(width, width')`` of the region's keyed state (every
    key whose ``hash(key) % width`` owner changes).  When that estimate
    exceeds ``max_migration_bytes`` the inner decision is vetoed — unless
    the region is congested beyond ``force_backlog``, at which point
    scaling out is worth any migration pause.  This is the "state-aware
    policy" building block the ORCA inspection API feeds via
    ``RegionObservation.channel_state_sizes``.
    """

    def __init__(
        self,
        inner: ScalingPolicy,
        max_migration_bytes: float,
        force_backlog: Optional[float] = None,
    ) -> None:
        if max_migration_bytes <= 0:
            raise ValueError("max_migration_bytes must be positive")
        self.inner = inner
        self.max_migration_bytes = max_migration_bytes
        self.force_backlog = force_backlog

    def estimated_migration_bytes(
        self, observation: RegionObservation, new_width: int
    ) -> float:
        old_width = max(observation.width, 1)
        moved_fraction = abs(new_width - old_width) / max(new_width, old_width)
        return observation.total_state_bytes * moved_fraction

    def decide(self, observation: RegionObservation) -> Optional[int]:
        target = self.inner.decide(observation)
        if target is None:
            return None
        if (
            self.force_backlog is not None
            and observation.max_backlog > self.force_backlog
            and target > observation.width
        ):
            return target
        if self.estimated_migration_bytes(observation, target) > self.max_migration_bytes:
            return None
        return target


class HealthAwareScalingPolicy(ScalingPolicy):
    """Wraps another policy and reacts early on health-plane pressure.

    Backlog-driven policies see congestion only after it has piled up in
    operator queues *and* survived an SRM metric-push round trip.  The
    health plane's lag watermark is live: it rolls per-link in-flight
    depth, open-batch residency, and retry pressure into the sim-time a
    tuple enqueued now should expect to wait (see
    :class:`repro.obs.health.HealthMonitor`).  This policy scales out as
    soon as the observed region's watermark burns past ``lag_objective``
    — typically several metric pushes before the inner policy's backlog
    watermark trips — and otherwise delegates, so scale-in and steady
    state keep the inner policy's behavior (including a
    :class:`StateAwareScalingPolicy` migration veto).

    ``monitor`` is any object with ``region_lag(region) -> float``; pass
    ``system.obs.health``.  A cooldown (sim-seconds of watermark calm
    required between health-driven scale-outs, tracked via the
    monitor's kernel clock when available) stops one sustained spike
    from cascading straight to ``max_width``.
    """

    def __init__(
        self,
        inner: ScalingPolicy,
        monitor,
        lag_objective: float,
        step: int = 1,
        min_width: int = 1,
        max_width: int = 8,
        cooldown: float = 2.0,
    ) -> None:
        if lag_objective <= 0:
            raise ValueError("lag_objective must be positive")
        if step < 1:
            raise ValueError("step must be >= 1")
        self.inner = inner
        self.monitor = monitor
        self.lag_objective = lag_objective
        self.step = step
        self.min_width = min_width
        self.max_width = max_width
        self.cooldown = cooldown
        self._last_reaction: Optional[float] = None
        #: sim-times of health-driven scale-outs (first entry = the
        #: time-to-first-reaction benchmarks measure)
        self.reactions: List[float] = []

    def _now(self) -> float:
        kernel = getattr(self.monitor, "kernel", None)
        return kernel.now if kernel is not None else 0.0

    def decide(self, observation: RegionObservation) -> Optional[int]:
        lag = self.monitor.region_lag(observation.region)
        if lag > self.lag_objective and observation.width < self.max_width:
            now = self._now()
            if (
                self._last_reaction is None
                or now - self._last_reaction >= self.cooldown
            ):
                self._last_reaction = now
                self.reactions.append(now)
                return self._clamp(
                    observation.width + self.step,
                    self.min_width,
                    self.max_width,
                )
        return self.inner.decide(observation)
