"""The elastic re-parallelization protocol.

Changing the channel width of a running parallel region must not lose,
duplicate, or reorder tuples.  The controller achieves this with the
epoch-aligned barrier protocol of Fries-style live reconfiguration
(Wang et al., PAPERS.md), mapped onto this repo's epoch machinery
(:class:`repro.orca.epochs.MetricEpochCounter` serves as the
reconfiguration epoch clock):

1. **Quiesce** — the region's splitter is told to stop forwarding; new
   arrivals are buffered at the barrier.  Everything the splitter already
   forwarded belongs to the closing epoch.
2. **Drain** — the controller polls until the closing epoch has fully
   flowed out of the region: no tuple in flight on the transport toward
   any channel operator or the merger, no tuple in any channel operator's
   internal buffer, no tuple waiting in the merger's reorder buffer.
3. **Rewire** — with the region provably empty, channels are added or
   removed: logical graph surgery (:func:`repro.spl.parallel.resize_region`),
   compiled-plan surgery (PE specs, placement, inter/intra edges), live
   runtime changes (SAM places + starts new channel PEs / stops removed
   ones), and route rebuilds on the surviving PEs.
4. **Resume** — the splitter installs the new width, the epoch counter
   advances, and the tuples buffered at the barrier flush through the new
   routing as the first tuples of the new epoch.

Because tuples are only ever *held* (at the splitter) or *delivered*
(downstream) — never discarded — a rescale is tuple-loss-free by
construction; the sequence stamps of an ordered region additionally keep
global order across the barrier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.errors import ElasticError
from repro.orca.epochs import MetricEpochCounter
from repro.sim.kernel import Kernel
from repro.spl.compiler import CompiledApplication, PESpec
from repro.spl.graph import OperatorSpec
from repro.spl.parallel import ParallelRegionPlan, resize_region
from repro.runtime.job import Job, JobState
from repro.runtime.pe import PEState
from repro.runtime.transport import Transport

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.sam import SAM


class RescaleState(enum.Enum):
    DRAINING = "draining"
    REWIRING = "rewiring"
    COMPLETED = "completed"
    FAILED = "failed"
    NOOP = "noop"


@dataclass
class RescaleOperation:
    """One set_channel_width() request and its progress through the protocol."""

    job_id: str
    region: str
    old_width: int
    new_width: int
    state: RescaleState
    started_at: float
    completed_at: Optional[float] = None
    #: reconfiguration epoch assigned when the region resumed
    epoch: int = 0
    #: drain-poll rounds before the barrier was clean
    drain_polls: int = 0
    error: Optional[str] = None
    #: PE ids created / removed by the rewire step
    added_pe_ids: List[str] = field(default_factory=list)
    removed_pe_ids: List[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        if self.completed_at is None:
            return 0.0
        return self.completed_at - self.started_at


class ElasticController:
    """Executes live channel-width changes for parallel regions."""

    def __init__(
        self,
        sam: "SAM",
        transport: Transport,
        kernel: Kernel,
        drain_poll_interval: float = 0.05,
        drain_timeout: float = 60.0,
    ) -> None:
        self.sam = sam
        self.transport = transport
        self.kernel = kernel
        self.drain_poll_interval = drain_poll_interval
        self.drain_timeout = drain_timeout
        #: reconfiguration epoch clock (shared across all regions, like the
        #: ORCA service's metric epoch: one monotone logical clock)
        self.epochs = MetricEpochCounter()
        self.history: List[RescaleOperation] = []
        self._active: Dict[Tuple[str, str], RescaleOperation] = {}

    # -- public API --------------------------------------------------------------

    def rescale_in_progress(self, job_id: str, region: str) -> bool:
        return (job_id, region) in self._active

    def set_channel_width(
        self,
        job: Union[Job, str],
        region: str,
        new_width: int,
        on_complete: Optional[Callable[[RescaleOperation], None]] = None,
    ) -> RescaleOperation:
        """Start the rescale protocol; returns the tracking operation.

        The protocol itself runs asynchronously on the simulation kernel
        (quiesce now, drain over the following instants, rewire + resume
        when the barrier is clean); ``on_complete`` fires when the region
        has resumed (state COMPLETED) or the protocol gave up (FAILED).
        """
        if isinstance(job, str):
            job = self.sam.get_job(job)
        plan = job.compiled.parallel_regions.get(region)
        if plan is None:
            raise ElasticError(
                f"job {job.job_id}: no parallel region {region!r} "
                f"(has {sorted(job.compiled.parallel_regions)})"
            )
        if new_width < 1 or new_width > plan.max_width:
            raise ElasticError(
                f"region {region!r}: width {new_width} outside [1, {plan.max_width}]"
            )
        if job.state is not JobState.RUNNING:
            raise ElasticError(f"job {job.job_id} is not running")
        key = (job.job_id, region)
        if key in self._active:
            raise ElasticError(
                f"region {region!r} of job {job.job_id} is already rescaling"
            )
        op = RescaleOperation(
            job_id=job.job_id,
            region=region,
            old_width=plan.width,
            new_width=new_width,
            state=RescaleState.NOOP,
            started_at=self.kernel.now,
        )
        if new_width == plan.width:
            op.completed_at = self.kernel.now
            self.history.append(op)
            return op
        if new_width < plan.width:
            self._check_removable(job, plan, new_width)
        splitter_pe = job.pe_of_operator(plan.splitter)
        if splitter_pe.state is not PEState.RUNNING:
            raise ElasticError(
                f"region {region!r}: splitter PE {splitter_pe.pe_id} is not running"
            )
        self._active[key] = op
        op.state = RescaleState.DRAINING
        splitter_pe.send_control(plan.splitter, "quiesce", {})
        self.kernel.schedule(
            self.drain_poll_interval,
            self._poll_drain,
            job,
            plan,
            op,
            on_complete,
            label=f"elastic-drain-{job.job_id}-{region}",
        )
        return op

    # -- drain barrier -----------------------------------------------------------

    def _check_removable(self, job: Job, plan: ParallelRegionPlan, new_width: int) -> None:
        """Scale-in precondition: doomed channels must own their PEs alone.

        With the default ``manual`` compile strategy this always holds (the
        per-channel partition tags isolate channels); a ``fuse_all`` or
        ``balanced`` compilation may have packed channel operators together
        with foreign operators, in which case removing the channel would
        require evicting live operators from a shared process — refused.
        """
        doomed: Set[str] = {
            name for ops in plan.channel_ops[new_width:] for name in ops
        }
        for name in doomed:
            pe = job.pe_of_operator(name)
            foreign = [o for o in pe.spec.operators if o not in doomed]
            if foreign:
                raise ElasticError(
                    f"cannot remove channel operator {name!r}: its PE also "
                    f"hosts {foreign} (recompile with strategy='manual')"
                )

    def _region_backlog(self, job: Job, plan: ParallelRegionPlan) -> int:
        """Tuples still inside the region: in flight, buffered, or reordering."""
        backlog = 0
        names = plan.all_channel_operators() + [plan.merger]
        for name in names:
            pe = job.pe_of_operator(name)
            if pe.state is not PEState.RUNNING:
                continue  # a crashed channel cannot hold tuples
            operator = pe.operators.get(name)
            n_inputs = operator.n_inputs if operator is not None else 1
            for port in range(n_inputs):
                backlog += self.transport.queue_size(pe.pe_id, name, port)
            if operator is not None:
                backlog += operator.pending_items()
        return backlog

    def _poll_drain(
        self,
        job: Job,
        plan: ParallelRegionPlan,
        op: RescaleOperation,
        on_complete: Optional[Callable[[RescaleOperation], None]],
    ) -> None:
        if job.state is not JobState.RUNNING:
            self._fail(job, plan, op, on_complete, "job left RUNNING during drain")
            return
        op.drain_polls += 1
        if self._region_backlog(job, plan) == 0:
            self._rewire_and_resume(job, plan, op, on_complete)
            return
        if self.kernel.now - op.started_at > self.drain_timeout:
            self._fail(
                job,
                plan,
                op,
                on_complete,
                f"drain did not complete within {self.drain_timeout}s",
            )
            return
        self.kernel.schedule(
            self.drain_poll_interval,
            self._poll_drain,
            job,
            plan,
            op,
            on_complete,
            label=f"elastic-drain-{job.job_id}-{plan.name}",
        )

    def _fail(
        self,
        job: Job,
        plan: ParallelRegionPlan,
        op: RescaleOperation,
        on_complete: Optional[Callable[[RescaleOperation], None]],
        reason: str,
    ) -> None:
        op.state = RescaleState.FAILED
        op.error = reason
        op.completed_at = self.kernel.now
        self._active.pop((op.job_id, op.region), None)
        self.history.append(op)
        # Resume the splitter at the old width so the region keeps flowing.
        if job.state is JobState.RUNNING:
            splitter_pe = job.pe_of_operator(plan.splitter)
            if splitter_pe.state is PEState.RUNNING:
                splitter_pe.send_control(plan.splitter, "resume", {})
        if on_complete is not None:
            on_complete(op)

    # -- rewire ------------------------------------------------------------------

    def _rewire_and_resume(
        self,
        job: Job,
        plan: ParallelRegionPlan,
        op: RescaleOperation,
        on_complete: Optional[Callable[[RescaleOperation], None]],
    ) -> None:
        op.state = RescaleState.REWIRING
        compiled = job.compiled
        graph = compiled.application.graph
        try:
            added_specs, removed_names = resize_region(graph, plan, op.new_width)

            # Physical plan surgery, then live PE set changes.
            removed_pe_ids = self._shrink_compiled(job, compiled, removed_names)
            new_pe_specs = self._extend_compiled(compiled, added_specs)
            self._recompute_edge_split(compiled)
            if removed_pe_ids:
                self.sam.remove_pes(job.job_id, removed_pe_ids)
                op.removed_pe_ids = removed_pe_ids
            if new_pe_specs:
                try:
                    added_pes = self.sam.add_pes(job.job_id, new_pe_specs)
                except Exception:
                    # No runtimes were created: undo the logical and
                    # physical plan surgery so the region is exactly as it
                    # was, then fail the operation (the splitter resumes at
                    # the old width and the job keeps flowing).
                    self._rollback_scale_out(job, compiled, plan, op.old_width)
                    raise
                op.added_pe_ids = [pe.pe_id for pe in added_pes]
            for pe in job.pes:
                if pe.state is PEState.RUNNING:
                    pe.rebuild_routes()

            # Live operator updates: merger first (its ports must exist
            # before the splitter routes to them), then the splitter resumes
            # and the barrier buffer flushes into the new epoch.
            merger_pe = job.pe_of_operator(plan.merger)
            merger_pe.send_control(plan.merger, "setWidth", {"width": op.new_width})
            op.epoch = self.epochs.next()
            splitter_pe = job.pe_of_operator(plan.splitter)
            splitter_pe.send_control(
                plan.splitter, "resume", {"width": op.new_width, "epoch": op.epoch}
            )
        except Exception as exc:
            # Never let a rewire error escape into the kernel: the splitter
            # must be resumed or the region would buffer forever.
            self._fail(job, plan, op, on_complete, f"rewire failed: {exc}")
            return

        op.state = RescaleState.COMPLETED
        op.completed_at = self.kernel.now
        self._active.pop((op.job_id, op.region), None)
        self.history.append(op)
        if on_complete is not None:
            on_complete(op)

    def _rollback_scale_out(
        self,
        job: Job,
        compiled: CompiledApplication,
        plan: ParallelRegionPlan,
        old_width: int,
    ) -> None:
        """Undo a scale-out whose new channels could not be placed."""
        graph = compiled.application.graph
        _, removed_names = resize_region(graph, plan, old_width)
        self._shrink_compiled(job, compiled, removed_names)
        self._recompute_edge_split(compiled)

    def _shrink_compiled(
        self, job: Job, compiled: CompiledApplication, removed_names: List[str]
    ) -> List[str]:
        """Drop removed operators from the physical plan; return doomed PE ids."""
        if not removed_names:
            return []
        doomed = set(removed_names)
        removed_indices = {compiled.placement[name] for name in doomed}
        removed_pe_ids = [
            pe.pe_id for pe in job.pes if pe.index in removed_indices
        ]
        compiled.pes = [pe for pe in compiled.pes if pe.index not in removed_indices]
        for name in doomed:
            del compiled.placement[name]
        return removed_pe_ids

    def _extend_compiled(
        self, compiled: CompiledApplication, added_specs: List[OperatorSpec]
    ) -> List[PESpec]:
        """Build PE specs for newly added channel operators.

        Mirrors the compiler's ``manual`` grouping: operators sharing a
        partition tag fuse into one PE; untagged operators get singleton
        PEs.  Channel tags are suffixed per channel, so fusion never
        crosses channels.
        """
        if not added_specs:
            return []
        by_tag: Dict[str, List[OperatorSpec]] = {}
        groups: List[List[OperatorSpec]] = []
        for spec in added_specs:
            if spec.partition is not None:
                group = by_tag.get(spec.partition)
                if group is None:
                    group = []
                    by_tag[spec.partition] = group
                    groups.append(group)
                group.append(spec)
            else:
                groups.append([spec])
        next_index = max((pe.index for pe in compiled.pes), default=0) + 1
        new_pe_specs: List[PESpec] = []
        for group in groups:
            pool = next(
                (s.host_pool for s in group if s.host_pool is not None), None
            )
            pe_spec = PESpec(
                index=next_index,
                operators=[s.full_name for s in group],
                host_pool=pool,
                host_exlocations={
                    s.host_exlocation for s in group if s.host_exlocation is not None
                },
                host_colocations={
                    s.host_colocation for s in group if s.host_colocation is not None
                },
            )
            next_index += 1
            compiled.pes.append(pe_spec)
            for spec in group:
                compiled.placement[spec.full_name] = pe_spec.index
            new_pe_specs.append(pe_spec)
        return new_pe_specs

    @staticmethod
    def _recompute_edge_split(compiled: CompiledApplication) -> None:
        inter, intra = [], []
        for edge in compiled.application.graph.edges:
            if (
                compiled.placement[edge.src.full_name]
                == compiled.placement[edge.dst.full_name]
            ):
                intra.append(edge)
            else:
                inter.append(edge)
        compiled.inter_pe_edges = inter
        compiled.intra_pe_edges = intra
