"""The elastic re-parallelization protocol.

Changing the channel width of a running parallel region must not lose,
duplicate, or reorder tuples.  The controller achieves this with the
epoch-aligned barrier protocol of Fries-style live reconfiguration
(Wang et al., PAPERS.md), mapped onto this repo's epoch machinery
(:class:`repro.orca.epochs.MetricEpochCounter` serves as the
reconfiguration epoch clock):

1. **Quiesce** — the region's splitter is told to stop forwarding; new
   arrivals are buffered at the barrier.  Everything the splitter already
   forwarded belongs to the closing epoch.
2. **Drain** — the controller polls until the closing epoch has fully
   flowed out of the region: no tuple in flight on the transport toward
   any channel operator or the merger, no tuple in any channel operator's
   internal buffer, no tuple waiting in the merger's reorder buffer.
3. **Migrate** — for a partitioned region (``partition_by`` set,
   ``migrate_state`` not disabled), keyed operator state moves with the
   routing change: every channel operator's keyed states are scanned for
   entries whose ``hash(key) % width'`` owner differs from their current
   channel (on a shrink, the doomed channels contribute *all* their
   entries), the moving partitions are extracted while the region is
   provably empty, and — after the rewire — installed on their new owner
   channels before the splitter resumes.  If the rewire fails, the
   extracted partitions are reinstalled on their source channels, so a
   rolled-back rescale loses no state either.
4. **Rewire** — with the region provably empty, channels are added or
   removed: logical graph surgery (:func:`repro.spl.parallel.resize_region`),
   compiled-plan surgery (PE specs, placement, inter/intra edges), live
   runtime changes (SAM places + starts new channel PEs / stops removed
   ones), and route rebuilds on the surviving PEs.
5. **Resume** — the splitter installs the new width, the epoch counter
   advances, and the tuples buffered at the barrier flush through the new
   routing as the first tuples of the new epoch.

The controller is also the reaction point for crashed channels outside
any rescale: SAM notifies it of PE failures and completed restarts, and
it masks / unmasks the affected channels on the region's splitter so
tuples are rerouted around the dead PE (``channel_rerouted`` records are
pushed to registered listeners — the ORCA service turns them into
events).  When a checkpoint store is wired in, the detour channels are
*seeded* with the dead channel's last committed checkpoint at mask time
(rerouted keys continue from the checkpoint instead of from scratch).
At unmask the detour-accrued keyed state is *reclaimed* — extracted from
the detour channels and installed back on the restarted owner
(``state_reclaimed`` records); this replaces the old unmask-time purge
for every partitioned region with migration enabled, store or not (the
detour entries are the freshest continuation of those keys either way).
Scale-in gains a third state phase: a region's user-defined
``global_merge`` hook folds a doomed channel's global state into its
survivor instead of dropping it.  All three phases ride the same
:class:`~repro.spl.state.KeyedState` extraction/install primitives and
the same epoch clock as checkpoint commits (see :mod:`repro.checkpoint`).

Because tuples are only ever *held* (at the splitter) or *delivered*
(downstream) — never discarded — a rescale is tuple-loss-free by
construction; the sequence stamps of an ordered region additionally keep
global order across the barrier.
"""

from __future__ import annotations

import copy
import enum
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.checkpoint.store import CheckpointStore
from repro.errors import ElasticError
from repro.orca.epochs import MetricEpochCounter
from repro.sim.kernel import Kernel
from repro.spl.compiler import CompiledApplication, PESpec
from repro.spl.graph import OperatorSpec
from repro.spl.library import detour_channel_of, stable_channel_of
from repro.spl.parallel import ParallelRegionPlan, resize_region
from repro.spl.state import estimate_value_size
from repro.runtime.job import Job, JobState
from repro.runtime.pe import PERuntime, PEState
from repro.runtime.transport import Transport

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.sam import SAM


class RescaleState(enum.Enum):
    """Lifecycle phase of one rescale operation."""

    DRAINING = "draining"
    MIGRATING = "migrating"
    REWIRING = "rewiring"
    COMPLETED = "completed"
    FAILED = "failed"
    NOOP = "noop"


@dataclass
class StateMigration:
    """What the migration phase of one rescale moved (or rolled back)."""

    region: str
    old_width: int
    new_width: int
    keys_moved: int = 0
    bytes_moved: int = 0
    #: (src channel, dst channel) -> keyed entries moved along that edge
    moves: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: channels whose PE was down at extraction time (their state was
    #: already lost to the crash; nothing could be migrated off them)
    skipped_channels: List[int] = field(default_factory=list)
    #: keyed entries whose *new* owner channel was down at install time —
    #: dropped with the crash semantics of the dead channel (it restarts
    #: empty anyway), not treated as a rescale failure
    keys_lost: int = 0
    #: keyed entries whose new owner was down but *masked with a live
    #: detour* at install time — installed on each key's detour channel
    #: (where the splitter is already routing that key's traffic) so the
    #: continuation survives; the unmask reclaim brings them home
    keys_detoured: int = 0
    #: non-keyed (global) states dropped with removed channels — global
    #: state cannot be re-partitioned, mirroring the paper's no-checkpoint
    #: stance for anything that is not keyed (and not merged)
    dropped_global_states: int = 0
    #: global states folded into a survivor via the region's user-defined
    #: ``global_merge`` hook instead of being dropped
    global_states_merged: int = 0
    #: True when a failed rewire reinstalled the partitions at the source
    rolled_back: bool = False
    #: wall-clock cost of extract + install (the simulated protocol pays
    #: its latency at the drain barrier; this measures the real state
    #: shuffling work)
    wall_ms: float = 0.0


#: One extracted partition: (chain position, src channel, dst channel,
#: keyed-state name, entries).
_Move = Tuple[int, int, int, str, Dict[Any, Any]]

#: One captured global state: (chain position, src channel, state name,
#: detached value copy).
_GlobalMove = Tuple[int, int, str, Any]


@dataclass(frozen=True)
class BarrierEvent:
    """One timestamped phase transition of the rescale protocol.

    The controller records these for every rescale — ``quiesce`` (the
    splitter stopped forwarding), ``drain_clean`` (the region proved
    empty), ``migrate`` (keyed extraction began), ``rewire`` (graph/PE
    surgery began), ``resume`` (the splitter resumed at the new width,
    ``epoch`` assigned), and ``failed`` — and pushes them to registered
    barrier listeners.  They are the instrumentation tap the chaos
    fuzzer (:mod:`repro.chaos.fuzz`) mines for adversarial step times:
    the nastiest fault interleavings land *exactly at* these instants.
    """

    job_id: str
    region: str
    phase: str
    time: float
    epoch: int = 0


@dataclass
class ChannelReroute:
    """A splitter mask/unmask issued because a channel's PE crashed or
    finished restarting."""

    job_id: str
    region: str
    channel: int
    masked: bool  #: True: channel taken out of the ring; False: restored
    reason: str
    width: int
    pe_id: str
    time: float
    #: on unmask: detour keyed entries that could not be reclaimed (their
    #: owner operator was not live) and were dropped instead
    purged_keys: int = 0
    #: on unmask: detour keyed entries returned to the restarted channel
    reclaimed_keys: int = 0
    #: on mask: keyed entries installed on the detour channels from the
    #: dead channel's last committed checkpoint epoch
    seeded_keys: int = 0


@dataclass
class StateReclaim:
    """Keyed state returned to a channel when it rejoined the ring.

    Produced at unmask time for partitioned regions with migration
    enabled: every detour channel's entries whose owner is the unmasked
    channel are extracted and installed back on the (just restarted)
    owner.  ``epoch`` is drawn from the same clock as checkpoint commits
    and rescale epochs, so reclaims order totally with both.
    """

    job_id: str
    region: str
    channels: Tuple[int, ...]
    pe_id: str
    keys_reclaimed: int
    keys_purged: int
    bytes_reclaimed: int
    epoch: int
    time: float


@dataclass
class RescaleOperation:
    """One set_channel_width() request and its progress through the protocol."""

    job_id: str
    region: str
    old_width: int
    new_width: int
    state: RescaleState
    started_at: float
    completed_at: Optional[float] = None
    #: reconfiguration epoch assigned when the region resumed
    epoch: int = 0
    #: drain-poll rounds before the barrier was clean
    drain_polls: int = 0
    error: Optional[str] = None
    #: PE ids created / removed by the rewire step
    added_pe_ids: List[str] = field(default_factory=list)
    removed_pe_ids: List[str] = field(default_factory=list)
    #: keyed-state migration performed by this rescale (None: region not
    #: partitioned, migration disabled, or no-op rescale)
    migration: Optional[StateMigration] = None

    @property
    def duration(self) -> float:
        """Seconds from quiesce to resume (0.0 while still in flight)."""
        if self.completed_at is None:
            return 0.0
        return self.completed_at - self.started_at


class ElasticController:
    """Executes live channel-width changes for parallel regions."""

    def __init__(
        self,
        sam: "SAM",
        transport: Transport,
        kernel: Kernel,
        drain_poll_interval: float = 0.05,
        drain_timeout: float = 60.0,
        epochs: Optional[MetricEpochCounter] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
    ) -> None:
        """Create the controller.

        Args:
            sam: Job/PE registry used to reach runtimes and place channels.
            transport: Tuple transport, polled for in-flight backlog.
            kernel: Simulation kernel the protocol is scheduled on.
            drain_poll_interval: Seconds between drain-barrier polls.
            drain_timeout: Give-up horizon for the drain barrier.
            epochs: Reconfiguration epoch clock; pass the checkpoint
                store's clock to totally order rescales, reclaims, and
                checkpoint commits (one transactional state-epoch
                mechanism).  A private counter is used when omitted.
            checkpoint_store: When provided, masked channels' detours are
                seeded from the dead channel's last committed epoch.
        """
        self.sam = sam
        self.transport = transport
        self.kernel = kernel
        self.drain_poll_interval = drain_poll_interval
        self.drain_timeout = drain_timeout
        #: reconfiguration epoch clock (shared across all regions — and,
        #: when wired by SystemS, with checkpoint commits: one monotone
        #: logical clock for every state-bearing transition)
        self.epochs = epochs if epochs is not None else MetricEpochCounter()
        #: committed checkpoint epochs, consulted for detour seeding
        self.checkpoint_store = checkpoint_store
        self.history: List[RescaleOperation] = []
        self._active: Dict[Tuple[str, str], RescaleOperation] = {}
        #: callbacks invoked for every finished rescale (COMPLETED or
        #: FAILED), regardless of who initiated it — the ORCA service
        #: registers here so its stream graph tracks rescales driven
        #: outside the service (autoscalers, chaos campaigns, tests)
        self.rescale_listeners: List[Callable[[RescaleOperation], None]] = []
        #: channel mask/unmask records (crashed-channel rerouting)
        self.reroutes: List[ChannelReroute] = []
        #: callbacks invoked for every ChannelReroute (the ORCA service
        #: registers here to emit ``channel_rerouted`` events)
        self.reroute_listeners: List[Callable[[ChannelReroute], None]] = []
        #: unmask-time reclaim records, newest last
        self.reclaims: List[StateReclaim] = []
        #: timestamped rescale-phase transitions (quiesce / drain_clean /
        #: migrate / rewire / resume / failed), newest last — the barrier
        #: tap the chaos fuzzer targets mutations at
        self.barrier_events: List[BarrierEvent] = []
        #: callbacks invoked with every BarrierEvent as it is recorded
        self.barrier_listeners: List[Callable[[BarrierEvent], None]] = []
        #: callbacks invoked for every StateReclaim (the ORCA service
        #: registers here to emit ``state_reclaimed`` events)
        self.reclaim_listeners: List[Callable[[StateReclaim], None]] = []
        #: (job_id, region) -> channels this controller actually masked;
        #: a PE restart only unmasks (and reports) channels found here, so
        #: a graceful stop_pe + restart_pe never emits phantom reroutes
        self._masked_channels: Dict[Tuple[str, str], Set[int]] = {}

    def _mark_barrier(
        self, job_id: str, region: str, phase: str, epoch: int = 0
    ) -> None:
        """Record one rescale-phase transition and notify barrier listeners."""
        event = BarrierEvent(
            job_id=job_id,
            region=region,
            phase=phase,
            time=self.kernel.now,
            epoch=epoch,
        )
        self.barrier_events.append(event)
        for listener in list(self.barrier_listeners):
            listener(event)

    # -- public API --------------------------------------------------------------

    def rescale_in_progress(self, job_id: str, region: str) -> bool:
        """Whether a rescale of ``region`` of ``job_id`` is currently active.

        Args:
            job_id: The job owning the region.
            region: The parallel region name.

        Returns:
            True while a set_channel_width() protocol run is in flight.
        """
        return (job_id, region) in self._active

    def active_operations(self) -> List[RescaleOperation]:
        """The rescale operations currently in flight, any job or region.

        Returns:
            In-flight operations sorted by (job id, region) — empty when
            every started rescale has completed or failed (what the
            fuzzer's no-stuck-rescale oracle asserts post-drain).
        """
        return [self._active[key] for key in sorted(self._active)]

    def set_channel_width(
        self,
        job: Union[Job, str],
        region: str,
        new_width: int,
        on_complete: Optional[Callable[[RescaleOperation], None]] = None,
    ) -> RescaleOperation:
        """Start the rescale protocol for one region.

        The protocol itself runs asynchronously on the simulation kernel
        (quiesce now, drain over the following instants, rewire + resume
        when the barrier is clean).

        Args:
            job: The job (or job id) owning the region.
            region: Parallel region name.
            new_width: Desired channel count (within ``[1, max_width]``).
            on_complete: Fires when the region has resumed (state
                COMPLETED) or the protocol gave up (FAILED).

        Returns:
            The tracking :class:`RescaleOperation` (already appended to
            ``history`` for no-op requests).
        """
        if isinstance(job, str):
            job = self.sam.get_job(job)
        plan = job.compiled.parallel_regions.get(region)
        if plan is None:
            raise ElasticError(
                f"job {job.job_id}: no parallel region {region!r} "
                f"(has {sorted(job.compiled.parallel_regions)})"
            )
        if new_width < 1 or new_width > plan.max_width:
            raise ElasticError(
                f"region {region!r}: width {new_width} outside [1, {plan.max_width}]"
            )
        if job.state is not JobState.RUNNING:
            raise ElasticError(f"job {job.job_id} is not running")
        key = (job.job_id, region)
        if key in self._active:
            raise ElasticError(
                f"region {region!r} of job {job.job_id} is already rescaling"
            )
        op = RescaleOperation(
            job_id=job.job_id,
            region=region,
            old_width=plan.width,
            new_width=new_width,
            state=RescaleState.NOOP,
            started_at=self.kernel.now,
        )
        if new_width == plan.width:
            op.completed_at = self.kernel.now
            self.history.append(op)
            return op
        if new_width < plan.width:
            self._check_removable(job, plan, new_width)
        splitter_pe = job.pe_of_operator(plan.splitter)
        if splitter_pe.state is not PEState.RUNNING:
            raise ElasticError(
                f"region {region!r}: splitter PE {splitter_pe.pe_id} is not running"
            )
        self._active[key] = op
        op.state = RescaleState.DRAINING
        splitter_pe.send_control(plan.splitter, "quiesce", {})
        # transport batching: tuples coalescing in open batches must be
        # committed to the wire before the drain barrier starts counting,
        # or the region could be declared empty while tuples sit buffered
        self.transport.flush_open_batches()
        # reliable delivery: retried units waiting out a backoff interval
        # are in flight too — expedite them so the barrier sees them move
        self.transport.expedite_pending()
        self._mark_barrier(job.job_id, region, "quiesce")
        self.kernel.schedule(
            self.drain_poll_interval,
            self._poll_drain,
            job,
            plan,
            op,
            on_complete,
            label=f"elastic-drain-{job.job_id}-{region}",
        )
        return op

    # -- crashed-channel rerouting ------------------------------------------------

    def handle_pe_failure(self, pe: PERuntime, reason: str) -> None:
        """SAM observer: a PE crashed — mask its parallel-region channels.

        The splitter takes the dead channels out of its hash ring /
        round-robin rotation, so traffic flows around the crash instead of
        into it, until ``restart_pe`` completes and
        :meth:`handle_pe_restarted` unmasks them.  With a checkpoint
        store wired in, the detour channels are seeded from the dead
        channel's last committed epoch.

        Args:
            pe: The crashed PE.
            reason: Crash reason as reported by the host controller.
        """
        self._remask_channels_of(pe, masked=True, reason=reason)

    def handle_pe_restarted(self, pe: PERuntime) -> None:
        """SAM observer: a PE restart completed — unmask its channels.

        Detour-accrued keyed state is reclaimed onto the restarted
        channels before they rejoin the ring (``state_reclaimed``).

        Args:
            pe: The restarted PE.
        """
        self._remask_channels_of(pe, masked=False, reason="restart_pe")

    def _remask_channels_of(self, pe: PERuntime, masked: bool, reason: str) -> None:
        job = pe.job
        if job.state is not JobState.RUNNING:
            return
        for plan in job.compiled.parallel_regions.values():
            tracked = self._masked_channels.setdefault(
                (job.job_id, plan.name), set()
            )
            channels = sorted(
                {
                    channel
                    for channel in (
                        plan.channel_of(op_name) for op_name in pe.spec.operators
                    )
                    if channel is not None
                }
            )
            if not masked:
                # only channels this controller masked rejoin (a graceful
                # stop_pe + restart_pe must not emit phantom unmasks)
                channels = [c for c in channels if c in tracked]
            else:
                channels = [c for c in channels if c not in tracked]
            if not channels:
                continue
            try:
                splitter_pe = job.pe_of_operator(plan.splitter)
            except Exception:
                continue
            if splitter_pe.state is not PEState.RUNNING:
                continue
            purged = reclaimed = seeded = 0
            if not masked:
                # Return the detour-accrued keyed state to the restarted
                # owner before traffic routes home again: the detour
                # entries are the freshest continuation of those keys
                # (possibly seeded from the owner's checkpoint at mask
                # time), so they supersede whatever rehydration restored.
                reclaimed, purged, bytes_reclaimed = self._reclaim_detour_state(
                    job, plan, set(channels)
                )
                if reclaimed or purged:
                    reclaim = StateReclaim(
                        job_id=job.job_id,
                        region=plan.name,
                        channels=tuple(channels),
                        pe_id=pe.pe_id,
                        keys_reclaimed=reclaimed,
                        keys_purged=purged,
                        bytes_reclaimed=bytes_reclaimed,
                        epoch=self.epochs.next(),
                        time=self.kernel.now,
                    )
                    self.reclaims.append(reclaim)
                    for listener in list(self.reclaim_listeners):
                        listener(reclaim)
            command = "maskChannel" if masked else "unmaskChannel"
            for channel in channels:
                splitter_pe.send_control(plan.splitter, command, {"channel": channel})
                if masked:
                    tracked.add(channel)
                else:
                    tracked.discard(channel)
            if not masked and tracked:
                # Channels of this region are still masked, and the
                # rejoining channel is now their detour — but their
                # mask-time seeding may have found no live channel to
                # install on (every channel was down at once).  Seed the
                # still-dead channels' committed state onto the now-live
                # detours before any traffic flows, installing only keys
                # the detour does not already hold; without this, the
                # eventual unmask reclaim overwrites rehydrated state
                # with base-less detour accruals (state loss found by
                # the chaos fuzzer's conservation oracle).
                for dead_channel in sorted(tracked):
                    dead_pe = self._channel_pe(job, plan, dead_channel)
                    if dead_pe is None:
                        continue
                    seeded += self._seed_detour_state(
                        job,
                        plan,
                        dead_pe,
                        {dead_channel},
                        splitter_pe,
                        only_missing=True,
                    )
            if masked:
                # With the dead channels now out of the ring, seed the
                # detour channels from the crashed PE's last committed
                # checkpoint epoch so rerouted keys continue from the
                # checkpoint instead of from scratch.
                seeded = self._seed_detour_state(
                    job, plan, pe, set(channels), splitter_pe
                )
            for channel in channels:
                record = ChannelReroute(
                    job_id=job.job_id,
                    region=plan.name,
                    channel=channel,
                    masked=masked,
                    reason=reason,
                    width=plan.width,
                    pe_id=pe.pe_id,
                    time=self.kernel.now,
                    # the reclaim/seed ran once for the whole channel set;
                    # report it on the first record so summing over events
                    # is accurate
                    purged_keys=purged,
                    reclaimed_keys=reclaimed,
                    seeded_keys=seeded,
                )
                purged = reclaimed = seeded = 0
                self.reroutes.append(record)
                for listener in list(self.reroute_listeners):
                    listener(record)

    @staticmethod
    def _channel_pe(
        job: Job, plan: ParallelRegionPlan, channel: int
    ) -> Optional[PERuntime]:
        """The PE hosting a channel's first operator (None when gone)."""
        ops = plan.channel_ops[channel]
        if not ops:
            return None
        try:
            return job.pe_of_operator(ops[0])
        except Exception:
            return None

    def _reclaim_detour_state(
        self, job: Job, plan: ParallelRegionPlan, channels: Set[int]
    ) -> Tuple[int, int, int]:
        """Move detour-accrued keyed entries back to their owner channels.

        Every entry held by a surviving channel whose key is owned by one
        of the (just restarted) ``channels`` is extracted and installed on
        the owner's operator at the same chain position; incoming entries
        win over rehydrated ones (the detour is the freshest continuation
        of those keys).  Entries whose owner operator is not live are
        dropped and counted.

        Args:
            job: The job owning the region.
            plan: The (partitioned) region plan.
            channels: The channels rejoining the ring.

        Returns:
            ``(keys_reclaimed, keys_purged, bytes_reclaimed)``; all zero
            for regions without keyed ownership (no ``partition_by``) or
            with migration disabled.
        """
        if plan.partition_by is None or not getattr(plan, "migrate_state", True):
            return 0, 0, 0
        reclaimed = purged = bytes_reclaimed = 0
        for src_channel, ops in enumerate(plan.channel_ops):
            if src_channel in channels:
                continue
            for position, op_name in enumerate(ops):
                try:
                    src_pe = job.pe_of_operator(op_name)
                except Exception:
                    continue
                if src_pe.state is not PEState.RUNNING:
                    continue
                operator = src_pe.operators.get(op_name)
                if operator is None or not operator.state.in_use:
                    continue
                for state_name, keyed in operator.state.keyed_states().items():
                    extracted = keyed.extract_partition(
                        lambda key: stable_channel_of(key, plan.width)
                        in channels
                    )
                    if not extracted:
                        continue
                    buckets: Dict[int, Dict[Any, Any]] = {}
                    for key, value in extracted.items():
                        buckets.setdefault(
                            stable_channel_of(key, plan.width), {}
                        )[key] = value
                    for owner, entries in buckets.items():
                        target_name = plan.channel_ops[owner][position]
                        try:
                            target_pe = job.pe_of_operator(target_name)
                        except Exception:
                            purged += len(entries)
                            continue
                        target_op = target_pe.operators.get(target_name)
                        if (
                            target_pe.state is not PEState.RUNNING
                            or target_op is None
                        ):
                            purged += len(entries)
                            continue
                        target_op.state.keyed(state_name).install(entries)
                        reclaimed += len(entries)
                        bytes_reclaimed += sum(
                            estimate_value_size(k) + estimate_value_size(v)
                            for k, v in entries.items()
                        )
        return reclaimed, purged, bytes_reclaimed

    def _seed_detour_state(
        self,
        job: Job,
        plan: ParallelRegionPlan,
        dead_pe: PERuntime,
        channels: Set[int],
        splitter_pe: PERuntime,
        only_missing: bool = False,
    ) -> int:
        """Install a dead channel's checkpointed keyed state on its detours.

        Reads the crashed PE's last *committed* checkpoint epoch and
        installs (detached copies of) its keyed entries on the channels
        the splitter now detours those keys to, so per-key computations
        continue from the checkpoint during the outage.  The entries flow
        home again through :meth:`_reclaim_detour_state` at unmask.

        Args:
            job: The job owning the region.
            plan: The (partitioned) region plan.
            dead_pe: The crashed channel PE whose checkpoint is seeded.
            channels: The channels just masked (or, for deferred seeding,
                the channels still masked while a detour rejoined).
            splitter_pe: The splitter's PE (source of the live mask set).
            only_missing: Install only keys the detour does not already
                hold — the deferred-seeding mode, which must never
                clobber live detour accruals or a mask-time seed.

        Returns:
            Number of keyed entries installed on detour channels (0 when
            no store is wired, no committed epoch exists, or the region
            has no keyed ownership).
        """
        if self.checkpoint_store is None:
            return 0
        if plan.partition_by is None or not getattr(plan, "migrate_state", True):
            return 0
        entry = self.checkpoint_store.latest_committed(job.job_id, dead_pe.pe_id)
        if entry is None:
            return 0
        splitter_op = splitter_pe.operators.get(plan.splitter)
        if splitter_op is None:
            return 0
        masked_set = splitter_op.masked_channels
        seeded = 0
        for op_name, payload in entry.payloads.items():
            channel = plan.channel_of(op_name)
            if channel is None:
                continue
            position = plan.channel_ops[channel].index(op_name)
            for state_name, entries in (
                payload.get("store", {}).get("keyed", {}).items()
            ):
                buckets: Dict[int, Dict[Any, Any]] = {}
                for key, value in entries.items():
                    if stable_channel_of(key, plan.width) not in channels:
                        continue  # not a key the mask detours
                    detour = detour_channel_of(key, plan.width, masked_set)
                    if detour in masked_set:
                        continue  # every channel masked: nowhere to seed
                    buckets.setdefault(detour, {})[key] = copy.deepcopy(value)
                for detour, seed_entries in buckets.items():
                    target_name = plan.channel_ops[detour][position]
                    try:
                        target_pe = job.pe_of_operator(target_name)
                    except Exception:
                        continue
                    target_op = target_pe.operators.get(target_name)
                    if target_pe.state is not PEState.RUNNING or target_op is None:
                        continue
                    target_state = target_op.state.keyed(state_name)
                    if only_missing:
                        seed_entries = {
                            key: value
                            for key, value in seed_entries.items()
                            if key not in target_state
                        }
                        if not seed_entries:
                            continue
                    target_state.install(seed_entries)
                    seeded += len(seed_entries)
        return seeded

    # -- drain barrier -----------------------------------------------------------

    def _check_removable(self, job: Job, plan: ParallelRegionPlan, new_width: int) -> None:
        """Scale-in precondition: doomed channels must own their PEs alone.

        With the default ``manual`` compile strategy this always holds (the
        per-channel partition tags isolate channels); a ``fuse_all`` or
        ``balanced`` compilation may have packed channel operators together
        with foreign operators, in which case removing the channel would
        require evicting live operators from a shared process — refused.
        """
        doomed: Set[str] = {
            name for ops in plan.channel_ops[new_width:] for name in ops
        }
        for name in doomed:
            pe = job.pe_of_operator(name)
            foreign = [o for o in pe.spec.operators if o not in doomed]
            if foreign:
                raise ElasticError(
                    f"cannot remove channel operator {name!r}: its PE also "
                    f"hosts {foreign} (recompile with strategy='manual')"
                )

    def _region_backlog(self, job: Job, plan: ParallelRegionPlan) -> int:
        """Tuples still inside the region: in flight, buffered, or reordering."""
        backlog = 0
        names = plan.all_channel_operators() + [plan.merger]
        for name in names:
            pe = job.pe_of_operator(name)
            if pe.state is not PEState.RUNNING:
                continue  # a crashed channel cannot hold tuples
            operator = pe.operators.get(name)
            n_inputs = operator.n_inputs if operator is not None else 1
            for port in range(n_inputs):
                backlog += self.transport.queue_size(pe.pe_id, name, port)
            if operator is not None:
                backlog += operator.pending_items()
        return backlog

    def _poll_drain(
        self,
        job: Job,
        plan: ParallelRegionPlan,
        op: RescaleOperation,
        on_complete: Optional[Callable[[RescaleOperation], None]],
    ) -> None:
        if job.state is not JobState.RUNNING:
            self._fail(job, plan, op, on_complete, "job left RUNNING during drain")
            return
        op.drain_polls += 1
        # open batches count toward queue_size but would otherwise sit
        # until their linger expires; force them onto the wire so every
        # drain poll measures a region that is actually moving
        self.transport.flush_open_batches()
        self.transport.expedite_pending()
        if self._region_backlog(job, plan) == 0:
            self._mark_barrier(job.job_id, plan.name, "drain_clean")
            self._rewire_and_resume(job, plan, op, on_complete)
            return
        if self.kernel.now - op.started_at > self.drain_timeout:
            self._fail(
                job,
                plan,
                op,
                on_complete,
                f"drain did not complete within {self.drain_timeout}s",
            )
            return
        self.kernel.schedule(
            self.drain_poll_interval,
            self._poll_drain,
            job,
            plan,
            op,
            on_complete,
            label=f"elastic-drain-{job.job_id}-{plan.name}",
        )

    def _fail(
        self,
        job: Job,
        plan: ParallelRegionPlan,
        op: RescaleOperation,
        on_complete: Optional[Callable[[RescaleOperation], None]],
        reason: str,
    ) -> None:
        op.state = RescaleState.FAILED
        op.error = reason
        op.completed_at = self.kernel.now
        self._mark_barrier(op.job_id, op.region, "failed")
        self._active.pop((op.job_id, op.region), None)
        self.history.append(op)
        # Resume the splitter at the old width so the region keeps flowing.
        if job.state is JobState.RUNNING:
            splitter_pe = job.pe_of_operator(plan.splitter)
            if splitter_pe.state is PEState.RUNNING:
                splitter_pe.send_control(plan.splitter, "resume", {})
        # rollback restored the old mapping — still a topology event for
        # subscribers that refreshed mid-protocol
        self.sam.notify_topology_changed(job, "rescale_rollback")
        if on_complete is not None:
            on_complete(op)
        for listener in list(self.rescale_listeners):
            listener(op)

    # -- state migration -----------------------------------------------------------

    @staticmethod
    def _region_migrates(plan: ParallelRegionPlan) -> bool:
        return plan.partition_by is not None and getattr(
            plan, "migrate_state", True
        )

    def _extract_keyed_partitions(
        self,
        job: Job,
        plan: ParallelRegionPlan,
        new_width: int,
        migration: StateMigration,
        global_moves: Optional[List[_GlobalMove]] = None,
        migrate_keyed: bool = True,
    ) -> List[_Move]:
        """Pull every keyed entry off its channel when ownership changes.

        Runs after the drain barrier (the region is empty, so state is
        stable) and *before* any graph or PE surgery (doomed channels'
        operator instances are still alive).  Extraction removes the
        entries from the source stores: from this point the controller
        owns them exclusively until install or rollback.

        When the region declares a ``global_merge`` hook, the doomed
        channels' non-empty global states are additionally captured (as
        detached copies) into ``global_moves`` for the post-rewire merge
        instead of being counted as dropped.  ``migrate_keyed=False``
        skips the keyed extraction entirely — used for regions without
        keyed ownership (no ``partition_by``) whose shrink still wants
        the global merge.
        """
        moves: List[_Move] = []
        for src_channel, ops in enumerate(plan.channel_ops):
            shrinking = src_channel >= new_width
            for position, op_name in enumerate(ops):
                pe = job.pe_of_operator(op_name)
                if pe.state is not PEState.RUNNING:
                    # a crashed channel's state died with it; nothing to move
                    if src_channel not in migration.skipped_channels:
                        migration.skipped_channels.append(src_channel)
                    continue
                operator = pe.operators.get(op_name)
                if operator is None or not operator.state.in_use:
                    continue
                if migrate_keyed:
                    for state_name, keyed in operator.state.keyed_states().items():
                        extracted = keyed.extract_partition(
                            lambda key: shrinking
                            or stable_channel_of(key, new_width) != src_channel
                        )
                        if not extracted:
                            continue
                        buckets: Dict[int, Dict[Any, Any]] = {}
                        for key, value in extracted.items():
                            buckets.setdefault(
                                stable_channel_of(key, new_width), {}
                            )[key] = value
                        for dst_channel, entries in buckets.items():
                            moves.append(
                                (position, src_channel, dst_channel, state_name, entries)
                            )
                            migration.keys_moved += len(entries)
                            migration.bytes_moved += sum(
                                estimate_value_size(k) + estimate_value_size(v)
                                for k, v in entries.items()
                            )
                            edge = (src_channel, dst_channel)
                            migration.moves[edge] = migration.moves.get(edge, 0) + len(
                                entries
                            )
                if shrinking:
                    for state_name, gs in operator.state.global_states().items():
                        if not self._global_state_has_content(gs.value):
                            continue
                        if plan.global_merge is not None and global_moves is not None:
                            global_moves.append(
                                (position, src_channel, state_name, gs.snapshot())
                            )
                        else:
                            migration.dropped_global_states += 1
        return moves

    def _merge_global_states(
        self,
        job: Job,
        plan: ParallelRegionPlan,
        global_moves: List[_GlobalMove],
        new_width: int,
        migration: StateMigration,
    ) -> None:
        """Fold captured doomed-channel global states into their survivors.

        Runs after the rewire, while the region is still quiesced: the
        survivor of doomed channel ``c`` is ``c % new_width`` (stable and
        deterministic), and the region's ``global_merge(state_name,
        survivor_value, doomed_value)`` hook decides the folded value.  A
        survivor whose PE is down absorbs the loss the way the crash
        itself would: the state is dropped and counted.
        """
        for position, src_channel, state_name, value in global_moves:
            survivor_channel = src_channel % new_width
            target_name = plan.channel_ops[survivor_channel][position]
            try:
                target_pe = job.pe_of_operator(target_name)
            except Exception:
                migration.dropped_global_states += 1
                continue
            target_op = target_pe.operators.get(target_name)
            if target_pe.state is not PEState.RUNNING or target_op is None:
                migration.dropped_global_states += 1
                continue
            gs = target_op.state.global_(state_name)
            gs.set(plan.global_merge(state_name, gs.value, value))
            migration.global_states_merged += 1

    @staticmethod
    def _global_state_has_content(value: Any) -> bool:
        """Whether dropping this global value loses application data.

        Default-initialized states (empty windows) are the fresh-instance
        baseline, and bare numbers are treated as channel-local
        bookkeeping (arrival-seq counters, cursors) — counting either as
        dropped would make every shrink of a region containing a Join or
        Dedup report phantom state loss on a loss-free rescale.  Only
        non-empty containers and other rich objects count.
        """
        if value is None or isinstance(value, (bool, int, float)):
            return False
        if isinstance(value, (str, bytes, list, tuple, set, frozenset, dict)):
            return len(value) > 0
        return True

    def _install_keyed_partitions(
        self,
        job: Job,
        plan: ParallelRegionPlan,
        moves: List[_Move],
        migration: StateMigration,
        installed: List[_Move],
        dropped: List[_Move],
    ) -> None:
        """Install extracted partitions on their new owner channels.

        Runs after the rewire: ``plan.channel_ops`` is the *new* layout and
        freshly added channels already have live operator instances.  A
        new owner whose PE is down but *masked with a live detour* hands
        its entries to each key's detour channel — the splitter is already
        routing those keys there, so dropping the state would fork the
        continuation (the detour recounts from zero and the unmask reclaim
        would later clobber the owner's checkpoint restore with the broken
        fork).  A down owner with no detour absorbs its entries the way
        the crash itself would have: they are dropped and counted — but
        kept in ``dropped`` so a rollback can still return them to their
        (alive) source channel.

        Each processed move shifts from ``moves`` into ``installed`` or
        ``dropped`` as it completes, so a mid-loop failure leaves the
        caller an exact split: ``installed`` must be uninstalled and the
        rest reinstalled at the source — never both for the same move
        (which would duplicate keys across two channels).
        """
        while moves:
            position, _src, dst_channel, state_name, entries = moves[0]
            target_name = plan.channel_ops[dst_channel][position]
            pe = job.pe_of_operator(target_name)
            if pe.state is not PEState.RUNNING:
                move = moves.pop(0)
                left = self._install_via_detour(
                    job, plan, move, migration, installed
                )
                if left is not None:
                    migration.keys_lost += len(left[4])
                    dropped.append(left)
                continue
            operator = pe.operators.get(target_name)
            if operator is None:
                raise ElasticError(
                    f"migration target {target_name!r} has no live instance"
                )
            operator.state.keyed(state_name).install(entries)
            installed.append(moves.pop(0))

    def _install_via_detour(
        self,
        job: Job,
        plan: ParallelRegionPlan,
        move: _Move,
        migration: StateMigration,
        installed: List[_Move],
    ) -> Optional[_Move]:
        """Reroute a move whose new owner is down onto the live detours.

        Only applies when the dead destination channel is currently masked
        (the splitter is detouring its keys to survivors): each entry is
        installed on the channel ``detour_channel_of`` picks for its key,
        so migrated state lands exactly where that key's traffic is
        flowing.  Rerouted buckets are appended to ``installed`` with the
        detour channel as their destination, keeping rollback
        (`_uninstall_keyed_partitions`) exact.  Returns a residual move
        holding any entries that could not be rerouted (destination not
        masked, or the detour target itself down) — ``None`` when every
        entry found a home.
        """
        position, src_channel, dst_channel, state_name, entries = move
        masked = self._masked_channels.get((job.job_id, plan.name)) or set()
        if dst_channel not in masked:
            return move
        leftover: Dict[Any, Any] = {}
        buckets: Dict[int, Dict[Any, Any]] = {}
        for key, value in entries.items():
            buckets.setdefault(
                detour_channel_of(key, plan.width, masked), {}
            )[key] = value
        for detour_channel, bucket in sorted(buckets.items()):
            if detour_channel == dst_channel:
                leftover.update(bucket)  # no live detour exists
                continue
            target_name = plan.channel_ops[detour_channel][position]
            target_pe = job.pe_of_operator(target_name)
            target_op = target_pe.operators.get(target_name)
            if target_pe.state is not PEState.RUNNING or target_op is None:
                leftover.update(bucket)
                continue
            target_op.state.keyed(state_name).install(bucket)
            migration.keys_detoured += len(bucket)
            installed.append(
                (position, src_channel, detour_channel, state_name, bucket)
            )
        if leftover:
            return (position, src_channel, dst_channel, state_name, leftover)
        return None

    def _uninstall_keyed_partitions(
        self, job: Job, plan: ParallelRegionPlan, installed: List[_Move]
    ) -> List[_Move]:
        """Undo a completed install: pull the exact migrated key sets back
        out of their destination stores so they can be reinstalled at the
        source (rollback after a post-install rewire failure)."""
        recovered: List[_Move] = []
        for position, src_channel, dst_channel, state_name, entries in installed:
            if dst_channel >= len(plan.channel_ops):
                continue
            target_name = plan.channel_ops[dst_channel][position]
            try:
                pe = job.pe_of_operator(target_name)
            except Exception:
                continue
            operator = pe.operators.get(target_name)
            if operator is None:
                continue
            pulled = operator.state.keyed(state_name).extract_partition(
                lambda key: key in entries
            )
            if pulled:
                recovered.append(
                    (position, src_channel, dst_channel, state_name, pulled)
                )
        return recovered

    def _reinstall_extracted(
        self, job: Job, plan: ParallelRegionPlan, moves: List[_Move]
    ) -> None:
        """Rollback: put extracted partitions back on their source channels."""
        for position, src_channel, _dst, state_name, entries in moves:
            if src_channel >= len(plan.channel_ops):
                continue  # source channel no longer exists; nowhere to go
            source_name = plan.channel_ops[src_channel][position]
            try:
                pe = job.pe_of_operator(source_name)
            except Exception:
                continue
            operator = pe.operators.get(source_name)
            if operator is not None:
                operator.state.keyed(state_name).install(entries)

    # -- rewire ------------------------------------------------------------------

    def _rewire_and_resume(
        self,
        job: Job,
        plan: ParallelRegionPlan,
        op: RescaleOperation,
        on_complete: Optional[Callable[[RescaleOperation], None]],
    ) -> None:
        compiled = job.compiled
        graph = compiled.application.graph
        moves: List[_Move] = []
        installed: List[_Move] = []
        dropped: List[_Move] = []
        global_moves: List[_GlobalMove] = []
        migration: Optional[StateMigration] = None
        try:
            # The whole rewire runs synchronously inside one kernel event, so
            # nothing can crash *during* it — but the merger or splitter PE
            # may have died while the drain was polling.  Verify both before
            # touching any state, so a doomed rescale fails without ever
            # extracting a partition.
            for endpoint in (plan.splitter, plan.merger):
                endpoint_pe = job.pe_of_operator(endpoint)
                if endpoint_pe.state is not PEState.RUNNING:
                    raise ElasticError(
                        f"PE of {endpoint!r} is {endpoint_pe.state.value}; "
                        "cannot rewire"
                    )
            migrates_keyed = self._region_migrates(plan)
            wants_global_merge = (
                plan.global_merge is not None and op.new_width < op.old_width
            )
            if migrates_keyed or wants_global_merge:
                op.state = RescaleState.MIGRATING
                self._mark_barrier(job.job_id, plan.name, "migrate")
                migration = StateMigration(
                    region=plan.name,
                    old_width=op.old_width,
                    new_width=op.new_width,
                )
                wall_start = _time.perf_counter()
                moves = self._extract_keyed_partitions(
                    job,
                    plan,
                    op.new_width,
                    migration,
                    global_moves,
                    migrate_keyed=migrates_keyed,
                )
                migration.wall_ms += (_time.perf_counter() - wall_start) * 1000.0
                op.migration = migration

            op.state = RescaleState.REWIRING
            self._mark_barrier(job.job_id, plan.name, "rewire")
            added_specs, removed_names = resize_region(graph, plan, op.new_width)

            # Physical plan surgery, then live PE set changes.
            removed_pe_ids = self._shrink_compiled(job, compiled, removed_names)
            new_pe_specs = self._extend_compiled(compiled, added_specs)
            self._recompute_edge_split(compiled)
            if removed_pe_ids:
                self.sam.remove_pes(job.job_id, removed_pe_ids)
                op.removed_pe_ids = removed_pe_ids
            if new_pe_specs:
                try:
                    added_pes = self.sam.add_pes(job.job_id, new_pe_specs)
                except Exception:
                    # No runtimes were created: undo the logical and
                    # physical plan surgery so the region is exactly as it
                    # was, reinstall any extracted state on its source
                    # channels, then fail the operation (the splitter
                    # resumes at the old width and the job keeps flowing).
                    self._rollback_scale_out(job, compiled, plan, op.old_width)
                    if moves:
                        self._reinstall_extracted(job, plan, moves)
                        moves = []
                        if migration is not None:
                            migration.rolled_back = True
                    raise
                op.added_pe_ids = [pe.pe_id for pe in added_pes]
            for pe in job.pes:
                if pe.state is PEState.RUNNING:
                    pe.rebuild_routes()

            # Install migrated partitions on their new owners while the
            # region is still quiesced — state must be in place before the
            # first post-resume tuple reaches its rehashed channel.
            if moves:
                wall_start = _time.perf_counter()
                self._install_keyed_partitions(
                    job, plan, moves, migration, installed, dropped
                )
                migration.wall_ms += (_time.perf_counter() - wall_start) * 1000.0

            # Fold captured doomed-channel global states into their
            # survivors (user-defined merge hook) before traffic resumes.
            if global_moves:
                self._merge_global_states(
                    job, plan, global_moves, op.new_width, migration
                )

            # Live operator updates: merger first (its ports must exist
            # before the splitter routes to them), then the splitter resumes
            # and the barrier buffer flushes into the new epoch.
            merger_pe = job.pe_of_operator(plan.merger)
            merger_pe.send_control(plan.merger, "setWidth", {"width": op.new_width})
            op.epoch = self.epochs.next()
            splitter_pe = job.pe_of_operator(plan.splitter)
            splitter_pe.send_control(
                plan.splitter, "resume", {"width": op.new_width, "epoch": op.epoch}
            )
            self._mark_barrier(job.job_id, plan.name, "resume", epoch=op.epoch)
        except Exception as exc:
            # Never let a rewire error escape into the kernel: the splitter
            # must be resumed or the region would buffer forever.  Any
            # still-extracted partitions go back to their sources, and
            # partitions already installed on their new owners are pulled
            # back out first (best effort — surviving channels reabsorb
            # their keys, so a rolled-back rescale loses no state).
            if installed:
                moves = self._uninstall_keyed_partitions(job, plan, installed) + moves
            if dropped:
                # their dead *destination* never received them; the (alive)
                # source still owns the keys at the restored old width
                if migration is not None:
                    migration.keys_lost -= sum(len(m[4]) for m in dropped)
                moves = moves + dropped
            if moves:
                self._reinstall_extracted(job, plan, moves)
                if migration is not None:
                    migration.rolled_back = True
            self._fail(job, plan, op, on_complete, f"rewire failed: {exc}")
            return

        # Mirror the splitter's width clamp on the mask-tracking set: a
        # removed masked channel must not leave a stale entry behind, or a
        # later graceful restart of a *new* PE at that index would emit
        # the phantom unmask the tracking exists to prevent.
        tracked = self._masked_channels.get((op.job_id, op.region))
        if tracked:
            self._masked_channels[(op.job_id, op.region)] = {
                channel for channel in tracked if channel < op.new_width
            }

        op.state = RescaleState.COMPLETED
        op.completed_at = self.kernel.now
        self._active.pop((op.job_id, op.region), None)
        self.history.append(op)
        # the rewired channel->PE mapping is only final now: announce it
        # through SAM so *every* subscriber refreshes, owning
        # orchestrator or not (the externally-driven-rescale gap)
        self.sam.notify_topology_changed(job, "rescale")
        if on_complete is not None:
            on_complete(op)
        for listener in list(self.rescale_listeners):
            listener(op)

    def _rollback_scale_out(
        self,
        job: Job,
        compiled: CompiledApplication,
        plan: ParallelRegionPlan,
        old_width: int,
    ) -> None:
        """Undo a scale-out whose new channels could not be placed."""
        graph = compiled.application.graph
        _, removed_names = resize_region(graph, plan, old_width)
        self._shrink_compiled(job, compiled, removed_names)
        self._recompute_edge_split(compiled)

    def _shrink_compiled(
        self, job: Job, compiled: CompiledApplication, removed_names: List[str]
    ) -> List[str]:
        """Drop removed operators from the physical plan; return doomed PE ids."""
        if not removed_names:
            return []
        doomed = set(removed_names)
        removed_indices = {compiled.placement[name] for name in doomed}
        removed_pe_ids = [
            pe.pe_id for pe in job.pes if pe.index in removed_indices
        ]
        compiled.pes = [pe for pe in compiled.pes if pe.index not in removed_indices]
        for name in doomed:
            del compiled.placement[name]
        return removed_pe_ids

    def _extend_compiled(
        self, compiled: CompiledApplication, added_specs: List[OperatorSpec]
    ) -> List[PESpec]:
        """Build PE specs for newly added channel operators.

        Mirrors the compiler's ``manual`` grouping: operators sharing a
        partition tag fuse into one PE; untagged operators get singleton
        PEs.  Channel tags are suffixed per channel, so fusion never
        crosses channels.
        """
        if not added_specs:
            return []
        by_tag: Dict[str, List[OperatorSpec]] = {}
        groups: List[List[OperatorSpec]] = []
        for spec in added_specs:
            if spec.partition is not None:
                group = by_tag.get(spec.partition)
                if group is None:
                    group = []
                    by_tag[spec.partition] = group
                    groups.append(group)
                group.append(spec)
            else:
                groups.append([spec])
        next_index = max((pe.index for pe in compiled.pes), default=0) + 1
        new_pe_specs: List[PESpec] = []
        for group in groups:
            pool = next(
                (s.host_pool for s in group if s.host_pool is not None), None
            )
            pe_spec = PESpec(
                index=next_index,
                operators=[s.full_name for s in group],
                host_pool=pool,
                host_exlocations={
                    s.host_exlocation for s in group if s.host_exlocation is not None
                },
                host_colocations={
                    s.host_colocation for s in group if s.host_colocation is not None
                },
                stateful_ops=[
                    s.full_name
                    for s in group
                    if getattr(s.op_class, "STATEFUL", False)
                ],
            )
            next_index += 1
            compiled.pes.append(pe_spec)
            for spec in group:
                compiled.placement[spec.full_name] = pe_spec.index
            new_pe_specs.append(pe_spec)
        return new_pe_specs

    @staticmethod
    def _recompute_edge_split(compiled: CompiledApplication) -> None:
        inter, intra = [], []
        for edge in compiled.application.graph.edges:
            if (
                compiled.placement[edge.src.full_name]
                == compiled.placement[edge.dst.full_name]
            ):
                intra.append(edge)
            else:
                inter.append(edge)
        compiled.inter_pe_edges = inter
        compiled.intra_pe_edges = intra
