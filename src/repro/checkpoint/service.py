"""The background checkpoint daemon.

Every ``interval`` sim-seconds the service walks the running jobs and
captures each stateful PE's operators into the
:class:`~repro.checkpoint.store.CheckpointStore`:

1. **Capture (incremental).**  For every keyed state it asks the
   :class:`~repro.spl.state.KeyedState` for its dirty delta — deep copies
   of only the keys touched since the last committed checkpoint, plus the
   dropped-key set — and merges it over the previous epoch's materialized
   view.  Cold partitions are carried forward by reference (they are
   detached copies already), so a hot loop hammering a few keys never
   forces the whole map to be re-serialized.  Global states and the
   operator's ``on_snapshot()`` extra are small by convention and are
   captured in full.
2. **Record.**  The payloads are written to the store as a new epoch
   (uncommitted — *torn* if the process died here).
3. **Commit.**  The epoch is marked committed, dirty tracking is reset,
   and registered listeners (the ORCA service) are notified.

``commit_fault`` is a test hook simulating a crash between record and
commit: the epoch stays torn and dirty tracking is *not* reset, so the
next round re-captures the same delta — exactly what a restarted
checkpointer would do.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.checkpoint.store import CheckpointStore
from repro.sim.kernel import Kernel
from repro.spl.state import estimate_value_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.job import Job
    from repro.runtime.pe import PERuntime
    from repro.runtime.sam import SAM


@dataclass
class CheckpointRecord:
    """One checkpoint attempt of one PE, as reported to listeners."""

    job_id: str
    pe_id: str
    epoch: int
    time: float
    committed: bool
    full: bool
    n_operators: int
    keys_dirty: int
    keys_total: int
    bytes_written: int


class CheckpointService:
    """Periodic incremental checkpointing of every stateful PE."""

    def __init__(
        self,
        kernel: Kernel,
        sam: "SAM",
        store: CheckpointStore,
        interval: float = 0.0,
    ) -> None:
        """Create the daemon (call :meth:`start` to begin the loop).

        Args:
            kernel: The simulation kernel the loop is scheduled on.
            sam: Job registry — every running job's PEs are candidates.
            store: Destination for recorded/committed epochs.
            interval: Sim-seconds between rounds; 0 disables the loop
                (the paper's no-checkpoint default).
        """
        self.kernel = kernel
        self.sam = sam
        self.store = store
        self.interval = interval
        #: called with a CheckpointRecord after every *committed* epoch
        #: (the ORCA service registers here to emit checkpoint_committed)
        self.commit_listeners: List[Callable[[CheckpointRecord], None]] = []
        #: called with every CheckpointRecord, committed *or torn* — the
        #: instrumentation tap the chaos fuzzer mines for commit-barrier
        #: timestamps (a crash landing between record and commit is the
        #: interleaving it hunts)
        self.attempt_listeners: List[Callable[[CheckpointRecord], None]] = []
        #: test hook: return True to skip the commit (simulates a crash
        #: between record and commit, leaving a torn epoch behind)
        self.commit_fault: Optional[Callable[["PERuntime"], bool]] = None
        #: every checkpoint attempt, committed or torn, in order
        self.records: List[CheckpointRecord] = []
        #: (job, pe, op, state) -> last committed materialized keyed map
        self._materialized: Dict[Tuple[str, str, str, str], Dict] = {}
        self._loop_handle = None
        self._running = False

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Begin the periodic loop (no-op when ``interval`` is 0)."""
        if self.interval > 0 and not self._running:
            self._running = True
            self._loop_handle = self.kernel.schedule(
                self.interval, self._loop, label="checkpoint-loop"
            )

    def stop(self) -> None:
        """Cancel the periodic loop."""
        self._running = False
        if self._loop_handle is not None:
            self._loop_handle.cancel()
            self._loop_handle = None

    def set_interval(self, seconds: float) -> None:
        """Change the checkpoint cadence at runtime.

        Args:
            seconds: New interval in sim-seconds; 0 stops the loop.
        """
        if seconds < 0:
            raise ValueError("checkpoint interval must be >= 0")
        self.interval = seconds
        self.stop()
        self.start()

    def _loop(self) -> None:
        if not self._running:
            return
        self.checkpoint_all()
        self._loop_handle = self.kernel.schedule(
            self.interval, self._loop, label="checkpoint-loop"
        )

    # -- capture ----------------------------------------------------------------

    def checkpoint_all(self) -> List[CheckpointRecord]:
        """Checkpoint every stateful PE of every running job.

        Returns:
            The records of this round's attempts (committed or torn).
        """
        records: List[CheckpointRecord] = []
        for job in self.sam.running_jobs():
            records.extend(self.checkpoint_job(job))
        return records

    def checkpoint_job(self, job: "Job") -> List[CheckpointRecord]:
        """Checkpoint every stateful, running PE of one job.

        Args:
            job: The job to capture.

        Returns:
            One record per PE that actually had state to capture.
        """
        records: List[CheckpointRecord] = []
        for pe in list(job.pes):
            record = self.checkpoint_pe(pe)
            if record is not None:
                records.append(record)
        return records

    def checkpoint_pe(self, pe: "PERuntime") -> Optional[CheckpointRecord]:
        """Capture, record, and commit one PE's stateful operators.

        Args:
            pe: The PE to capture; skipped unless it is running and hosts
                at least one stateful operator (declared in the PE spec or
                holding live state).

        Returns:
            The :class:`CheckpointRecord` of this attempt, or None when
            the PE was skipped.
        """
        if not pe.is_running:
            return None
        declared = set(getattr(pe.spec, "stateful_ops", ()) or ())
        payloads: Dict[str, dict] = {}
        any_full = False
        keys_dirty = 0
        keys_total = 0
        bytes_written = 0
        cleaners: List[Callable[[], None]] = []
        commits: List[Tuple[Tuple[str, str, str, str], Dict]] = []
        for op_name, operator in pe.operators.items():
            if op_name not in declared and not operator.state.in_use:
                continue
            keyed_payload: Dict[str, Dict] = {}
            for state_name, keyed in operator.state.keyed_states().items():
                base_key = (pe.job.job_id, pe.pe_id, op_name, state_name)
                full, changed, dropped = keyed.dirty_snapshot()
                base = self._materialized.get(base_key)
                if full or base is None:
                    if not full:
                        # delta without a base (e.g. the service was
                        # reset): fall back to a full capture
                        changed, dropped = keyed.snapshot(), set()
                    materialized = changed
                    any_full = True
                    keys_dirty += len(changed)
                else:
                    materialized = dict(base)
                    for key in dropped:
                        materialized.pop(key, None)
                    materialized.update(changed)
                    keys_dirty += len(changed) + len(dropped)
                bytes_written += sum(
                    estimate_value_size(k) + estimate_value_size(v)
                    for k, v in changed.items()
                )
                keys_total += len(materialized)
                keyed_payload[state_name] = materialized
                commits.append((base_key, materialized))
                cleaners.append(keyed.mark_clean)
            global_payload = {
                name: state.snapshot()
                for name, state in operator.state.global_states().items()
            }
            extra = copy.deepcopy(operator.on_snapshot())
            bytes_written += sum(
                estimate_value_size(v) for v in global_payload.values()
            ) + estimate_value_size(extra)
            payloads[op_name] = {
                "store": {"keyed": keyed_payload, "global": global_payload},
                "extra": extra,
            }
        if not payloads:
            return None
        # exactly-once transport: the PE's per-link delivery watermarks
        # ride the epoch under a reserved key, so a restore rewinds the
        # receiver to exactly the state the snapshot describes
        transport = self.sam.transport
        wm_payload = transport.checkpoint_watermarks(pe.pe_id)
        if wm_payload is not None:
            payloads["__transport__"] = wm_payload
        entry = self.store.record(
            pe.job.job_id,
            pe.pe_id,
            payloads,
            self.kernel.now,
            full=any_full,
            keys_dirty=keys_dirty,
            keys_total=keys_total,
            bytes_written=bytes_written,
        )
        committed = True
        if self.commit_fault is not None and self.commit_fault(pe):
            committed = False  # torn: dirty tracking stays, base unchanged
        else:
            self.store.commit(pe.job.job_id, pe.pe_id, entry.epoch)
            for base_key, materialized in commits:
                self._materialized[base_key] = materialized
            for clean in cleaners:
                clean()
            if wm_payload is not None:
                floor = self.store.committed_watermark_floor(
                    pe.job.job_id, pe.pe_id
                )
                transport.on_epoch_committed(pe.pe_id, floor or {})
        record = CheckpointRecord(
            job_id=pe.job.job_id,
            pe_id=pe.pe_id,
            epoch=entry.epoch,
            time=entry.time,
            committed=committed,
            full=any_full,
            n_operators=len(payloads) - ("__transport__" in payloads),
            keys_dirty=keys_dirty,
            keys_total=keys_total,
            bytes_written=bytes_written,
        )
        self.records.append(record)
        for listener in list(self.attempt_listeners):
            listener(record)
        if committed:
            for listener in list(self.commit_listeners):
                listener(record)
        return record

    # -- cleanup ----------------------------------------------------------------

    def forget_pe(self, job_id: str, pe_id: str) -> None:
        """Drop the materialized bases of one removed PE.

        Args:
            job_id: Owning job.
            pe_id: The removed PE.
        """
        self._materialized = {
            key: value
            for key, value in self._materialized.items()
            if not (key[0] == job_id and key[1] == pe_id)
        }

    def forget_job(self, job_id: str) -> None:
        """Drop the materialized bases of one cancelled job.

        Args:
            job_id: The cancelled job.
        """
        self._materialized = {
            key: value
            for key, value in self._materialized.items()
            if key[0] != job_id
        }

    def __repr__(self) -> str:
        """Return a short debugging representation."""
        return (
            f"CheckpointService(interval={self.interval}, "
            f"records={len(self.records)})"
        )
