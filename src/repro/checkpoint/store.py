"""The checkpoint store: epoch-numbered state snapshots per (job, PE).

A checkpoint epoch is **recorded** first (payloads written, uncommitted)
and **committed** second; only committed epochs are ever offered to
rehydration.  A crash between the two steps leaves a *torn* epoch behind,
which readers skip — they fall back to the newest committed epoch, so a
partial snapshot can never be loaded.

The store owns the :class:`EpochClock` shared with the elastic
controller's reconfiguration protocol: checkpoint epochs, rescale epochs,
and reclaim epochs are all drawn from one monotone counter, giving every
state-bearing transition in the system a single total order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class EpochClock:
    """Monotone logical clock shared by checkpoints and reconfigurations."""

    def __init__(self) -> None:
        """Start the clock at epoch 0 (no epoch issued yet)."""
        self._epoch = 0

    def next(self) -> int:
        """Allocate and return the next epoch number."""
        self._epoch += 1
        return self._epoch

    @property
    def current(self) -> int:
        """The most recently allocated epoch (0 before the first)."""
        return self._epoch


@dataclass
class CheckpointEpoch:
    """One recorded checkpoint of one PE's stateful operators.

    ``payloads`` maps operator full name to the same payload shape
    ``Operator.snapshot()`` produces (``{"store": {...}, "extra": ...}``),
    so rehydration goes through the ordinary ``Operator.restore()`` path.
    """

    epoch: int
    job_id: str
    pe_id: str
    time: float  #: sim-clock time the capture ran
    payloads: Dict[str, dict] = field(default_factory=dict)
    committed: bool = False
    #: True when at least one keyed state had to be captured in full
    #: (first checkpoint of an instance, or after a bulk restore)
    full: bool = False
    #: keys whose values were actually re-serialized this epoch
    keys_dirty: int = 0
    #: total keyed entries covered by this epoch
    keys_total: int = 0
    #: estimated bytes of the freshly serialized (dirty) portion
    bytes_written: int = 0


@dataclass
class RestoreReport:
    """What a ``restart(rehydrate=True)`` actually restored.

    ``source`` is ``"checkpoint"`` (a committed epoch), ``"quiesced"``
    (the PE's graceful-stop registry, for runtimes without a store), or
    ``"none"`` — rehydration was requested but nothing restorable existed,
    the case the ``rehydrate_skipped`` ORCA event surfaces to policies.
    """

    source: str
    epoch: Optional[int] = None
    restored_ops: Tuple[str, ...] = ()
    time: float = 0.0


class CheckpointStore:
    """Committed-or-torn checkpoint epochs, with retention, per (job, PE)."""

    def __init__(self, retention: int = 2) -> None:
        """Create an empty store.

        Args:
            retention: How many *committed* epochs to keep per PE (at
                least 1; 2 keeps a fallback behind the newest commit).
        """
        if retention < 1:
            raise ValueError("checkpoint retention must be >= 1")
        self.retention = retention
        #: the shared logical clock (see module docstring)
        self.epochs = EpochClock()
        self._chains: Dict[Tuple[str, str], List[CheckpointEpoch]] = {}

    # -- write path -------------------------------------------------------------

    def record(
        self,
        job_id: str,
        pe_id: str,
        payloads: Dict[str, dict],
        time: float,
        *,
        full: bool = False,
        keys_dirty: int = 0,
        keys_total: int = 0,
        bytes_written: int = 0,
    ) -> CheckpointEpoch:
        """Write a new (uncommitted) epoch for one PE.

        Args:
            job_id: Owning job.
            pe_id: The checkpointed PE.
            payloads: Operator full name -> restore payload.
            time: Sim-clock capture time.
            full: Whether any keyed state was captured in full.
            keys_dirty: Keys re-serialized this epoch.
            keys_total: Total keyed entries covered.
            bytes_written: Estimated bytes of the dirty portion.

        Returns:
            The recorded epoch, still uncommitted (torn until
            :meth:`commit` is called).
        """
        entry = CheckpointEpoch(
            epoch=self.epochs.next(),
            job_id=job_id,
            pe_id=pe_id,
            time=time,
            payloads=payloads,
            full=full,
            keys_dirty=keys_dirty,
            keys_total=keys_total,
            bytes_written=bytes_written,
        )
        self._chains.setdefault((job_id, pe_id), []).append(entry)
        return entry

    def commit(self, job_id: str, pe_id: str, epoch: int) -> CheckpointEpoch:
        """Mark a recorded epoch committed and apply retention.

        Retention keeps the newest ``retention`` committed epochs; older
        committed epochs and torn epochs older than the newest commit are
        dropped.

        Args:
            job_id: Owning job.
            pe_id: The checkpointed PE.
            epoch: Epoch number returned by :meth:`record`.

        Returns:
            The now-committed epoch entry.

        Raises:
            KeyError: No such recorded epoch.
        """
        chain = self._chains.get((job_id, pe_id), [])
        for entry in chain:
            if entry.epoch == epoch:
                entry.committed = True
                self._trim(job_id, pe_id)
                return entry
        raise KeyError(f"no recorded epoch {epoch} for ({job_id}, {pe_id})")

    def _trim(self, job_id: str, pe_id: str) -> None:
        chain = self._chains.get((job_id, pe_id), [])
        committed = [e for e in chain if e.committed]
        if not committed:
            return
        # compare by epoch number (globally unique) — dataclass equality
        # would deep-compare whole payload dicts on every commit
        keep = {e.epoch for e in committed[-self.retention:]}
        newest_commit = committed[-1].epoch
        self._chains[(job_id, pe_id)] = [
            e
            for e in chain
            if (e.committed and e.epoch in keep)
            or (not e.committed and e.epoch > newest_commit)
        ]

    # -- read path --------------------------------------------------------------

    def latest_committed(self, job_id: str, pe_id: str) -> Optional[CheckpointEpoch]:
        """Return the newest committed epoch of one PE (never a torn one).

        Args:
            job_id: Owning job.
            pe_id: The PE to look up.

        Returns:
            The newest committed :class:`CheckpointEpoch`, or None.
        """
        chain = self._chains.get((job_id, pe_id), [])
        for entry in reversed(chain):
            if entry.committed:
                return entry
        return None

    def latest(self, job_id: str, pe_id: str) -> Optional[CheckpointEpoch]:
        """Return the newest recorded epoch, committed or torn.

        Args:
            job_id: Owning job.
            pe_id: The PE to look up.

        Returns:
            The newest :class:`CheckpointEpoch`, or None.
        """
        chain = self._chains.get((job_id, pe_id), [])
        return chain[-1] if chain else None

    def committed_watermark_floor(
        self, job_id: str, pe_id: str
    ) -> Optional[Dict[str, int]]:
        """Return the *oldest* retained committed epoch's link watermarks.

        Exactly-once transport persists per-link delivery watermarks into
        each checkpoint epoch under the reserved ``"__transport__"``
        payload key.  Replay buffers may only be truncated up to the
        oldest retained committed epoch — a torn newest commit makes
        recovery fall back that far — so this returns that epoch's
        ``{src_key: watermark}`` map.

        Args:
            job_id: Owning job.
            pe_id: The PE whose floor is requested.

        Returns:
            The oldest retained committed epoch's watermark map, or None
            when no committed epoch carries transport watermarks.
        """
        for entry in self._chains.get((job_id, pe_id), []):
            if entry.committed:
                payload = entry.payloads.get("__transport__")
                if payload is None:
                    return None
                return dict(payload.get("watermarks", {}))
        return None

    def epochs_of(self, job_id: str, pe_id: str) -> List[CheckpointEpoch]:
        """Return every retained epoch of one PE, oldest first.

        Args:
            job_id: Owning job.
            pe_id: The PE to look up.

        Returns:
            The retained epochs (committed and torn), oldest first.
        """
        return list(self._chains.get((job_id, pe_id), []))

    def all_chains(self) -> Dict[Tuple[str, str], List[CheckpointEpoch]]:
        """Every retained epoch chain, keyed by ``(job_id, pe_id)``.

        Returns:
            A detached mapping of shallow chain copies — the view the
            fuzzer's epoch-monotonicity oracle walks.
        """
        return {key: list(chain) for key, chain in self._chains.items()}

    def job_status(self, job_id: str) -> Dict[str, CheckpointEpoch]:
        """Return each of a job's PEs' newest committed epoch.

        Args:
            job_id: The job to summarize.

        Returns:
            ``pe_id -> newest committed epoch`` (PEs without a committed
            epoch are omitted).
        """
        status: Dict[str, CheckpointEpoch] = {}
        for (jid, pe_id), _chain in self._chains.items():
            if jid != job_id:
                continue
            latest = self.latest_committed(job_id, pe_id)
            if latest is not None:
                status[pe_id] = latest
        return status

    # -- lifecycle --------------------------------------------------------------

    def drop_pe(self, job_id: str, pe_id: str) -> None:
        """Forget every epoch of one PE (removed from a running job).

        Args:
            job_id: Owning job.
            pe_id: The PE whose epochs are discarded.
        """
        self._chains.pop((job_id, pe_id), None)

    def drop_job(self, job_id: str) -> None:
        """Forget every epoch of a cancelled job.

        Args:
            job_id: The cancelled job.
        """
        self._chains = {
            key: chain for key, chain in self._chains.items() if key[0] != job_id
        }

    def __repr__(self) -> str:
        """Return a short debugging representation."""
        return (
            f"CheckpointStore({len(self._chains)} chains, "
            f"epoch={self.epochs.current}, retention={self.retention})"
        )
