"""Periodic checkpointing and crash recovery for partitioned operator state.

The paper's failure semantics are *no-checkpoint*: a crashed PE restarts
with empty operators, and only a graceful stop produces a (quiesced)
snapshot.  That keeps user-defined failover policies honest about what
they can restore — nothing — which is exactly the gap this subsystem
closes while keeping the paper's behaviour as the default
(``SystemConfig.checkpoint_interval = 0`` disables the periodic
capture; only graceful stops record epochs then).

Two pieces:

* :class:`~repro.checkpoint.store.CheckpointStore` — epoch-numbered,
  committed-or-torn snapshots per (job, PE).  The store owns the
  **shared epoch clock** (:class:`~repro.checkpoint.store.EpochClock`)
  that the elastic controller's reconfiguration protocol draws from too,
  so checkpoints, rescales, and reclaims order on one monotone logical
  clock (the Fries-style consolidation: fault tolerance and
  reconfiguration share one transactional state-epoch mechanism).
* :class:`~repro.checkpoint.service.CheckpointService` — the background
  daemon: every ``interval`` sim-seconds it captures each stateful PE's
  :class:`~repro.spl.state.StateStore` *incrementally* (per-key dirty
  tracking — hot loops never re-serialize cold partitions), records the
  epoch, and commits it.  A crash between record and commit leaves a
  *torn* epoch that rehydration must never load; restore always falls
  back to the latest committed epoch.

Consumers:

* ``PERuntime.restart(rehydrate=True)`` rehydrates from the latest
  committed epoch — after a crash too, not just after a graceful stop.
* The elastic controller seeds detour channels from a crashed channel's
  last committed epoch and reclaims the detour-accrued state on unmask.
* The ORCA service turns commits into ``checkpoint_committed`` events
  and surfaces staleness through the ``checkpointLag`` PE gauge in SRM.
"""

from repro.checkpoint.store import (
    CheckpointEpoch,
    CheckpointStore,
    EpochClock,
    RestoreReport,
)
from repro.checkpoint.service import CheckpointRecord, CheckpointService

__all__ = [
    "CheckpointEpoch",
    "CheckpointRecord",
    "CheckpointService",
    "CheckpointStore",
    "EpochClock",
    "RestoreReport",
]
