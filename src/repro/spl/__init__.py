"""SPL-like application composition layer.

This package plays the role of IBM's Streams Processing Language (SPL)
toolchain in the paper: applications are assembled as logical graphs of
operators and composite operators, partitioned into processing elements
(PEs) by the compiler, and described by an ADL (application description
language) XML document that the runtime and the orchestrator both consume.
"""

from repro.spl.application import Application
from repro.spl.composite import CompositeDefinition
from repro.spl.compiler import CompiledApplication, SPLCompiler
from repro.spl.graph import LogicalGraph, OperatorSpec, PortRef
from repro.spl.hostpool import HostPool
from repro.spl.metrics import Metric, MetricKind, OperatorMetricName, PEMetricName
from repro.spl.operators import Operator, OperatorContext
from repro.spl.parallel import (
    ParallelAnnotation,
    ParallelRegionPlan,
    expand_parallel_regions,
    parallel,
)
from repro.spl.schema import Attribute, TupleSchema
from repro.spl.state import GlobalState, KeyedState, StateStore
from repro.spl.tuples import FinalMarker, Punctuation, StreamTuple, WindowMarker

__all__ = [
    "Application",
    "CompositeDefinition",
    "CompiledApplication",
    "SPLCompiler",
    "LogicalGraph",
    "OperatorSpec",
    "PortRef",
    "HostPool",
    "Metric",
    "MetricKind",
    "OperatorMetricName",
    "PEMetricName",
    "Operator",
    "OperatorContext",
    "ParallelAnnotation",
    "ParallelRegionPlan",
    "expand_parallel_regions",
    "parallel",
    "Attribute",
    "TupleSchema",
    "GlobalState",
    "KeyedState",
    "StateStore",
    "FinalMarker",
    "Punctuation",
    "StreamTuple",
    "WindowMarker",
]
