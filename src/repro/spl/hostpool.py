"""Host pools.

Sec. 4.3 of the paper: developers specify host placement by creating *host
pools* — named lists of host names or tags.  A pool can be flagged
**exclusive**, in which case the scheduler reserves its hosts for the one
application using the pool; the orchestrator's
``set_exclusive_host_pools`` actuation rewrites an application's ADL so all
its pools become exclusive (used by the replica-failover policy of
Sec. 5.2 so replicas never share a host).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional


@dataclass(frozen=True)
class HostPool:
    """A named set of candidate hosts.

    Exactly one of ``hosts`` (explicit names) or ``tags`` (match hosts
    carrying all the tags) is typically given; with neither, the pool means
    "any host".  ``size`` optionally caps how many hosts the scheduler may
    draw from the pool for this application.
    """

    name: str
    hosts: tuple = ()
    tags: tuple = ()
    size: Optional[int] = None
    exclusive: bool = False

    def as_exclusive(self) -> "HostPool":
        """Copy of this pool with the exclusive flag set."""
        return replace(self, exclusive=True)

    def matches_host(self, host_name: str, host_tags: frozenset) -> bool:
        """Whether a host is a candidate for this pool."""
        if self.hosts:
            return host_name in self.hosts
        if self.tags:
            return set(self.tags).issubset(host_tags)
        return True


#: Pool used for operators that declare no placement at all.
DEFAULT_POOL = HostPool(name="default")


@dataclass
class HostPoolSet:
    """The host pools declared by one application."""

    pools: List[HostPool] = field(default_factory=list)

    def add(self, pool: HostPool) -> None:
        if any(p.name == pool.name for p in self.pools):
            raise ValueError(f"duplicate host pool {pool.name!r}")
        self.pools.append(pool)

    def get(self, name: str) -> HostPool:
        for pool in self.pools:
            if pool.name == name:
                return pool
        raise KeyError(f"no host pool named {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(p.name == name for p in self.pools)

    def __iter__(self):
        return iter(self.pools)

    def __len__(self) -> int:
        return len(self.pools)

    def make_all_exclusive(self) -> None:
        """In-place rewrite used by the ORCA host-pool actuation (Sec. 4.3)."""
        self.pools = [pool.as_exclusive() for pool in self.pools]
        if not self.pools:
            # An app without pools still needs exclusivity to mean something:
            # give it an exclusive default pool.
            self.pools.append(DEFAULT_POOL.as_exclusive())
