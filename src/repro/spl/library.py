"""Built-in operator library.

These are the stock operators an SPL developer composes applications from:
sources, relational-style transforms (Filter, Functor, Aggregate), routing
(Split, Merge), sinks, and the dynamic-composition pair Import/Export
(Sec. 2.1: applications import and export streams to/from each other and
the runtime connects them automatically while both are executing).

Behavioural parameters are plain callables (predicates, mapping functions,
routers) so applications stay concise; operators that the paper's use cases
need with richer semantics (sentiment classification, trend calculation...)
live in :mod:`repro.apps` as Operator subclasses.
"""

from __future__ import annotations

import random as _random
import zlib
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import GraphError
from repro.spl.metrics import MetricKind, OperatorMetricName
from repro.spl.operators import Operator, OperatorContext, Submittable
from repro.spl.tuples import Punctuation, StreamTuple


class Source(Operator):
    """Base class for operators that generate tuples on a timer.

    Parameters
    ----------
    period:
        Seconds between generation ticks (default 1.0).
    limit:
        Stop (and emit FINAL punctuation) after this many tuples
        (default: unbounded).
    initial_delay:
        Seconds before the first tick (default: one period).
    """

    N_INPUTS = 0
    N_OUTPUTS = 1

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.period = float(self.param("period", 1.0))
        self.limit: Optional[int] = self.param("limit", None)
        self.initial_delay = float(self.param("initial_delay", self.period))
        self._emitted = 0
        self._stopped = False

    def on_initialize(self) -> None:
        self.ctx.schedule(self.initial_delay, self._tick)

    def generate(self) -> List[Dict[str, Any]]:
        """Produce the values for one tick (override in subclasses)."""
        return []

    def _tick(self) -> None:
        if self._stopped:
            return
        for values in self.generate():
            if self.limit is not None and self._emitted >= self.limit:
                break
            self.submit(values)
            self._emitted += 1
        if self.limit is not None and self._emitted >= self.limit:
            self._stop_and_finalize()
            return
        self.ctx.schedule(self.period, self._tick)

    def _stop_and_finalize(self) -> None:
        if not self._stopped:
            self._stopped = True
            self.submit_final()

    @property
    def emitted(self) -> int:
        return self._emitted


class Beacon(Source):
    """Emits copies of a template dict, with an iteration counter.

    Parameters: ``values`` (template dict), ``per_tick`` (tuples per tick),
    plus the :class:`Source` timing parameters.  Each tuple gets an ``iter``
    attribute with the global emission index.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.values: Mapping[str, Any] = self.param("values", {})
        self.per_tick = int(self.param("per_tick", 1))

    def generate(self) -> List[Dict[str, Any]]:
        batch = []
        for offset in range(self.per_tick):
            values = dict(self.values)
            values["iter"] = self._emitted + offset
            batch.append(values)
        return batch


class CallbackSource(Source):
    """Emits whatever a user callback produces each tick.

    Parameter ``generator`` is a callable ``(now: float, count: int) ->
    list[dict]`` where ``count`` is the number of tuples emitted so far.
    Alternatively, ``generator_factory`` is a zero-argument callable
    invoked once per operator *instance* — use it when each job (e.g.
    each replica of an application) must get its own independent,
    identically-seeded workload.  This is the workhorse for injecting
    synthetic workloads.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        factory = self.param("generator_factory", None)
        if factory is not None:
            self.generator: Callable[[float, int], List[Dict[str, Any]]] = factory()
        else:
            self.generator = self.param("generator")

    def generate(self) -> List[Dict[str, Any]]:
        return self.generator(self.now(), self._emitted)


class Filter(Operator):
    """Forwards tuples satisfying ``predicate``; counts the discarded ones.

    The ``nDiscarded`` custom metric is the paper's Sec. 2.1 example of a
    custom metric ("a filter operator may maintain the number of tuples it
    discards").
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.predicate: Callable[[StreamTuple], bool] = self.param("predicate")
        self.n_discarded = self.create_custom_metric(
            "nDiscarded", MetricKind.COUNTER, "tuples dropped by the filter"
        )

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self.predicate(tup):
            self.submit(tup)
        else:
            self.n_discarded.increment()

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if punct is Punctuation.WINDOW:
            self.submit_punct(punct)

    def on_control(self, command: str, payload: Mapping[str, Any]) -> None:
        """A dynamic filter: ``setPredicate`` swaps the condition at runtime."""
        if command == "setPredicate":
            self.predicate = payload["predicate"]


class Functor(Operator):
    """Per-tuple map / flat-map / filter-map.

    Parameter ``fn`` is ``(tup) -> dict | StreamTuple | list | None``;
    ``None`` drops the tuple, a list emits several.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.fn: Callable[[StreamTuple], Any] = self.param("fn")

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        result = self.fn(tup)
        if result is None:
            return
        if isinstance(result, (list, tuple)):
            for item in result:
                self.submit(item)
        else:
            self.submit(result)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if punct is Punctuation.WINDOW:
            self.submit_punct(punct)


class Split(Operator):
    """Routes each tuple to one or more output ports.

    Parameter ``router``: ``(tup) -> int | list[int]``.  ``n_outputs`` sets
    the port count.  The input queue length is visible through the built-in
    ``queueSize`` metric — the metric the paper's Fig. 5 subscribes to for
    Split and Merge operators.
    """

    N_OUTPUTS = 2

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        default_router = lambda tup: tup.get("iter", 0) % self.n_outputs  # noqa: E731
        self.router: Callable[[StreamTuple], Union[int, List[int]]] = self.param(
            "router", default_router
        )

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        target = self.router(tup)
        if isinstance(target, int):
            targets: List[int] = [target]
        else:
            targets = list(target)
        for out_port in targets:
            self.submit(tup, port=out_port)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if punct is Punctuation.WINDOW:
            for out_port in range(self.n_outputs):
                self.submit_punct(punct, port=out_port)


class Merge(Operator):
    """Funnels every input port into output port 0 (arrival order)."""

    N_INPUTS = 2

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        self.submit(tup)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        # WINDOW puncts are not meaningful across a merge; FINAL handling
        # (wait for all ports) is done by the base class.
        return


class Join(Operator):
    """Windowed equi-join of two input streams.

    Keeps a sliding count window (``window`` tuples, default 100) per
    input port; a tuple arriving on one port is matched against the other
    port's window on the ``key`` attribute, emitting one merged tuple per
    match (left values win on attribute clashes, the right side is
    prefixed with ``right_prefix`` when ``prefix_right=True``).
    """

    N_INPUTS = 2

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.key: str = self.param("key")
        self.window = int(self.param("window", 100))
        if self.window <= 0:
            raise GraphError(f"{ctx.full_name}: Join window must be positive")
        self.prefix_right = bool(self.param("prefix_right", False))
        self._windows: tuple = ([], [])
        self.n_matches = self.create_custom_metric(
            "nMatches", MetricKind.COUNTER, "joined tuple pairs emitted"
        )

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        own = self._windows[port]
        other = self._windows[1 - port]
        key_value = tup.get(self.key)
        for candidate in other:
            if candidate.get(self.key) == key_value:
                left, right = (tup, candidate) if port == 0 else (candidate, tup)
                merged = dict(right.values)
                if self.prefix_right:
                    merged = {f"r_{k}": v for k, v in merged.items()}
                merged.update(left.values)
                self.n_matches.increment()
                self.submit(merged)
        own.append(tup)
        if len(own) > self.window:
            own.pop(0)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        # WINDOW puncts are not meaningful across a join; FINAL handling
        # (wait for both ports) is done by the base class.
        return


class Aggregate(Operator):
    """Tumbling count-window aggregation.

    Parameters: ``count`` (window size) and ``aggregator``
    (``list[StreamTuple] -> dict``).  Emits one tuple per tumble and a
    WINDOW punctuation after it.  On FINAL, flushes the partial window.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.count = int(self.param("count"))
        if self.count <= 0:
            raise GraphError(f"{ctx.full_name}: Aggregate count must be positive")
        self.aggregator: Callable[[List[StreamTuple]], Dict[str, Any]] = self.param(
            "aggregator"
        )
        self._window: List[StreamTuple] = []

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        self._window.append(tup)
        if len(self._window) >= self.count:
            self._flush()

    def _flush(self) -> None:
        if not self._window:
            return
        batch, self._window = self._window, []
        self.submit(self.aggregator(batch))
        self.submit_punct(Punctuation.WINDOW)

    def on_all_ports_final(self) -> None:
        self._flush()


class Sink(Operator):
    """Terminal operator: hands each tuple to an optional ``consumer``.

    With ``record=True`` (default) tuples are also kept in ``self.seen``
    so tests and display applications can inspect the stream. The built-in
    ``nFinalPunctsProcessed`` metric on sinks is what Sec. 5.3 uses to
    detect that a C3 application has consumed its whole input.
    """

    N_OUTPUTS = 0

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.consumer: Optional[Callable[[StreamTuple], None]] = self.param(
            "consumer", None
        )
        self.record = bool(self.param("record", True))
        self.seen: List[StreamTuple] = []

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self.record:
            self.seen.append(tup)
        if self.consumer is not None:
            self.consumer(tup)


class Export(Operator):
    """Publishes its input stream for other applications to import.

    Parameters: ``stream_id`` (explicit name) and/or ``properties`` (a dict
    of values importers can match on).  The PE hands exported tuples to the
    runtime's import/export registry, which routes them to every matching
    Import operator of every running job.
    """

    N_OUTPUTS = 0

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.stream_id: Optional[str] = self.param("stream_id", None)
        self.properties: Dict[str, Any] = dict(self.param("properties", {}))
        if self.stream_id is None and not self.properties:
            raise GraphError(
                f"{ctx.full_name}: Export needs a stream_id and/or properties"
            )
        self._export_fn: Optional[Callable[[Any], None]] = None

    def bind_export(self, export_fn: Callable[[Any], None]) -> None:
        """Called by the PE to wire this operator to the registry."""
        self._export_fn = export_fn

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self._export_fn is not None:
            self._export_fn(tup)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if self._export_fn is not None:
            self._export_fn(punct)


class Import(Operator):
    """Receives tuples from matching Export operators of other jobs.

    Parameters: ``stream_id`` (match an export by name) or ``subscription``
    (a dict; matches exports whose properties contain all these key/value
    pairs).  Connections are established and torn down dynamically as
    exporting jobs come and go.
    """

    N_INPUTS = 0
    N_OUTPUTS = 1

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.stream_id: Optional[str] = self.param("stream_id", None)
        self.subscription: Dict[str, Any] = dict(self.param("subscription", {}))
        if self.stream_id is None and not self.subscription:
            raise GraphError(
                f"{ctx.full_name}: Import needs a stream_id or a subscription"
            )

    def deliver(self, item: Union[StreamTuple, Punctuation]) -> None:
        """Called by the import/export registry with remote items."""
        if isinstance(item, StreamTuple):
            self.submit(item)
        elif item is Punctuation.WINDOW:
            self.submit_punct(item)
        # FINAL punctuation from a remote job does NOT finalize the importer:
        # other exporters may still connect later (dynamic composition).


class Custom(Operator):
    """Fully callback-driven operator for one-off logic.

    Parameters (all optional): ``on_tuple_fn(op, tup, port)``,
    ``on_punct_fn(op, punct, port)``, ``on_init_fn(op)``,
    ``on_final_fn(op)``, ``n_inputs``, ``n_outputs``.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self._on_tuple = self.param("on_tuple_fn", None)
        self._on_punct = self.param("on_punct_fn", None)
        self._on_init = self.param("on_init_fn", None)
        self._on_final = self.param("on_final_fn", None)

    def on_initialize(self) -> None:
        if self._on_init is not None:
            self._on_init(self)

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self._on_tuple is not None:
            self._on_tuple(self, tup, port)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if self._on_punct is not None:
            self._on_punct(self, punct, port)

    def on_all_ports_final(self) -> None:
        if self._on_final is not None:
            self._on_final(self)


class LoadShedder(Operator):
    """Probabilistically drops a controllable fraction of tuples.

    The paper's Sec. 1 motivating example: "when the application is
    overloaded due to a transient high input data rate, it may need to
    temporarily apply load shedding policies to maintain answer
    timeliness".  The shedding fraction starts at ``fraction`` (default
    0.0 = pass-through) and is adjusted at runtime through the
    ``setSheddingFraction`` control command — which an orchestrator sends
    via its actuation API when it observes queue build-up.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.fraction = float(self.param("fraction", 0.0))
        self._rng = _random.Random(int(self.param("seed", 1337)))
        self.n_shed = self.create_custom_metric(
            "nShed", MetricKind.COUNTER, "tuples dropped by load shedding"
        )
        self.fraction_gauge = self.create_custom_metric(
            "sheddingFraction", MetricKind.GAUGE, "current shedding fraction"
        )

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self.fraction > 0.0 and self._rng.random() < self.fraction:
            self.n_shed.increment()
            return
        self.submit(tup)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if punct is Punctuation.WINDOW:
            self.submit_punct(punct)

    def on_control(self, command: str, payload: Mapping[str, Any]) -> None:
        if command == "setSheddingFraction":
            fraction = float(payload["fraction"])
            self.fraction = min(max(fraction, 0.0), 1.0)
            self.fraction_gauge.set(self.fraction)


class Throttle(Operator):
    """Re-emits tuples no faster than ``rate`` tuples/second.

    Excess tuples are buffered and drained on a timer; the buffer length is
    exposed through the custom ``nBuffered`` gauge.  FINAL punctuation is
    held back until the buffer is empty so a throttled stream never loses
    its tail (the elastic drain protocol relies on this).

    Subclasses may override :meth:`process` to transform each tuple as it
    leaves the buffer — a rate-limited worker is exactly this machinery
    plus per-tuple work (see :class:`repro.apps.elastic_trend.TrendWorker`).
    """

    FORWARD_FINAL = False

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.rate = float(self.param("rate"))
        if self.rate <= 0:
            raise GraphError(f"{ctx.full_name}: Throttle rate must be positive")
        self._buffer: List[StreamTuple] = []
        self._draining = False
        self._final_pending = False
        self.n_buffered = self.create_custom_metric(
            "nBuffered", MetricKind.GAUGE, "tuples waiting in the throttle"
        )

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        self._buffer.append(tup)
        self.n_buffered.set(len(self._buffer))
        if not self._draining:
            self._draining = True
            self.ctx.schedule(1.0 / self.rate, self._drain_one)

    def on_all_ports_final(self) -> None:
        if self._buffer:
            self._final_pending = True
        else:
            self.submit_final()

    def pending_items(self) -> int:
        return len(self._buffer)

    def process(self, tup: StreamTuple) -> Submittable:
        """Hook: what to emit for a drained tuple (identity by default)."""
        return tup

    def _drain_one(self) -> None:
        if self._buffer:
            self.submit(self.process(self._buffer.pop(0)))
            self.n_buffered.set(len(self._buffer))
        if self._buffer:
            self.ctx.schedule(1.0 / self.rate, self._drain_one)
        else:
            self._draining = False
            if self._final_pending:
                self._final_pending = False
                self.submit_final()


# ---------------------------------------------------------------------------
# Parallel-region plumbing (see repro.spl.parallel and repro.elastic)
# ---------------------------------------------------------------------------


def _stable_hash(value: Any) -> int:
    """Deterministic cross-run hash (``hash(str)`` is salted per process)."""
    return zlib.crc32(str(value).encode("utf8"))


class ParallelSplitter(Operator):
    """Entry operator of a parallel region: routes tuples onto N channels.

    Inserted by the compiler when it expands a ``parallel(width=N)``
    annotation.  Routing is hash-based on the ``partition_by`` attribute
    when one is declared (so stateful per-key workers see a stable key
    partitioning), round-robin otherwise.  When the region is ``ordered``,
    every forwarded tuple is stamped with a region-global sequence number
    (``_pseq``) that the matching :class:`OrderedMerger` uses to restore
    tuple order across channels.

    The splitter is also the barrier point of the elastic
    re-parallelization protocol (Fries-style epoch alignment): on the
    ``quiesce`` control command it stops forwarding and buffers arrivals;
    ``resume`` installs the new width, increments the reconfiguration
    epoch, and flushes the buffer through the new routing — which is what
    makes a live rescale tuple-loss-free by construction.
    """

    N_INPUTS = 1
    FORWARD_FINAL = False

    @classmethod
    def port_counts(cls, params: Mapping[str, Any]) -> Tuple[int, int]:
        return 1, int(params.get("width", 2))

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.width = int(self.param("width"))
        if self.width < 1:
            raise GraphError(f"{ctx.full_name}: splitter width must be >= 1")
        self.partition_by: Optional[str] = self.param("partition_by", None)
        self.ordered = bool(self.param("ordered", True))
        self.region: str = self.param("region", ctx.full_name)
        self._rr = 0
        self._seq = 0
        self._quiesced = False
        #: items held at the barrier: tuples and WINDOW puncts, in order
        self._buffer: List[Union[StreamTuple, Punctuation]] = []
        self._final_pending = False
        self.epoch = 0
        self.width_gauge = self.create_custom_metric(
            "channelWidth", MetricKind.GAUGE, "active channel count"
        )
        self.width_gauge.set(self.width)
        self.epoch_gauge = self.create_custom_metric(
            "reconfigEpoch", MetricKind.GAUGE, "completed reconfiguration epochs"
        )
        self.quiesced_gauge = self.create_custom_metric(
            "nQuiescedBuffered", MetricKind.GAUGE, "tuples held during a rescale"
        )

    # -- routing ---------------------------------------------------------------

    def _channel_of(self, tup: StreamTuple) -> int:
        if self.partition_by is not None:
            return _stable_hash(tup.get(self.partition_by)) % self.width
        channel = self._rr
        self._rr = (self._rr + 1) % self.width
        return channel

    def _forward(self, tup: StreamTuple) -> None:
        channel = self._channel_of(tup)
        if self.ordered:
            stamped = StreamTuple(
                {**tup.values, "_pseq": self._seq}, created_at=tup.created_at
            )
            self._seq += 1
            self.submit(stamped, port=channel)
        else:
            self.submit(tup, port=channel)

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self._quiesced:
            self._buffer.append(tup)
            self.quiesced_gauge.set(len(self._buffer))
        else:
            self._forward(tup)

    def _broadcast_window(self) -> None:
        for out_port in range(self.width):
            self.submit_punct(Punctuation.WINDOW, port=out_port)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if punct is not Punctuation.WINDOW:
            return
        if self._quiesced:
            # window boundaries are held at the barrier alongside tuples so
            # a rescale never merges two windows into one
            self._buffer.append(punct)
            self.quiesced_gauge.set(len(self._buffer))
        else:
            self._broadcast_window()

    def on_all_ports_final(self) -> None:
        if self._quiesced or self._buffer:
            self._final_pending = True
        else:
            self.submit_final()

    @property
    def is_quiesced(self) -> bool:
        return self._quiesced

    def pending_items(self) -> int:
        return len(self._buffer)

    # -- control (driven by the ElasticController) -----------------------------

    def _set_width(self, width: int) -> None:
        width = int(width)
        if width < 1:
            raise GraphError(f"{self.ctx.full_name}: width must be >= 1")
        for port in range(self.n_outputs, width):
            self.metrics.get_or_create(
                OperatorMetricName.N_TUPLES_SUBMITTED, MetricKind.COUNTER, port=port
            )
        self.width = width
        self.n_outputs = width
        self._rr %= width
        self.width_gauge.set(width)

    def on_control(self, command: str, payload: Mapping[str, Any]) -> None:
        if command == "quiesce":
            self._quiesced = True
        elif command == "setWidth":
            self._set_width(int(payload["width"]))
        elif command == "resume":
            if "width" in payload:
                self._set_width(int(payload["width"]))
            if "epoch" in payload:
                self.epoch = int(payload["epoch"])
                self.epoch_gauge.set(self.epoch)
            self._quiesced = False
            buffered, self._buffer = self._buffer, []
            for item in buffered:
                if isinstance(item, StreamTuple):
                    self._forward(item)
                else:
                    self._broadcast_window()
            self.quiesced_gauge.set(0)
            if self._final_pending:
                self._final_pending = False
                self.submit_final()


class OrderedMerger(Operator):
    """Exit operator of a parallel region: funnels N channels into one stream.

    When the region is ``ordered`` the merger restores the splitter's
    sequence order: tuples carrying a ``_pseq`` stamp are held in a reorder
    buffer and emitted strictly in sequence (the stamp is stripped before
    forwarding).  Tuples without a stamp — e.g. produced by a worker that
    does not propagate ``_pseq`` — pass through in arrival order.  On FINAL
    the reorder buffer is flushed even if gaps remain (a worker may
    legitimately drop tuples).

    A crashed channel loses its in-flight tuples (Sec. 5.2 semantics), which
    would leave a *permanent* hole in the sequence and stall the reorder
    buffer forever.  ``reorder_grace`` bounds that stall: when the buffer
    makes no progress for that many seconds, the merger skips past the hole
    (counted by ``nSeqGapsSkipped``) and keeps flowing; a straggler arriving
    after its seq was skipped is emitted immediately rather than dropped.
    """

    N_OUTPUTS = 1
    FORWARD_FINAL = True

    @classmethod
    def port_counts(cls, params: Mapping[str, Any]) -> Tuple[int, int]:
        return int(params.get("width", 2)), 1

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        if int(self.param("width")) < 1:
            raise GraphError(f"{ctx.full_name}: merger width must be >= 1")
        self.ordered = bool(self.param("ordered", True))
        self.region: str = self.param("region", ctx.full_name)
        self.reorder_grace = float(self.param("reorder_grace", 30.0))
        self._next = 0
        self._pending: Dict[int, StreamTuple] = {}
        self._gap_guard_active = False
        self.reorder_gauge = self.create_custom_metric(
            "nReordered", MetricKind.GAUGE, "tuples waiting in the reorder buffer"
        )
        self.gaps_skipped = self.create_custom_metric(
            "nSeqGapsSkipped", MetricKind.COUNTER,
            "sequence holes skipped after the reorder grace period",
        )

    @staticmethod
    def _strip(tup: StreamTuple) -> StreamTuple:
        if "_pseq" not in tup.values:
            return tup
        values = {k: v for k, v in tup.values.items() if k != "_pseq"}
        return StreamTuple(values, created_at=tup.created_at)

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if not self.ordered:
            self.submit(self._strip(tup))
            return
        seq = tup.get("_pseq")
        if seq is None:
            self.submit(tup)
            return
        if seq < self._next:
            # straggler behind a skipped gap: deliver rather than drop
            self.submit(self._strip(tup))
            return
        self._pending[seq] = tup
        self._release_ready()

    def _release_ready(self) -> None:
        while self._next in self._pending:
            self.submit(self._strip(self._pending.pop(self._next)))
            self._next += 1
        self.reorder_gauge.set(len(self._pending))
        if self._pending and self.reorder_grace > 0 and not self._gap_guard_active:
            self._gap_guard_active = True
            self.ctx.schedule(self.reorder_grace, self._make_gap_check(self._next))

    def _make_gap_check(self, expected_next: int):
        def check() -> None:
            self._gap_guard_active = False
            if not self._pending:
                return
            if self._next != expected_next:
                # progress happened; re-arm the guard for the current hole
                self._release_ready()
                return
            # The hole outlived the grace period (its channel crashed).
            # Flush the whole stalled buffer in sequence order — a dead
            # channel leaves a hole every Nth seq, so skipping one hole at
            # a time would stall for one grace period per lost tuple.
            # Anything still in flight arrives as a straggler.
            self.gaps_skipped.increment()
            for seq in sorted(self._pending):
                self._next = seq + 1
                self.submit(self._strip(self._pending.pop(seq)))
            self.reorder_gauge.set(0)

        return check

    def on_punct(self, punct: Punctuation, port: int) -> None:
        # WINDOW puncts are not meaningful across a merge; FINAL handling
        # (wait for all ports) is done by the base class.
        return

    def on_all_ports_final(self) -> None:
        for seq in sorted(self._pending):
            self.submit(self._strip(self._pending.pop(seq)))
        self.reorder_gauge.set(0)

    def pending_items(self) -> int:
        return len(self._pending)

    def set_width(self, width: int) -> None:
        width = int(width)
        if width < 1:
            raise GraphError(f"{self.ctx.full_name}: width must be >= 1")
        for port in range(self.n_inputs, width):
            self.metrics.get_or_create(
                OperatorMetricName.N_TUPLES_PROCESSED, MetricKind.COUNTER, port=port
            )
            self.metrics.get_or_create(
                OperatorMetricName.QUEUE_SIZE, MetricKind.GAUGE, port=port
            )
        self.n_inputs = width

    def on_control(self, command: str, payload: Mapping[str, Any]) -> None:
        if command == "setWidth":
            self.set_width(int(payload["width"]))
