"""Built-in operator library.

These are the stock operators an SPL developer composes applications from:
sources, relational-style transforms (Filter, Functor, Aggregate), routing
(Split, Merge), sinks, and the dynamic-composition pair Import/Export
(Sec. 2.1: applications import and export streams to/from each other and
the runtime connects them automatically while both are executing).

Behavioural parameters are plain callables (predicates, mapping functions,
routers) so applications stay concise; operators that the paper's use cases
need with richer semantics (sentiment classification, trend calculation...)
live in :mod:`repro.apps` as Operator subclasses.
"""

from __future__ import annotations

import random as _random
import zlib
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import GraphError
from repro.spl.metrics import MetricKind, OperatorMetricName
from repro.spl.operators import Operator, OperatorContext, Submittable
from repro.spl.state import KeyedSeqIndex
from repro.spl.tuples import Punctuation, StreamTuple


class Source(Operator):
    """Base class for operators that generate tuples on a timer.

    Parameters
    ----------
    period:
        Seconds between generation ticks (default 1.0).
    limit:
        Stop (and emit FINAL punctuation) after this many tuples
        (default: unbounded).
    initial_delay:
        Seconds before the first tick (default: one period).
    """

    N_INPUTS = 0
    N_OUTPUTS = 1

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.period = float(self.param("period", 1.0))
        self.limit: Optional[int] = self.param("limit", None)
        self.initial_delay = float(self.param("initial_delay", self.period))
        self._emitted = 0
        self._stopped = False

    def on_initialize(self) -> None:
        self.ctx.schedule(self.initial_delay, self._tick)

    def generate(self) -> List[Dict[str, Any]]:
        """Produce the values for one tick (override in subclasses)."""
        return []

    def _tick(self) -> None:
        if self._stopped:
            return
        for values in self.generate():
            if self.limit is not None and self._emitted >= self.limit:
                break
            self.submit(values)
            self._emitted += 1
        if self.limit is not None and self._emitted >= self.limit:
            self._stop_and_finalize()
            return
        self.ctx.schedule(self.period, self._tick)

    def _stop_and_finalize(self) -> None:
        if not self._stopped:
            self._stopped = True
            self.submit_final()

    @property
    def emitted(self) -> int:
        return self._emitted


class Beacon(Source):
    """Emits copies of a template dict, with an iteration counter.

    Parameters: ``values`` (template dict), ``per_tick`` (tuples per tick),
    plus the :class:`Source` timing parameters.  Each tuple gets an ``iter``
    attribute with the global emission index.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.values: Mapping[str, Any] = self.param("values", {})
        self.per_tick = int(self.param("per_tick", 1))

    def generate(self) -> List[Dict[str, Any]]:
        batch = []
        for offset in range(self.per_tick):
            values = dict(self.values)
            values["iter"] = self._emitted + offset
            batch.append(values)
        return batch


class CallbackSource(Source):
    """Emits whatever a user callback produces each tick.

    Parameter ``generator`` is a callable ``(now: float, count: int) ->
    list[dict]`` where ``count`` is the number of tuples emitted so far.
    Alternatively, ``generator_factory`` is a zero-argument callable
    invoked once per operator *instance* — use it when each job (e.g.
    each replica of an application) must get its own independent,
    identically-seeded workload.  This is the workhorse for injecting
    synthetic workloads.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        factory = self.param("generator_factory", None)
        if factory is not None:
            self.generator: Callable[[float, int], List[Dict[str, Any]]] = factory()
        else:
            self.generator = self.param("generator")

    def generate(self) -> List[Dict[str, Any]]:
        return self.generator(self.now(), self._emitted)


class Filter(Operator):
    """Forwards tuples satisfying ``predicate``; counts the discarded ones.

    The ``nDiscarded`` custom metric is the paper's Sec. 2.1 example of a
    custom metric ("a filter operator may maintain the number of tuples it
    discards").
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.predicate: Callable[[StreamTuple], bool] = self.param("predicate")
        self.n_discarded = self.create_custom_metric(
            "nDiscarded", MetricKind.COUNTER, "tuples dropped by the filter"
        )

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self.predicate(tup):
            self.submit(tup)
        else:
            self.n_discarded.increment()

    def process_batch(self, tuples: List[StreamTuple], port: int) -> None:
        """Vectorized pass: one predicate sweep, one batched re-emit."""
        predicate = self.predicate
        kept = [tup for tup in tuples if predicate(tup)]
        dropped = len(tuples) - len(kept)
        if dropped:
            self.n_discarded.increment(dropped)
        if kept:
            self.submit_batch(kept)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if punct is Punctuation.WINDOW:
            self.submit_punct(punct)

    def on_control(self, command: str, payload: Mapping[str, Any]) -> None:
        """A dynamic filter: ``setPredicate`` swaps the condition at runtime."""
        if command == "setPredicate":
            self.predicate = payload["predicate"]


class Functor(Operator):
    """Per-tuple map / flat-map / filter-map.

    Parameter ``fn`` is ``(tup) -> dict | StreamTuple | list | None``;
    ``None`` drops the tuple, a list emits several.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.fn: Callable[[StreamTuple], Any] = self.param("fn")

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        result = self.fn(tup)
        if result is None:
            return
        if isinstance(result, (list, tuple)):
            for item in result:
                self.submit(item)
        else:
            self.submit(result)

    def process_batch(self, tuples: List[StreamTuple], port: int) -> None:
        """Vectorized pass: map the whole run, re-emit it as one batch."""
        fn = self.fn
        out: List[Submittable] = []
        for tup in tuples:
            result = fn(tup)
            if result is None:
                continue
            if isinstance(result, (list, tuple)):
                out.extend(result)
            else:
                out.append(result)
        if out:
            self.submit_batch(out)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if punct is Punctuation.WINDOW:
            self.submit_punct(punct)


class Projection(Operator):
    """Keeps only the named attributes of each tuple.

    Parameter ``attributes``: iterable of attribute names to retain.
    Together with :class:`Filter` and :class:`Functor` this completes the
    stateless relational trio whose chains dominate hot paths — all three
    carry vectorized ``process_batch`` overrides, so a fused
    Functor/Filter/Projection chain moves whole batches end to end.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.attributes: Tuple[str, ...] = tuple(self.param("attributes"))

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        self.submit(tup.project(*self.attributes))

    def process_batch(self, tuples: List[StreamTuple], port: int) -> None:
        """Vectorized pass: project the whole run, re-emit it as one batch."""
        attrs = self.attributes
        self.submit_batch([tup.project(*attrs) for tup in tuples])

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if punct is Punctuation.WINDOW:
            self.submit_punct(punct)


class Split(Operator):
    """Routes each tuple to one or more output ports.

    Parameter ``router``: ``(tup) -> int | list[int]``.  ``n_outputs`` sets
    the port count.  The input queue length is visible through the built-in
    ``queueSize`` metric — the metric the paper's Fig. 5 subscribes to for
    Split and Merge operators.
    """

    N_OUTPUTS = 2

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        default_router = lambda tup: tup.get("iter", 0) % self.n_outputs  # noqa: E731
        self.router: Callable[[StreamTuple], Union[int, List[int]]] = self.param(
            "router", default_router
        )

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        target = self.router(tup)
        if isinstance(target, int):
            targets: List[int] = [target]
        else:
            targets = list(target)
        for out_port in targets:
            self.submit(tup, port=out_port)

    def process_batch(self, tuples: List[StreamTuple], port: int) -> None:
        """Vectorized pass: one routing sweep into per-port sub-batches."""
        router = self.router
        by_port: Dict[int, List[StreamTuple]] = {}
        for tup in tuples:
            target = router(tup)
            if isinstance(target, int):
                by_port.setdefault(target, []).append(tup)
            else:
                for out_port in target:
                    by_port.setdefault(out_port, []).append(tup)
        for out_port in sorted(by_port):
            self.submit_batch(by_port[out_port], port=out_port)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if punct is Punctuation.WINDOW:
            for out_port in range(self.n_outputs):
                self.submit_punct(punct, port=out_port)


class Merge(Operator):
    """Funnels every input port into output port 0 (arrival order)."""

    N_INPUTS = 2

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        self.submit(tup)

    def process_batch(self, tuples: List[StreamTuple], port: int) -> None:
        """Pass-through: the whole run survives the funnel as one batch."""
        self.submit_batch(tuples)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        # WINDOW puncts are not meaningful across a merge; FINAL handling
        # (wait for all ports) is done by the base class.
        return


class Join(Operator):
    """Windowed equi-join of two input streams.

    Keeps a sliding count window (``window`` tuples, default 100) per
    input port; a tuple arriving on one port is matched against the other
    port's window on the ``key`` attribute, emitting one merged tuple per
    match (left values win on attribute clashes, the right side is
    prefixed with ``right_prefix`` when ``prefix_right=True``).

    The windows live in the operator's :class:`~repro.spl.state.StateStore`
    partitioned by the join key — entries carry their arrival sequence, so
    inside a parallel region annotated with ``partition_by=key`` the
    per-key match candidates *and* their eviction bookkeeping migrate with
    the key on a rescale (the window bound stays exact on both channels).
    """

    N_INPUTS = 2
    STATEFUL = True

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.key: str = self.param("key")
        self.window = int(self.param("window", 100))
        if self.window <= 0:
            raise GraphError(f"{ctx.full_name}: Join window must be positive")
        self.prefix_right = bool(self.param("prefix_right", False))
        #: per port: join-key -> [[arrival seq, tuple], ...].  The arrival
        #: seq lives *inside* the keyed entry so eviction bookkeeping
        #: migrates together with the entries it orders (an external order
        #: list would be left behind by a partition move, leaking tuples
        #: past the window bound on the destination channel forever).
        self._by_key = (self.state.keyed("w0"), self.state.keyed("w1"))
        self._seq = (
            self.state.global_("seq0", default=int),
            self.state.global_("seq1", default=int),
        )
        #: in-memory eviction accel per port (rebuilds itself after a
        #: migration or rehydration mutates the keyed store underneath);
        #: keeps the per-tuple path O(log window) while the authoritative
        #: seqs stay inside the migratable entries
        self._index = tuple(
            KeyedSeqIndex(keyed, lambda bucket: (entry[0] for entry in bucket))
            for keyed in self._by_key
        )
        self._entry_count = [0, 0]
        self._count_version = [-1, -1]
        self.n_matches = self.create_custom_metric(
            "nMatches", MetricKind.COUNTER, "joined tuple pairs emitted"
        )

    def _resync_count(self, port: int) -> None:
        """Refresh the entry count — and the arrival-seq floor — after a
        migration or rehydration mutated the keyed store.

        The seq counter is channel-local (global state, not migrated), so
        migrated entries can carry seqs *above* the local counter.  New
        appends must stay the bucket maximum or the seq-sorted-bucket
        invariant breaks and eviction misclassifies live index entries as
        stale, leaking entries past the window bound forever.
        """
        keyed = self._by_key[port]
        if self._count_version[port] != keyed.version:
            count = 0
            max_seq = -1
            for _key, bucket in keyed.items():
                count += len(bucket)
                if bucket and bucket[-1][0] > max_seq:
                    max_seq = bucket[-1][0]
            self._entry_count[port] = count
            if self._seq[port].get(0) <= max_seq:
                self._seq[port].set(max_seq + 1)
            self._count_version[port] = keyed.version

    def _evict_to_window(self, port: int) -> None:
        """Drop oldest-arrival entries until the port holds <= window.

        After a migration merges partitions from several source channels,
        seqs from different channels interleave only approximately — the
        window *bound* stays exact, the eviction order is best-effort
        FIFO.
        """
        keyed = self._by_key[port]
        while self._entry_count[port] > self.window:
            popped = self._index[port].pop_oldest()
            if popped is None:
                break
            seq, key_value = popped
            bucket = keyed.get(key_value)
            if not bucket or bucket[0][0] != seq:
                continue  # stale index entry (re-keyed since push)
            bucket.pop(0)
            self._entry_count[port] -= 1
            if not bucket:
                keyed.delete(key_value)

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        key_value = tup.get(self.key)
        for _seq, candidate in self._by_key[1 - port].get(key_value, ()):
            left, right = (tup, candidate) if port == 0 else (candidate, tup)
            merged = dict(right.values)
            if self.prefix_right:
                merged = {f"r_{k}": v for k, v in merged.items()}
            merged.update(left.values)
            self.n_matches.increment()
            self.submit(merged)
        self._resync_count(port)
        seq = self._seq[port].get(0)
        self._seq[port].set(seq + 1)
        self._by_key[port].setdefault(key_value, list).append([seq, tup])
        self._index[port].push(seq, key_value)
        self._entry_count[port] += 1
        self._evict_to_window(port)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        # WINDOW puncts are not meaningful across a join; FINAL handling
        # (wait for both ports) is done by the base class.
        return


class Aggregate(Operator):
    """Tumbling count-window aggregation, optionally keyed.

    Parameters: ``count`` (window size), ``aggregator``
    (``list[StreamTuple] -> dict``), and optional ``key``: when set, one
    tumbling window is kept *per distinct value* of that attribute (in
    keyed state, so the windows migrate with their key inside a
    ``partition_by=key`` parallel region) and the key attribute is merged
    into each emitted tuple.  Emits one tuple per tumble and a WINDOW
    punctuation after it.  On FINAL, flushes the partial window(s).
    """

    STATEFUL = True

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.count = int(self.param("count"))
        if self.count <= 0:
            raise GraphError(f"{ctx.full_name}: Aggregate count must be positive")
        self.aggregator: Callable[[List[StreamTuple]], Dict[str, Any]] = self.param(
            "aggregator"
        )
        self.key: Optional[str] = self.param("key", None)
        self._window = self.state.global_("window", default=list)
        self._keyed_windows = self.state.keyed("windows")

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self.key is None:
            window = self._window.value
            window.append(tup)
            if len(window) >= self.count:
                self._flush_global()
            return
        key_value = tup.get(self.key)
        window = self._keyed_windows.setdefault(key_value, list)
        window.append(tup)
        if len(window) >= self.count:
            self._flush_key(key_value)

    def _flush_global(self) -> None:
        batch = self._window.value
        if not batch:
            return
        self._window.set([])
        self.submit(self.aggregator(batch))
        self.submit_punct(Punctuation.WINDOW)

    def _flush_key(self, key_value: Any) -> None:
        batch = self._keyed_windows.get(key_value)
        if not batch:
            return
        self._keyed_windows.delete(key_value)
        result = dict(self.aggregator(batch))
        result.setdefault(self.key, key_value)
        self.submit(result)
        self.submit_punct(Punctuation.WINDOW)

    def on_all_ports_final(self) -> None:
        if self.key is None:
            self._flush_global()
        else:
            for key_value in sorted(self._keyed_windows.keys(), key=str):
                self._flush_key(key_value)


class Dedup(Operator):
    """Forwards the first tuple per distinct ``key`` value; drops repeats.

    Parameters: ``key`` (attribute deduplicated on) and optional
    ``capacity`` (max distinct keys remembered; oldest-first eviction, so
    a re-occurrence after eviction passes again).  The seen-set lives in
    keyed state and therefore migrates with its keys across rescales of a
    ``partition_by=key`` parallel region — without migration, a rescale
    would re-admit duplicates for every key that changed channels.
    """

    STATEFUL = True

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.key: str = self.param("key")
        self.capacity: Optional[int] = self.param("capacity", None)
        if self.capacity is not None and int(self.capacity) <= 0:
            raise GraphError(f"{ctx.full_name}: Dedup capacity must be positive")
        #: key -> [first-seen arrival seq, occurrence count]; the seq lives
        #: inside the keyed entry so capacity eviction keeps working after
        #: a migration moved part of the seen-set to another channel
        self._seen = self.state.keyed("seen")
        self._next_seq = self.state.global_("nextSeq", default=int)
        #: in-memory eviction accel (rebuilds itself after migrations /
        #: rehydrations) — the authoritative first-seen seqs stay inside
        #: the migratable entries
        self._index = KeyedSeqIndex(self._seen, lambda entry: (entry[0],))
        self._seq_floor_version = -1
        self.n_duplicates = self.create_custom_metric(
            "nDuplicates", MetricKind.COUNTER, "tuples dropped as repeats"
        )

    def _resync_seq_floor(self) -> None:
        """Keep the channel-local seq counter above migrated-in seqs so
        first-seen ordering stays meaningful after a partition merge."""
        if self._seq_floor_version == self._seen.version:
            return
        max_seq = max((entry[0] for _, entry in self._seen.items()), default=-1)
        if self._next_seq.get(0) <= max_seq:
            self._next_seq.set(max_seq + 1)
        self._seq_floor_version = self._seen.version

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        key_value = tup.get(self.key)
        entry = self._seen.get(key_value)
        if entry is not None:
            entry[1] += 1
            self.n_duplicates.increment()
            return
        self._resync_seq_floor()
        seq = self._next_seq.get(0)
        self._next_seq.set(seq + 1)
        self._seen.put(key_value, [seq, 1])
        self._index.push(seq, key_value)
        if self.capacity is not None:
            while len(self._seen) > int(self.capacity):
                popped = self._index.pop_oldest()
                if popped is None:
                    break
                old_seq, old_key = popped
                old_entry = self._seen.get(old_key)
                if old_entry is None or old_entry[0] != old_seq:
                    continue  # stale index entry (evicted and re-admitted)
                self._seen.delete(old_key)
        self.submit(tup)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if punct is Punctuation.WINDOW:
            self.submit_punct(punct)


class KeyedCounter(Operator):
    """Forwards each tuple with a running per-key occurrence count.

    Parameters: ``key`` (attribute counted on) and ``count_attr`` (output
    attribute, default ``"count"``).  The counts live in keyed state, so
    inside a ``partition_by=key`` parallel region the sequence of counts
    observed downstream for one key is contiguous (1, 2, 3, ...) across
    live rescales *iff* state migration worked — which makes this operator
    the canonical probe for zero-state-loss assertions, on top of being a
    useful keyed running aggregation in its own right.
    """

    STATEFUL = True

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.key: str = self.param("key")
        self.count_attr: str = self.param("count_attr", "count")
        self._counts = self.state.keyed("counts")

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        count = self._counts.update(
            tup.get(self.key), lambda n: n + 1, default=0
        )
        self.submit(tup.with_values(**{self.count_attr: count}))

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if punct is Punctuation.WINDOW:
            self.submit_punct(punct)


class Sink(Operator):
    """Terminal operator: hands each tuple to an optional ``consumer``.

    With ``record=True`` (default) tuples are also kept in ``self.seen``
    so tests and display applications can inspect the stream. The built-in
    ``nFinalPunctsProcessed`` metric on sinks is what Sec. 5.3 uses to
    detect that a C3 application has consumed its whole input.
    """

    N_OUTPUTS = 0

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.consumer: Optional[Callable[[StreamTuple], None]] = self.param(
            "consumer", None
        )
        self.record = bool(self.param("record", True))
        self.seen: List[StreamTuple] = []

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self.record:
            self.seen.append(tup)
        if self.consumer is not None:
            self.consumer(tup)

    def process_batch(self, tuples: List[StreamTuple], port: int) -> None:
        """Vectorized pass: bulk-extend the record, loop the consumer."""
        if self.record:
            self.seen.extend(tuples)
        consumer = self.consumer
        if consumer is not None:
            for tup in tuples:
                consumer(tup)


class Export(Operator):
    """Publishes its input stream for other applications to import.

    Parameters: ``stream_id`` (explicit name) and/or ``properties`` (a dict
    of values importers can match on).  The PE hands exported tuples to the
    runtime's import/export registry, which routes them to every matching
    Import operator of every running job.
    """

    N_OUTPUTS = 0

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.stream_id: Optional[str] = self.param("stream_id", None)
        self.properties: Dict[str, Any] = dict(self.param("properties", {}))
        if self.stream_id is None and not self.properties:
            raise GraphError(
                f"{ctx.full_name}: Export needs a stream_id and/or properties"
            )
        self._export_fn: Optional[Callable[[Any], None]] = None

    def bind_export(self, export_fn: Callable[[Any], None]) -> None:
        """Called by the PE to wire this operator to the registry."""
        self._export_fn = export_fn

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self._export_fn is not None:
            self._export_fn(tup)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if self._export_fn is not None:
            self._export_fn(punct)


class Import(Operator):
    """Receives tuples from matching Export operators of other jobs.

    Parameters: ``stream_id`` (match an export by name) or ``subscription``
    (a dict; matches exports whose properties contain all these key/value
    pairs).  Connections are established and torn down dynamically as
    exporting jobs come and go.
    """

    N_INPUTS = 0
    N_OUTPUTS = 1

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.stream_id: Optional[str] = self.param("stream_id", None)
        self.subscription: Dict[str, Any] = dict(self.param("subscription", {}))
        if self.stream_id is None and not self.subscription:
            raise GraphError(
                f"{ctx.full_name}: Import needs a stream_id or a subscription"
            )

    def deliver(self, item: Union[StreamTuple, Punctuation]) -> None:
        """Called by the import/export registry with remote items."""
        if isinstance(item, StreamTuple):
            self.submit(item)
        elif item is Punctuation.WINDOW:
            self.submit_punct(item)
        # FINAL punctuation from a remote job does NOT finalize the importer:
        # other exporters may still connect later (dynamic composition).


class Custom(Operator):
    """Fully callback-driven operator for one-off logic.

    Parameters (all optional): ``on_tuple_fn(op, tup, port)``,
    ``on_punct_fn(op, punct, port)``, ``on_init_fn(op)``,
    ``on_final_fn(op)``, ``n_inputs``, ``n_outputs``.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self._on_tuple = self.param("on_tuple_fn", None)
        self._on_punct = self.param("on_punct_fn", None)
        self._on_init = self.param("on_init_fn", None)
        self._on_final = self.param("on_final_fn", None)

    def on_initialize(self) -> None:
        if self._on_init is not None:
            self._on_init(self)

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self._on_tuple is not None:
            self._on_tuple(self, tup, port)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if self._on_punct is not None:
            self._on_punct(self, punct, port)

    def on_all_ports_final(self) -> None:
        if self._on_final is not None:
            self._on_final(self)


class LoadShedder(Operator):
    """Probabilistically drops a controllable fraction of tuples.

    The paper's Sec. 1 motivating example: "when the application is
    overloaded due to a transient high input data rate, it may need to
    temporarily apply load shedding policies to maintain answer
    timeliness".  The shedding fraction starts at ``fraction`` (default
    0.0 = pass-through) and is adjusted at runtime through the
    ``setSheddingFraction`` control command — which an orchestrator sends
    via its actuation API when it observes queue build-up.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.fraction = float(self.param("fraction", 0.0))
        self._rng = _random.Random(int(self.param("seed", 1337)))
        self.n_shed = self.create_custom_metric(
            "nShed", MetricKind.COUNTER, "tuples dropped by load shedding"
        )
        self.fraction_gauge = self.create_custom_metric(
            "sheddingFraction", MetricKind.GAUGE, "current shedding fraction"
        )

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self.fraction > 0.0 and self._rng.random() < self.fraction:
            self.n_shed.increment()
            return
        self.submit(tup)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if punct is Punctuation.WINDOW:
            self.submit_punct(punct)

    def on_control(self, command: str, payload: Mapping[str, Any]) -> None:
        if command == "setSheddingFraction":
            fraction = float(payload["fraction"])
            self.fraction = min(max(fraction, 0.0), 1.0)
            self.fraction_gauge.set(self.fraction)


class Throttle(Operator):
    """Re-emits tuples no faster than ``rate`` tuples/second.

    Excess tuples are buffered and drained on a timer; the buffer length is
    exposed through the custom ``nBuffered`` gauge.  FINAL punctuation is
    held back until the buffer is empty so a throttled stream never loses
    its tail (the elastic drain protocol relies on this).

    Subclasses may override :meth:`process` to transform each tuple as it
    leaves the buffer — a rate-limited worker is exactly this machinery
    plus per-tuple work (see :class:`repro.apps.elastic_trend.TrendWorker`).
    """

    FORWARD_FINAL = False

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.rate = float(self.param("rate"))
        if self.rate <= 0:
            raise GraphError(f"{ctx.full_name}: Throttle rate must be positive")
        self._buffer: List[StreamTuple] = []
        self._draining = False
        self._final_pending = False
        self.n_buffered = self.create_custom_metric(
            "nBuffered", MetricKind.GAUGE, "tuples waiting in the throttle"
        )

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        self._buffer.append(tup)
        self.n_buffered.set(len(self._buffer))
        if not self._draining:
            self._draining = True
            self.ctx.schedule(1.0 / self.rate, self._drain_one)

    def on_all_ports_final(self) -> None:
        if self._buffer:
            self._final_pending = True
        else:
            self.submit_final()

    def pending_items(self) -> int:
        return len(self._buffer)

    def process(self, tup: StreamTuple) -> Submittable:
        """Hook: what to emit for a drained tuple (identity by default)."""
        return tup

    def _drain_one(self) -> None:
        if self._buffer:
            self.submit(self.process(self._buffer.pop(0)))
            self.n_buffered.set(len(self._buffer))
        if self._buffer:
            self.ctx.schedule(1.0 / self.rate, self._drain_one)
        else:
            self._draining = False
            if self._final_pending:
                self._final_pending = False
                self.submit_final()


# ---------------------------------------------------------------------------
# Parallel-region plumbing (see repro.spl.parallel and repro.elastic)
# ---------------------------------------------------------------------------


def _stable_hash(value: Any) -> int:
    """Deterministic cross-run hash (``hash(str)`` is salted per process)."""
    return zlib.crc32(str(value).encode("utf8"))


def stable_channel_of(value: Any, width: int) -> int:
    """Owner channel of a partition key at the given region width.

    The single source of truth shared by the :class:`ParallelSplitter`'s
    routing and the elastic state-migration planner — both must agree on
    ``hash(key) % width`` or a migrated partition would land on a channel
    the splitter never routes its key to.
    """
    return _stable_hash(value) % width


def detour_channel_of(value: Any, width: int, masked: "set") -> int:
    """Channel a partition key routes to while some channels are masked.

    The owner channel when it is alive; otherwise the deterministic detour
    over the surviving channels.  Used by the elastic controller's detour
    state seeding; must stay in lockstep with
    :meth:`ParallelSplitter._channel_of` (the per-tuple hot path keeps
    its own single-hash copy of this logic), or state would be seeded
    onto a channel the key never visits.
    """
    digest = _stable_hash(value)
    channel = digest % width
    if channel in masked:
        alive = [c for c in range(width) if c not in masked]
        if alive:
            return alive[digest % len(alive)]
    return channel


class ParallelSplitter(Operator):
    """Entry operator of a parallel region: routes tuples onto N channels.

    Inserted by the compiler when it expands a ``parallel(width=N)``
    annotation.  Routing is hash-based on the ``partition_by`` attribute
    when one is declared (so stateful per-key workers see a stable key
    partitioning), round-robin otherwise.  When the region is ``ordered``,
    every forwarded tuple is stamped with a region-global sequence number
    (``_pseq``) that the matching :class:`OrderedMerger` uses to restore
    tuple order across channels.

    The splitter is also the barrier point of the elastic
    re-parallelization protocol (Fries-style epoch alignment): on the
    ``quiesce`` control command it stops forwarding and buffers arrivals;
    ``resume`` installs the new width, increments the reconfiguration
    epoch, and flushes the buffer through the new routing — which is what
    makes a live rescale tuple-loss-free by construction.

    Channels whose PE crashed can be *masked* (``maskChannel`` /
    ``unmaskChannel`` control commands, driven by the elastic controller
    on ``pe_failure`` / ``restart_pe``): a masked channel is taken out of
    the hash ring and round-robin rotation, so tuples are rerouted to the
    surviving channels instead of being fed to a dead PE.  Keyed state
    accrued on the detour channels is *purged* by the elastic controller
    when the channel is unmasked — the restarted channel starts empty
    (the paper's no-checkpoint failure semantics), and stale detour
    entries must not outlive the detour or a later rescale would migrate
    them over the owner's fresher state.
    """

    N_INPUTS = 1
    FORWARD_FINAL = False

    @classmethod
    def port_counts(cls, params: Mapping[str, Any]) -> Tuple[int, int]:
        return 1, int(params.get("width", 2))

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.width = int(self.param("width"))
        if self.width < 1:
            raise GraphError(f"{ctx.full_name}: splitter width must be >= 1")
        self.partition_by: Optional[str] = self.param("partition_by", None)
        self.ordered = bool(self.param("ordered", True))
        self.region: str = self.param("region", ctx.full_name)
        self._rr = 0
        self._seq = 0
        self._quiesced = False
        #: channels currently routed around (their PE is down)
        self._masked: set = set()
        #: items held at the barrier: tuples and WINDOW puncts, in order
        self._buffer: List[Union[StreamTuple, Punctuation]] = []
        self._final_pending = False
        self.epoch = 0
        self.width_gauge = self.create_custom_metric(
            "channelWidth", MetricKind.GAUGE, "active channel count"
        )
        self.width_gauge.set(self.width)
        self.epoch_gauge = self.create_custom_metric(
            "reconfigEpoch", MetricKind.GAUGE, "completed reconfiguration epochs"
        )
        self.quiesced_gauge = self.create_custom_metric(
            "nQuiescedBuffered", MetricKind.GAUGE, "tuples held during a rescale"
        )
        self.masked_gauge = self.create_custom_metric(
            "nMaskedChannels", MetricKind.GAUGE, "channels routed around"
        )
        self.rerouted_counter = self.create_custom_metric(
            "nReroutedTuples", MetricKind.COUNTER,
            "tuples diverted off a masked channel",
        )

    # -- routing ---------------------------------------------------------------

    @property
    def masked_channels(self) -> set:
        return set(self._masked)

    def _channel_of(self, tup: StreamTuple) -> int:
        if self.partition_by is not None:
            # single-hash copy of detour_channel_of(): this is the
            # per-tuple hot path, and both must agree on the detour target
            digest = _stable_hash(tup.get(self.partition_by))
            channel = digest % self.width
            if channel in self._masked:
                alive = [c for c in range(self.width) if c not in self._masked]
                if alive:
                    channel = alive[digest % len(alive)]
                    self.rerouted_counter.increment()
            return channel
        for _ in range(self.width):
            channel = self._rr
            self._rr = (self._rr + 1) % self.width
            if channel not in self._masked:
                return channel
        return channel  # every channel masked: nowhere better to go

    def _forward(self, tup: StreamTuple) -> None:
        channel = self._channel_of(tup)
        if self.ordered:
            stamped = StreamTuple(
                {**tup.values, "_pseq": self._seq}, created_at=tup.created_at
            )
            self._seq += 1
            self.submit(stamped, port=channel)
        else:
            self.submit(tup, port=channel)

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self._quiesced:
            self._buffer.append(tup)
            self.quiesced_gauge.set(len(self._buffer))
        else:
            self._forward(tup)

    def process_batch(self, tuples: List[StreamTuple], port: int) -> None:
        """Route a whole batch in one hash pass into per-channel sub-batches.

        Quiesced, the run joins the barrier buffer unchanged (a rescale
        must not see tuples slip past).  Otherwise every member is hashed
        exactly once, ordered regions stamp ``_pseq`` from one local
        counter in arrival order (identical stamps to the per-tuple
        path), and each channel receives its sub-batch through a single
        batched submission — which the matching :class:`OrderedMerger`
        consumes sub-batch by sub-batch.
        """
        if self._quiesced:
            self._buffer.extend(tuples)
            self.quiesced_gauge.set(len(self._buffer))
            return
        channel_of = self._channel_of
        by_channel: Dict[int, List[StreamTuple]] = {}
        if self.ordered:
            seq = self._seq
            for tup in tuples:
                channel = channel_of(tup)
                stamped = StreamTuple(
                    {**tup.values, "_pseq": seq}, created_at=tup.created_at
                )
                seq += 1
                by_channel.setdefault(channel, []).append(stamped)
            self._seq = seq
        else:
            for tup in tuples:
                by_channel.setdefault(channel_of(tup), []).append(tup)
        for channel in sorted(by_channel):
            self.submit_batch(by_channel[channel], port=channel)

    def _broadcast_window(self) -> None:
        for out_port in range(self.width):
            self.submit_punct(Punctuation.WINDOW, port=out_port)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        if punct is not Punctuation.WINDOW:
            return
        if self._quiesced:
            # window boundaries are held at the barrier alongside tuples so
            # a rescale never merges two windows into one
            self._buffer.append(punct)
            self.quiesced_gauge.set(len(self._buffer))
        else:
            self._broadcast_window()

    def on_all_ports_final(self) -> None:
        if self._quiesced or self._buffer:
            self._final_pending = True
        else:
            self.submit_final()

    @property
    def is_quiesced(self) -> bool:
        return self._quiesced

    def pending_items(self) -> int:
        return len(self._buffer)

    def pending_tuples(self) -> int:
        # the quiesce buffer holds WINDOW punctuations alongside tuples;
        # crash-loss accounting must not count those as condemned data
        return sum(1 for item in self._buffer if isinstance(item, StreamTuple))

    # -- control (driven by the ElasticController) -----------------------------

    def _set_width(self, width: int) -> None:
        width = int(width)
        if width < 1:
            raise GraphError(f"{self.ctx.full_name}: width must be >= 1")
        for port in range(self.n_outputs, width):
            self.metrics.get_or_create(
                OperatorMetricName.N_TUPLES_SUBMITTED, MetricKind.COUNTER, port=port
            )
        self.width = width
        self.n_outputs = width
        self._rr %= width
        self._masked = {c for c in self._masked if c < width}
        self.width_gauge.set(width)
        self.masked_gauge.set(len(self._masked))

    def on_control(self, command: str, payload: Mapping[str, Any]) -> None:
        if command == "maskChannel":
            channel = int(payload["channel"])
            if 0 <= channel < self.width:
                self._masked.add(channel)
                self.masked_gauge.set(len(self._masked))
        elif command == "unmaskChannel":
            self._masked.discard(int(payload["channel"]))
            self.masked_gauge.set(len(self._masked))
        elif command == "quiesce":
            self._quiesced = True
        elif command == "setWidth":
            self._set_width(int(payload["width"]))
        elif command == "resume":
            if "width" in payload:
                self._set_width(int(payload["width"]))
            if "epoch" in payload:
                self.epoch = int(payload["epoch"])
                self.epoch_gauge.set(self.epoch)
            self._quiesced = False
            buffered, self._buffer = self._buffer, []
            for item in buffered:
                if isinstance(item, StreamTuple):
                    self._forward(item)
                else:
                    self._broadcast_window()
            self.quiesced_gauge.set(0)
            if self._final_pending:
                self._final_pending = False
                self.submit_final()


class OrderedMerger(Operator):
    """Exit operator of a parallel region: funnels N channels into one stream.

    When the region is ``ordered`` the merger restores the splitter's
    sequence order: tuples carrying a ``_pseq`` stamp are held in a reorder
    buffer and emitted strictly in sequence (the stamp is stripped before
    forwarding).  Tuples without a stamp — e.g. produced by a worker that
    does not propagate ``_pseq`` — pass through in arrival order.  On FINAL
    the reorder buffer is flushed even if gaps remain (a worker may
    legitimately drop tuples).

    A crashed channel loses its in-flight tuples (Sec. 5.2 semantics), which
    would leave a *permanent* hole in the sequence and stall the reorder
    buffer forever.  ``reorder_grace`` bounds that stall per *tuple*: each
    buffered tuple remembers its arrival time, and once the lowest buffered
    seq has waited a full grace period the holes below it are declared dead
    and skipped (counted by ``nSeqGapsSkipped``).  Because expiry is judged
    per arrival rather than by flushing the whole buffer, ``_next`` (and
    hence the emitted sequence) advances monotonically even when several
    consecutive channels crash: recently-arrived tuples from slow-but-alive
    channels are never flushed past, so they cannot later surface out of
    order.  A straggler arriving after its seq was skipped is still emitted
    immediately rather than dropped.
    """

    N_OUTPUTS = 1
    FORWARD_FINAL = True
    #: tolerance for grace expiry: a re-armed guard can fire a few float
    #: ULPs before ``arrival + grace``; without the slack the check would
    #: re-arm a zero-length timer forever at the same simulated instant
    _GRACE_EPS = 1e-9

    @classmethod
    def port_counts(cls, params: Mapping[str, Any]) -> Tuple[int, int]:
        return int(params.get("width", 2)), 1

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        if int(self.param("width")) < 1:
            raise GraphError(f"{ctx.full_name}: merger width must be >= 1")
        self.ordered = bool(self.param("ordered", True))
        self.region: str = self.param("region", ctx.full_name)
        self.reorder_grace = float(self.param("reorder_grace", 30.0))
        self._next = 0
        #: seq -> (tuple, arrival time); arrival drives per-tuple expiry
        self._pending: Dict[int, Tuple[StreamTuple, float]] = {}
        self._guard_armed = False
        self.reorder_gauge = self.create_custom_metric(
            "nReordered", MetricKind.GAUGE, "tuples waiting in the reorder buffer"
        )
        self.gaps_skipped = self.create_custom_metric(
            "nSeqGapsSkipped", MetricKind.COUNTER,
            "sequence holes skipped after the reorder grace period",
        )

    @staticmethod
    def _strip(tup: StreamTuple) -> StreamTuple:
        if "_pseq" not in tup.values:
            return tup
        values = {k: v for k, v in tup.values.items() if k != "_pseq"}
        return StreamTuple(values, created_at=tup.created_at)

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if not self.ordered:
            self.submit(self._strip(tup))
            return
        seq = tup.get("_pseq")
        if seq is None:
            self.submit(tup)
            return
        if seq < self._next:
            # straggler behind a skipped gap: deliver rather than drop
            self.submit(self._strip(tup))
            return
        self._pending[seq] = (tup, self.now())
        self._release_ready()

    def process_batch(self, tuples: List[StreamTuple], port: int) -> None:
        """Consume one sub-batch, releasing in-sequence runs as one batch.

        Per-member semantics match :meth:`on_tuple` exactly (unstamped
        tuples and stragglers behind a skipped gap pass straight
        through); every tuple that becomes releasable while the batch is
        consumed leaves through a single batched submission, in the same
        order the per-tuple path would have emitted.
        """
        if not self.ordered:
            self.submit_batch([self._strip(tup) for tup in tuples])
            return
        pending = self._pending
        now = self.now()
        out: List[StreamTuple] = []
        for tup in tuples:
            seq = tup.get("_pseq")
            if seq is None:
                out.append(tup)
                continue
            if seq < self._next:
                out.append(self._strip(tup))
                continue
            pending[seq] = (tup, now)
            while self._next in pending:
                ready, _ = pending.pop(self._next)
                out.append(self._strip(ready))
                self._next += 1
        if out:
            self.submit_batch(out)
        self.reorder_gauge.set(len(pending))
        self._arm_guard()

    def _release_ready(self) -> None:
        while self._next in self._pending:
            tup, _ = self._pending.pop(self._next)
            self.submit(self._strip(tup))
            self._next += 1
        self.reorder_gauge.set(len(self._pending))
        self._arm_guard()

    def _arm_guard(self) -> None:
        """Schedule hole expiry for when the oldest buffered tuple has
        waited a full grace period (one timer outstanding at a time)."""
        if self._guard_armed or not self._pending or self.reorder_grace <= 0:
            return
        oldest = min(arrival for _, arrival in self._pending.values())
        delay = max(self.reorder_grace - (self.now() - oldest), 0.0)
        self._guard_armed = True
        self.ctx.schedule(delay, self._expire_holes)

    def _expire_holes(self) -> None:
        """Skip holes that some buffered tuple has waited out.

        The head hole (the missing ``_next``) is at least as old as every
        pending tuple above it, so once the *oldest pending arrival* is a
        full grace period in the past the hole is declared dead (its
        channel crashed) and ``_next`` jumps forward to the lowest buffered
        seq.  The evidence is re-evaluated after each release: holes whose
        only witnesses are fresh arrivals stay open, so tuples from a
        slow-but-alive channel are never flushed past, and ``_next`` (and
        the emitted sequence) advances monotonically even when several
        consecutive channels crash.  Each lost tuple stalls the stream at
        most one grace period, because expiries pipeline per arrival
        instead of restarting a global timer per hole.
        """
        self._guard_armed = False
        if self._finalized or not self._pending:
            return
        now = self.now()
        while self._pending:
            oldest = min(arrival for _, arrival in self._pending.values())
            if now - oldest < self.reorder_grace - self._GRACE_EPS:
                break
            head = min(self._pending)
            if head > self._next:
                self.gaps_skipped.increment()
            self._next = head
            while self._next in self._pending:
                tup, _ = self._pending.pop(self._next)
                self.submit(self._strip(tup))
                self._next += 1
        self.reorder_gauge.set(len(self._pending))
        self._arm_guard()

    def on_punct(self, punct: Punctuation, port: int) -> None:
        # WINDOW puncts are not meaningful across a merge; FINAL handling
        # (wait for all ports) is done by the base class.
        return

    def on_all_ports_final(self) -> None:
        for seq in sorted(self._pending):
            tup, _ = self._pending.pop(seq)
            self._next = max(self._next, seq + 1)
            self.submit(self._strip(tup))
        self.reorder_gauge.set(0)

    def pending_items(self) -> int:
        return len(self._pending)

    def set_width(self, width: int) -> None:
        width = int(width)
        if width < 1:
            raise GraphError(f"{self.ctx.full_name}: width must be >= 1")
        for port in range(self.n_inputs, width):
            self.metrics.get_or_create(
                OperatorMetricName.N_TUPLES_PROCESSED, MetricKind.COUNTER, port=port
            )
            self.metrics.get_or_create(
                OperatorMetricName.QUEUE_SIZE, MetricKind.GAUGE, port=port
            )
        self.n_inputs = width

    def on_control(self, command: str, payload: Mapping[str, Any]) -> None:
        if command == "setWidth":
            self.set_width(int(payload["width"]))
