"""Application: a named logical graph plus its host pools.

An :class:`Application` is what a developer submits: the logical operator
graph, the host pools it may run on, and declared submission-time
parameters.  Compiling it (see :mod:`repro.spl.compiler`) produces the PE
partitioning and the ADL document that the runtime and the orchestrator
consume.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import GraphError
from repro.spl.graph import LogicalGraph
from repro.spl.hostpool import HostPool, HostPoolSet


class Application:
    """A composable streaming application."""

    def __init__(self, name: str, version: str = "1.0") -> None:
        if not name or any(ch in name for ch in ".,/ "):
            raise GraphError(f"invalid application name {name!r}")
        self.name = name
        self.version = version
        self.graph = LogicalGraph()
        self.host_pools = HostPoolSet()
        #: Declared submission-time parameters and their defaults; a value
        #: of ``None`` marks the parameter as required at submission.
        self.parameters: Dict[str, Optional[str]] = {}

    # -- host pools ------------------------------------------------------------

    def add_host_pool(self, pool: HostPool) -> HostPool:
        self.host_pools.add(pool)
        return pool

    # -- submission-time parameters ----------------------------------------------

    def declare_parameter(self, name: str, default: Optional[str] = None) -> None:
        """Declare a submission-time parameter (SPL submission values)."""
        self.parameters[name] = default

    def resolve_parameters(self, given: Optional[Dict[str, str]] = None) -> Dict[str, str]:
        """Merge given submission values over declared defaults; check required."""
        given = dict(given or {})
        unknown = set(given) - set(self.parameters)
        if unknown:
            raise GraphError(
                f"application {self.name!r}: unknown submission parameters {sorted(unknown)}"
            )
        resolved: Dict[str, str] = {}
        for name, default in self.parameters.items():
            if name in given:
                resolved[name] = given[name]
            elif default is not None:
                resolved[name] = default
            else:
                raise GraphError(
                    f"application {self.name!r}: required parameter {name!r} missing"
                )
        return resolved

    # -- validation --------------------------------------------------------------

    def validate(self) -> None:
        """Check graph structure and that referenced pools exist."""
        self.graph.validate(require_connected_inputs=True)
        for spec in self.graph.operators.values():
            if spec.host_pool is not None and spec.host_pool not in self.host_pools:
                raise GraphError(
                    f"operator {spec.full_name!r} references undeclared "
                    f"host pool {spec.host_pool!r}"
                )

    def export_specs(self) -> List[Dict[str, Any]]:
        """Export declarations (from Export operators), for the ADL."""
        result = []
        for spec in self.graph.operators.values():
            if spec.kind == "Export":
                result.append(
                    {
                        "operator": spec.full_name,
                        "stream_id": spec.params.get("stream_id"),
                        "properties": dict(spec.params.get("properties", {})),
                    }
                )
        return result

    def import_specs(self) -> List[Dict[str, Any]]:
        """Import declarations (from Import operators), for the ADL."""
        result = []
        for spec in self.graph.operators.values():
            if spec.kind == "Import":
                result.append(
                    {
                        "operator": spec.full_name,
                        "stream_id": spec.params.get("stream_id"),
                        "subscription": dict(spec.params.get("subscription", {})),
                    }
                )
        return result

    def __repr__(self) -> str:
        return f"Application({self.name!r}, {self.graph!r})"
