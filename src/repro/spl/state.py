"""Partitioned operator state: the StateStore layer.

PR 1's elastic parallel regions remap ``hash(key) % width`` on rescale, so
keyed operator state held in ad-hoc instance attributes silently restarts
on its new channel.  This module makes operator state *explicit* so every
adaptation routine — live re-parallelization, PE restart rehydration,
periodic checkpointing, state-aware scaling policies — can reason about it:

* :class:`KeyedState` — a named map ``partition key -> value``.  Keys are
  the unit of migration: when a parallel region changes width, the elastic
  controller extracts the entries whose ``hash(key) % width'`` owner
  changed and installs them on their new channel (Fries-style: state moves
  transactionally with the routing change).
* :class:`GlobalState` — a named single value (often a list or a window
  object) that belongs to the operator instance as a whole.  Global state
  cannot be re-partitioned; on a scale-in the doomed channels' global
  state is dropped (and counted) — unless the region declares a
  ``global_merge`` hook, in which case it is folded into a survivor.
* :class:`StateStore` — the per-operator collection of named states,
  reachable as ``self.state`` from any :class:`~repro.spl.operators.Operator`
  (``state.keyed(name)`` / ``state.global_(name)``).  It snapshots and
  restores as a plain dict so PE restarts can optionally rehydrate.

Handles stay valid across ``restore()``/``install()``: both mutate the
named state objects in place, so an operator may cache
``self._counts = self.state.keyed("counts")`` in ``__init__`` and never
notice that a migration or a rehydration swapped the contents underneath.

Keyed state in a partitioned parallel region must be keyed by the region's
``partition_by`` attribute value — that is the contract that makes
ownership computable as ``hash(key) % width`` on both the splitter and the
migration planner.

**Dirty tracking.**  Every keyed state tracks which keys were touched
since the last :meth:`KeyedState.mark_clean` so the checkpoint subsystem
(:mod:`repro.checkpoint`) can capture *incremental* snapshots: a hot loop
that keeps hammering a few keys never forces the cold partitions to be
re-serialized.  Handing out a mutable value (``get`` on a present key,
``setdefault``) counts as a potential write — operators routinely mutate
entries in place — so the tracking errs on the safe side.
"""

from __future__ import annotations

import copy
import heapq
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

#: one accounting scheme for tuple wire sizes and stateBytes gauges
from repro.spl.tuples import estimate_value_size  # noqa: F401  (re-export)


class KeyedState:
    """A named keyed state: ``partition key -> value``.

    The value may be anything copyable (a count, a list of tuples, a
    window object...).  :meth:`extract_partition` / :meth:`install` are
    the migration primitives used by :mod:`repro.elastic`, and
    :meth:`dirty_snapshot` / :meth:`mark_clean` are the incremental
    checkpoint primitives used by :mod:`repro.checkpoint`.

    ``version`` increments on every *external* bulk mutation (install,
    restore, extract, clear) — operators that maintain in-memory indexes
    over the state (eviction heaps, counts) compare it to know when a
    migration or rehydration changed the contents underneath them.
    """

    def __init__(self, name: str) -> None:
        """Create an empty keyed state.

        Args:
            name: State name, unique within the owning :class:`StateStore`.
        """
        self.name = name
        self._data: Dict[Any, Any] = {}
        #: bumped by install/restore/extract_partition/clear
        self.version = 0
        #: keys touched (written, or handed out mutably) since mark_clean
        self._dirty: Set[Any] = set()
        #: keys removed since mark_clean (checkpoint deltas need deletions)
        self._dropped: Set[Any] = set()
        #: True until the first mark_clean, and again after any bulk
        #: mutation that invalidates per-key deltas (restore, clear)
        self._full_dirty = True

    # -- mapping access --------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value stored for ``key``.

        A present key is marked dirty: the returned value is the live
        object and callers routinely mutate it in place.

        Args:
            key: Partition key to look up.
            default: Returned (and *not* stored) when the key is absent.

        Returns:
            The stored value, or ``default`` when the key is absent.
        """
        if key in self._data:
            self._touch(key)
        return self._data.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        """Store ``value`` under ``key``, overwriting any previous value.

        Args:
            key: Partition key to write.
            value: Value to store.
        """
        self._touch(key)
        self._data[key] = value

    def setdefault(self, key: Any, factory: Callable[[], Any]) -> Any:
        """Return the value for ``key``, creating it when absent.

        Args:
            key: Partition key to look up or create.
            factory: Zero-argument callable producing the initial value.

        Returns:
            The (possibly just created) live value for ``key``.
        """
        self._touch(key)
        if key not in self._data:
            self._data[key] = factory()
        return self._data[key]

    def update(self, key: Any, fn: Callable[[Any], Any], default: Any = None) -> Any:
        """Apply ``fn`` to the current value (or ``default``); store the result.

        Args:
            key: Partition key to update.
            fn: Mapping from the current value to the new value.
            default: Input to ``fn`` when the key is absent.

        Returns:
            The newly stored value.
        """
        self._touch(key)
        value = fn(self._data.get(key, default))
        self._data[key] = value
        return value

    def delete(self, key: Any) -> bool:
        """Remove ``key`` from the state.

        Args:
            key: Partition key to remove.

        Returns:
            True when the key was present.
        """
        removed = self._data.pop(key, _MISSING) is not _MISSING
        if removed:
            self._drop(key)
        return removed

    def __contains__(self, key: Any) -> bool:
        """Return True when ``key`` is stored (no dirty marking)."""
        return key in self._data

    def __len__(self) -> int:
        """Return the number of stored keys."""
        return len(self._data)

    def keys(self) -> List[Any]:
        """Return a list of all stored keys (a read-only view by contract)."""
        return list(self._data)

    def items(self) -> List[Tuple[Any, Any]]:
        """Return ``(key, value)`` pairs (a read-only view by contract).

        Mutating values obtained through this view is not dirty-tracked;
        use :meth:`get` / :meth:`put` / :meth:`update` for writes.
        """
        return list(self._data.items())

    def clear(self) -> None:
        """Drop every entry and invalidate per-key checkpoint deltas."""
        self._data.clear()
        self.version += 1
        self._invalidate_deltas()

    # -- dirty tracking (repro.checkpoint) --------------------------------------

    def _touch(self, key: Any) -> None:
        self._dirty.add(key)
        self._dropped.discard(key)

    def _drop(self, key: Any) -> None:
        self._dirty.discard(key)
        self._dropped.add(key)

    def _invalidate_deltas(self) -> None:
        self._full_dirty = True
        self._dirty.clear()
        self._dropped.clear()

    def dirty_snapshot(self) -> Tuple[bool, Dict[Any, Any], Set[Any]]:
        """Capture the changes since the last :meth:`mark_clean`.

        Returns:
            A ``(full, changed, dropped)`` triple.  When ``full`` is True
            the per-key delta is unavailable (first capture, or a bulk
            restore/clear happened) and ``changed`` holds a deep copy of
            the *entire* state; otherwise ``changed`` holds deep copies of
            only the dirty keys' values and ``dropped`` the keys removed
            since the last clean point.
        """
        if self._full_dirty:
            return True, copy.deepcopy(self._data), set()
        changed = {
            key: copy.deepcopy(self._data[key])
            for key in self._dirty
            if key in self._data
        }
        return False, changed, set(self._dropped)

    def mark_clean(self) -> None:
        """Reset dirty tracking after a successfully committed capture."""
        self._full_dirty = False
        self._dirty.clear()
        self._dropped.clear()

    @property
    def dirty_count(self) -> int:
        """Number of keys currently tracked as changed or dropped."""
        if self._full_dirty:
            return len(self._data)
        return len(self._dirty) + len(self._dropped)

    # -- migration primitives ---------------------------------------------------

    def extract_partition(self, predicate: Callable[[Any], bool]) -> Dict[Any, Any]:
        """Remove and return every entry whose key satisfies ``predicate``.

        The extracted dict is the *live* values (not copies): the caller
        owns them exclusively from this point on, which is exactly the
        transactional hand-off a migration needs.

        Args:
            predicate: Key filter selecting the entries to extract.

        Returns:
            The removed ``key -> value`` entries.
        """
        moving = [key for key in self._data if predicate(key)]
        if moving:
            self.version += 1
        extracted = {key: self._data.pop(key) for key in moving}
        for key in extracted:
            self._drop(key)
        return extracted

    def install(
        self,
        entries: Dict[Any, Any],
        merge_fn: Optional[Callable[[Any, Any], Any]] = None,
    ) -> None:
        """Install migrated entries into this state.

        Args:
            entries: ``key -> value`` entries to take ownership of.
            merge_fn: Optional collision resolver ``(existing, incoming) ->
                merged``; by default the incoming value wins (collisions
                only occur when partitions from several source channels
                merge onto one).
        """
        if entries:
            self.version += 1
        for key, value in entries.items():
            self._touch(key)
            if merge_fn is not None and key in self._data:
                self._data[key] = merge_fn(self._data[key], value)
            else:
                self._data[key] = value

    # -- snapshot ---------------------------------------------------------------

    def snapshot(self) -> Dict[Any, Any]:
        """Return a detached deep copy of the whole ``key -> value`` map."""
        return copy.deepcopy(self._data)

    def restore(self, payload: Dict[Any, Any]) -> None:
        """Replace the contents with a deep copy of ``payload``.

        Args:
            payload: A map previously produced by :meth:`snapshot` (or an
                equivalent plain dict).
        """
        self._data = copy.deepcopy(payload)
        self.version += 1
        self._invalidate_deltas()

    def size_bytes(self) -> int:
        """Return the estimated byte footprint of all keys and values."""
        return sum(
            estimate_value_size(k) + estimate_value_size(v)
            for k, v in self._data.items()
        )

    def __repr__(self) -> str:
        """Return a short debugging representation."""
        return f"KeyedState({self.name!r}, {len(self._data)} keys)"


_MISSING = object()


class KeyedSeqIndex:
    """Oldest-first in-memory index over a :class:`KeyedState` whose
    entries embed their arrival sequence numbers.

    The authoritative data — the seqs inside the entries — migrates with
    the keys; this index is disposable accel structure.  It rebuilds
    itself from the store (via ``seqs_of``) whenever the store's
    ``version`` shows an external mutation (migration install/extract,
    rehydration), and uses lazy deletion: :meth:`pop_oldest` may return a
    ``(seq, key)`` that is no longer live, so callers must verify the
    entry still carries that seq before acting on it.
    """

    def __init__(
        self, keyed: KeyedState, seqs_of: Callable[[Any], Iterable[int]]
    ) -> None:
        """Build an index over ``keyed``.

        Args:
            keyed: The keyed state to index.
            seqs_of: Maps one stored entry to the arrival seqs it contains.
        """
        self._keyed = keyed
        self._seqs_of = seqs_of
        self._heap: List[Tuple[int, int, Any]] = []
        self._synced_version = -1
        self._tiebreak = 0  #: keeps heap comparisons off (uncomparable) keys

    def _resync(self) -> None:
        if self._synced_version == self._keyed.version:
            return
        heap: List[Tuple[int, int, Any]] = []
        for key, entry in self._keyed.items():
            for seq in self._seqs_of(entry):
                self._tiebreak += 1
                heap.append((seq, self._tiebreak, key))
        heapq.heapify(heap)
        self._heap = heap
        self._synced_version = self._keyed.version

    def push(self, seq: int, key: Any) -> None:
        """Record that ``key`` gained an entry with arrival seq ``seq``.

        Args:
            seq: Arrival sequence number.
            key: Partition key the entry lives under.
        """
        self._resync()
        self._tiebreak += 1
        heapq.heappush(self._heap, (seq, self._tiebreak, key))

    def pop_oldest(self) -> Optional[Tuple[int, Any]]:
        """Pop the lowest ``(seq, key)`` in the index.

        Returns:
            The oldest indexed pair, or None when the index is exhausted.
            The pair may be stale (lazy deletion) — callers must verify.
        """
        self._resync()
        if not self._heap:
            return None
        seq, _tiebreak, key = heapq.heappop(self._heap)
        return seq, key


class GlobalState:
    """A named, non-partitioned value owned by one operator instance.

    Global values are handed out live (``.value``) and mutated in place,
    so checkpoints always re-capture them in full — there is no per-key
    delta to track.
    """

    def __init__(self, name: str, default: Optional[Callable[[], Any]] = None) -> None:
        """Create a global state.

        Args:
            name: State name, unique within the owning :class:`StateStore`.
            default: Optional zero-argument factory for the initial value.
        """
        self.name = name
        self._value: Any = default() if default is not None else None

    @property
    def value(self) -> Any:
        """The live stored value (mutable in place)."""
        return self._value

    @value.setter
    def value(self, new_value: Any) -> None:
        """Replace the stored value (property form of :meth:`set`)."""
        self._value = new_value

    def get(self, default: Any = None) -> Any:
        """Return the stored value.

        Args:
            default: Returned when the stored value is None.

        Returns:
            The stored value, or ``default`` when unset.
        """
        return self._value if self._value is not None else default

    def set(self, value: Any) -> None:
        """Replace the stored value.

        Args:
            value: The new value.
        """
        self._value = value

    def snapshot(self) -> Any:
        """Return a detached deep copy of the stored value."""
        return copy.deepcopy(self._value)

    def restore(self, payload: Any) -> None:
        """Replace the stored value with a deep copy of ``payload``.

        Args:
            payload: A value previously produced by :meth:`snapshot`.
        """
        self._value = copy.deepcopy(payload)

    def size_bytes(self) -> int:
        """Return the estimated byte footprint of the stored value."""
        return estimate_value_size(self._value)

    def __repr__(self) -> str:
        """Return a short debugging representation."""
        return f"GlobalState({self.name!r})"


class StateStore:
    """All named states of one operator instance.

    Created by the :class:`~repro.spl.operators.OperatorContext`; operators
    reach it as ``self.state``.  ``snapshot()`` returns a plain dict
    (deep-copied, safe to hold across mutations); ``restore()`` re-installs
    a snapshot *in place*, so handles returned by :meth:`keyed` /
    :meth:`global_` before the restore stay valid.
    """

    def __init__(self) -> None:
        """Create an empty store."""
        self._keyed: Dict[str, KeyedState] = {}
        self._global: Dict[str, GlobalState] = {}

    # -- named state access ------------------------------------------------------

    def keyed(self, name: str) -> KeyedState:
        """Return the named keyed state, creating it on first use.

        Args:
            name: State name.

        Returns:
            The (stable) :class:`KeyedState` handle.
        """
        state = self._keyed.get(name)
        if state is None:
            state = KeyedState(name)
            self._keyed[name] = state
        return state

    def global_(self, name: str, default: Optional[Callable[[], Any]] = None) -> GlobalState:
        """Return the named global state, creating it on first use.

        Args:
            name: State name.
            default: Optional initial-value factory, used only on creation.

        Returns:
            The (stable) :class:`GlobalState` handle.
        """
        state = self._global.get(name)
        if state is None:
            state = GlobalState(name, default)
            self._global[name] = state
        return state

    @property
    def in_use(self) -> bool:
        """True when at least one named state has been declared."""
        return bool(self._keyed or self._global)

    def keyed_states(self) -> Dict[str, KeyedState]:
        """Return a name -> :class:`KeyedState` map (copy of the registry)."""
        return dict(self._keyed)

    def global_states(self) -> Dict[str, GlobalState]:
        """Return a name -> :class:`GlobalState` map (copy of the registry)."""
        return dict(self._global)

    def __iter__(self) -> Iterator[str]:
        """Yield every declared state name (keyed first, then global)."""
        yield from self._keyed
        yield from self._global

    # -- accounting --------------------------------------------------------------

    def n_keys(self) -> int:
        """Return the total keyed entries across all named keyed states."""
        return sum(len(state) for state in self._keyed.values())

    def size_bytes(self) -> int:
        """Return the estimated byte footprint of every named state."""
        return sum(s.size_bytes() for s in self._keyed.values()) + sum(
            s.size_bytes() for s in self._global.values()
        )

    # -- snapshot / restore -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Capture every named state as one detached payload.

        Returns:
            ``{"keyed": {name: map}, "global": {name: value}}`` with all
            contents deep-copied.
        """
        return {
            "keyed": {name: s.snapshot() for name, s in self._keyed.items()},
            "global": {name: s.snapshot() for name, s in self._global.items()},
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        """Re-install a :meth:`snapshot` payload in place.

        Args:
            payload: A dict previously produced by :meth:`snapshot`.
        """
        for name, data in payload.get("keyed", {}).items():
            self.keyed(name).restore(data)
        for name, data in payload.get("global", {}).items():
            self.global_(name).restore(data)

    def clear(self) -> None:
        """Empty every named state (handles stay valid)."""
        for state in self._keyed.values():
            state.clear()
        for state in self._global.values():
            state._value = None

    def __repr__(self) -> str:
        """Return a short debugging representation."""
        return (
            f"StateStore(keyed={sorted(self._keyed)}, "
            f"global={sorted(self._global)})"
        )
