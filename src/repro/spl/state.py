"""Partitioned operator state: the StateStore layer.

PR 1's elastic parallel regions remap ``hash(key) % width`` on rescale, so
keyed operator state held in ad-hoc instance attributes silently restarts
on its new channel.  This module makes operator state *explicit* so every
adaptation routine — live re-parallelization, PE restart rehydration,
state-aware scaling policies — can reason about it:

* :class:`KeyedState` — a named map ``partition key -> value``.  Keys are
  the unit of migration: when a parallel region changes width, the elastic
  controller extracts the entries whose ``hash(key) % width'`` owner
  changed and installs them on their new channel (Fries-style: state moves
  transactionally with the routing change).
* :class:`GlobalState` — a named single value (often a list or a window
  object) that belongs to the operator instance as a whole.  Global state
  cannot be re-partitioned; on a scale-in the doomed channels' global
  state is dropped (and counted) exactly like the paper's no-checkpoint
  semantics.
* :class:`StateStore` — the per-operator collection of named states,
  reachable as ``self.state`` from any :class:`~repro.spl.operators.Operator`
  (``state.keyed(name)`` / ``state.global_(name)``).  It snapshots and
  restores as a plain dict so PE restarts can optionally rehydrate.

Handles stay valid across ``restore()``/``install()``: both mutate the
named state objects in place, so an operator may cache
``self._counts = self.state.keyed("counts")`` in ``__init__`` and never
notice that a migration or a rehydration swapped the contents underneath.

Keyed state in a partitioned parallel region must be keyed by the region's
``partition_by`` attribute value — that is the contract that makes
ownership computable as ``hash(key) % width`` on both the splitter and the
migration planner.
"""

from __future__ import annotations

import copy
import heapq
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

#: one accounting scheme for tuple wire sizes and stateBytes gauges
from repro.spl.tuples import estimate_value_size  # noqa: F401  (re-export)


class KeyedState:
    """A named keyed state: ``partition key -> value``.

    The value may be anything copyable (a count, a list of tuples, a
    window object...).  :meth:`extract_partition` / :meth:`install` are
    the migration primitives used by :mod:`repro.elastic`.

    ``version`` increments on every *external* bulk mutation (install,
    restore, extract, clear) — operators that maintain in-memory indexes
    over the state (eviction heaps, counts) compare it to know when a
    migration or rehydration changed the contents underneath them.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._data: Dict[Any, Any] = {}
        #: bumped by install/restore/extract_partition/clear
        self.version = 0

    # -- mapping access --------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        return self._data.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value

    def setdefault(self, key: Any, factory: Callable[[], Any]) -> Any:
        """Value for ``key``, creating it with ``factory()`` when absent."""
        if key not in self._data:
            self._data[key] = factory()
        return self._data[key]

    def update(self, key: Any, fn: Callable[[Any], Any], default: Any = None) -> Any:
        """Apply ``fn`` to the current value (or ``default``); store and return."""
        value = fn(self._data.get(key, default))
        self._data[key] = value
        return value

    def delete(self, key: Any) -> bool:
        return self._data.pop(key, _MISSING) is not _MISSING

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> List[Any]:
        return list(self._data)

    def items(self) -> List[Tuple[Any, Any]]:
        return list(self._data.items())

    def clear(self) -> None:
        self._data.clear()
        self.version += 1

    # -- migration primitives ---------------------------------------------------

    def extract_partition(self, predicate: Callable[[Any], bool]) -> Dict[Any, Any]:
        """Remove and return every entry whose key satisfies ``predicate``.

        The extracted dict is the *live* values (not copies): the caller
        owns them exclusively from this point on, which is exactly the
        transactional hand-off a migration needs.
        """
        moving = [key for key in self._data if predicate(key)]
        if moving:
            self.version += 1
        return {key: self._data.pop(key) for key in moving}

    def install(
        self,
        entries: Dict[Any, Any],
        merge_fn: Optional[Callable[[Any, Any], Any]] = None,
    ) -> None:
        """Install migrated entries; ``merge_fn(existing, incoming)`` resolves
        key collisions (incoming wins by default — collisions only occur
        when partitions from several source channels merge onto one)."""
        if entries:
            self.version += 1
        for key, value in entries.items():
            if merge_fn is not None and key in self._data:
                self._data[key] = merge_fn(self._data[key], value)
            else:
                self._data[key] = value

    # -- snapshot ---------------------------------------------------------------

    def snapshot(self) -> Dict[Any, Any]:
        return copy.deepcopy(self._data)

    def restore(self, payload: Dict[Any, Any]) -> None:
        self._data = copy.deepcopy(payload)
        self.version += 1

    def size_bytes(self) -> int:
        return sum(
            estimate_value_size(k) + estimate_value_size(v)
            for k, v in self._data.items()
        )

    def __repr__(self) -> str:
        return f"KeyedState({self.name!r}, {len(self._data)} keys)"


_MISSING = object()


class KeyedSeqIndex:
    """Oldest-first in-memory index over a :class:`KeyedState` whose
    entries embed their arrival sequence numbers.

    The authoritative data — the seqs inside the entries — migrates with
    the keys; this index is disposable accel structure.  It rebuilds
    itself from the store (via ``seqs_of``) whenever the store's
    ``version`` shows an external mutation (migration install/extract,
    rehydration), and uses lazy deletion: :meth:`pop_oldest` may return a
    ``(seq, key)`` that is no longer live, so callers must verify the
    entry still carries that seq before acting on it.
    """

    def __init__(
        self, keyed: KeyedState, seqs_of: Callable[[Any], Iterable[int]]
    ) -> None:
        self._keyed = keyed
        self._seqs_of = seqs_of
        self._heap: List[Tuple[int, int, Any]] = []
        self._synced_version = -1
        self._tiebreak = 0  #: keeps heap comparisons off (uncomparable) keys

    def _resync(self) -> None:
        if self._synced_version == self._keyed.version:
            return
        heap: List[Tuple[int, int, Any]] = []
        for key, entry in self._keyed.items():
            for seq in self._seqs_of(entry):
                self._tiebreak += 1
                heap.append((seq, self._tiebreak, key))
        heapq.heapify(heap)
        self._heap = heap
        self._synced_version = self._keyed.version

    def push(self, seq: int, key: Any) -> None:
        self._resync()
        self._tiebreak += 1
        heapq.heappush(self._heap, (seq, self._tiebreak, key))

    def pop_oldest(self) -> Optional[Tuple[int, Any]]:
        """The lowest (seq, key) in the index, or None when exhausted."""
        self._resync()
        if not self._heap:
            return None
        seq, _tiebreak, key = heapq.heappop(self._heap)
        return seq, key


class GlobalState:
    """A named, non-partitioned value owned by one operator instance."""

    def __init__(self, name: str, default: Optional[Callable[[], Any]] = None) -> None:
        self.name = name
        self._value: Any = default() if default is not None else None

    @property
    def value(self) -> Any:
        return self._value

    @value.setter
    def value(self, new_value: Any) -> None:
        self._value = new_value

    def get(self, default: Any = None) -> Any:
        return self._value if self._value is not None else default

    def set(self, value: Any) -> None:
        self._value = value

    def snapshot(self) -> Any:
        return copy.deepcopy(self._value)

    def restore(self, payload: Any) -> None:
        self._value = copy.deepcopy(payload)

    def size_bytes(self) -> int:
        return estimate_value_size(self._value)

    def __repr__(self) -> str:
        return f"GlobalState({self.name!r})"


class StateStore:
    """All named states of one operator instance.

    Created by the :class:`~repro.spl.operators.OperatorContext`; operators
    reach it as ``self.state``.  ``snapshot()`` returns a plain dict
    (deep-copied, safe to hold across mutations); ``restore()`` re-installs
    a snapshot *in place*, so handles returned by :meth:`keyed` /
    :meth:`global_` before the restore stay valid.
    """

    def __init__(self) -> None:
        self._keyed: Dict[str, KeyedState] = {}
        self._global: Dict[str, GlobalState] = {}

    # -- named state access ------------------------------------------------------

    def keyed(self, name: str) -> KeyedState:
        state = self._keyed.get(name)
        if state is None:
            state = KeyedState(name)
            self._keyed[name] = state
        return state

    def global_(self, name: str, default: Optional[Callable[[], Any]] = None) -> GlobalState:
        state = self._global.get(name)
        if state is None:
            state = GlobalState(name, default)
            self._global[name] = state
        return state

    @property
    def in_use(self) -> bool:
        return bool(self._keyed or self._global)

    def keyed_states(self) -> Dict[str, KeyedState]:
        return dict(self._keyed)

    def global_states(self) -> Dict[str, GlobalState]:
        return dict(self._global)

    def __iter__(self) -> Iterator[str]:
        yield from self._keyed
        yield from self._global

    # -- accounting --------------------------------------------------------------

    def n_keys(self) -> int:
        """Total keyed entries across all named keyed states."""
        return sum(len(state) for state in self._keyed.values())

    def size_bytes(self) -> int:
        return sum(s.size_bytes() for s in self._keyed.values()) + sum(
            s.size_bytes() for s in self._global.values()
        )

    # -- snapshot / restore -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "keyed": {name: s.snapshot() for name, s in self._keyed.items()},
            "global": {name: s.snapshot() for name, s in self._global.items()},
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        for name, data in payload.get("keyed", {}).items():
            self.keyed(name).restore(data)
        for name, data in payload.get("global", {}).items():
            self.global_(name).restore(data)

    def clear(self) -> None:
        for state in self._keyed.values():
            state.clear()
        for state in self._global.values():
            state._value = None

    def __repr__(self) -> str:
        return (
            f"StateStore(keyed={sorted(self._keyed)}, "
            f"global={sorted(self._global)})"
        )
