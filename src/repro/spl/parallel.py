"""Parallel regions: data-parallel fission of annotated operator chains.

An operator (or a linear chain of operators) annotated with
``parallel(width=N, partition_by=...)`` is expanded by the compiler into
N replicated *channels* fronted by a :class:`~repro.spl.library.ParallelSplitter`
and closed by an order-preserving :class:`~repro.spl.library.OrderedMerger`:

::

            +-> work__c0 -+
    feed -> split          -> merge -> sink
            +-> work__c1 -+

Channel copies keep the template's placement constraints *per channel*:
a ``partition`` tag ``t`` becomes ``t__c0``, ``t__c1``... so operators
fused within one channel stay fused, while distinct channels land in
distinct PEs (and, via suffixed host tags, on distinct hosts when host
exlocation was requested).  This mirrors the channel layout of
data-parallel fission in Streams (Röger & Mayer's survey, PAPERS.md) and
keeps the expansion a pure graph-to-graph transform: the runtime only
ever sees ordinary operators, PEs, and streams.

The :class:`ParallelRegionPlan` produced alongside the expansion is the
contract with :mod:`repro.elastic`: it records the region's splitter,
merger, channel membership, and the *template* specs needed to clone new
channels during a live rescale (:func:`resize_region`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ParallelRegionError
from repro.spl.application import Application
from repro.spl.graph import LogicalGraph, OperatorSpec
from repro.spl.library import OrderedMerger, ParallelSplitter


@dataclass
class ParallelAnnotation:
    """Declarative request to run an operator (chain) data-parallel.

    ``congestion_metric`` / ``congestion_threshold`` configure when the
    ORCA service reports a ``channel_congested`` event for this region
    (aggregated per channel over the channel's operators).
    """

    width: int = 2
    partition_by: Optional[str] = None  #: attribute hashed to pick a channel
    name: Optional[str] = None  #: region name; defaults to the head operator
    max_width: int = 8  #: upper bound accepted by set_channel_width()
    ordered: bool = True  #: stamp/reorder tuples across channels
    #: seconds the merger waits on a sequence hole before skipping it
    #: (bounds the stall a crashed channel can cause; 0 disables skipping)
    reorder_grace: float = 30.0
    congestion_metric: str = "queueSize"
    congestion_threshold: float = 10.0
    #: move keyed operator state with its keys when the region is rescaled
    #: (requires ``partition_by``; set False for the paper's restart-empty
    #: semantics even across rescales)
    migrate_state: bool = True
    #: user-defined merge hook for scale-in: ``(state_name, survivor_value,
    #: doomed_value) -> merged`` folds a removed channel's *global* state
    #: into its survivor (``doomed % new_width``) instead of dropping it
    global_merge: Optional[Callable[[str, Any, Any], Any]] = None

    def validate(self) -> None:
        if self.width < 1:
            raise ParallelRegionError(f"parallel width must be >= 1, got {self.width}")
        if self.max_width < self.width:
            raise ParallelRegionError(
                f"max_width {self.max_width} < width {self.width}"
            )
        if self.name is not None and ("." in self.name or not self.name):
            raise ParallelRegionError(f"invalid region name {self.name!r}")


def parallel(
    width: int = 2,
    partition_by: Optional[str] = None,
    name: Optional[str] = None,
    max_width: int = 8,
    ordered: bool = True,
    reorder_grace: float = 30.0,
    congestion_metric: str = "queueSize",
    congestion_threshold: float = 10.0,
    migrate_state: bool = True,
    global_merge: Optional[Callable[[str, Any, Any], Any]] = None,
) -> ParallelAnnotation:
    """Sugar for building a :class:`ParallelAnnotation` (SPL's ``@parallel``)."""
    return ParallelAnnotation(
        width=width,
        partition_by=partition_by,
        name=name,
        max_width=max_width,
        ordered=ordered,
        reorder_grace=reorder_grace,
        congestion_metric=congestion_metric,
        congestion_threshold=congestion_threshold,
        migrate_state=migrate_state,
        global_merge=global_merge,
    )


@dataclass
class ParallelRegionPlan:
    """Everything the elastic layer needs to know about one expanded region."""

    name: str
    width: int
    max_width: int
    partition_by: Optional[str]
    ordered: bool
    reorder_grace: float
    congestion_metric: str
    congestion_threshold: float
    splitter: str  #: full name of the splitter operator
    merger: str  #: full name of the merger operator
    chain: List[str]  #: template operator names, upstream to downstream
    #: original (unexpanded) specs, cloned again when channels are added
    templates: List[OperatorSpec] = field(default_factory=list)
    #: per channel, the channel's operator full names in chain order
    channel_ops: List[List[str]] = field(default_factory=list)
    #: keyed state follows its keys across rescales (needs partition_by)
    migrate_state: bool = True
    #: scale-in merge hook for global state (see ParallelAnnotation)
    global_merge: Optional[Callable[[str, Any, Any], Any]] = None

    def all_channel_operators(self) -> List[str]:
        return [name for ops in self.channel_ops for name in ops]

    def channel_of(self, op_full_name: str) -> Optional[int]:
        for index, ops in enumerate(self.channel_ops):
            if op_full_name in ops:
                return index
        return None


# ---------------------------------------------------------------------------
# Region discovery and validation
# ---------------------------------------------------------------------------


def _suffix(tag: Optional[str], channel: int) -> Optional[str]:
    return None if tag is None else f"{tag}__c{channel}"


def _discover_regions(app: Application) -> Dict[str, List[OperatorSpec]]:
    """Group annotated specs into named regions, chain-ordered and validated."""
    graph = app.graph
    grouped: Dict[str, List[OperatorSpec]] = {}
    for spec in graph.operators.values():
        if spec.parallel is None:
            continue
        annotation: ParallelAnnotation = spec.parallel
        annotation.validate()
        region = annotation.name or spec.full_name
        grouped.setdefault(region, []).append(spec)

    regions: Dict[str, List[OperatorSpec]] = {}
    for region, members in grouped.items():
        widths = {m.parallel.width for m in members}
        if len(widths) > 1:
            raise ParallelRegionError(
                f"region {region!r}: members disagree on width {sorted(widths)}"
            )
        for member in members:
            if member.composite is not None:
                raise ParallelRegionError(
                    f"region {region!r}: operator {member.full_name!r} is inside "
                    "a composite; parallel regions must be top-level"
                )
            if member.n_inputs != 1 or member.n_outputs != 1:
                raise ParallelRegionError(
                    f"region {region!r}: operator {member.full_name!r} must have "
                    "exactly one input and one output port"
                )
        regions[region] = _order_chain(graph, region, members)
    return regions


def _order_chain(
    graph: LogicalGraph, region: str, members: List[OperatorSpec]
) -> List[OperatorSpec]:
    """Order region members head-to-tail; reject anything but a linear chain."""
    member_names = {m.full_name for m in members}
    heads = [
        m
        for m in members
        if not any(
            e.src.full_name in member_names for e in graph.upstream_of(m)
        )
    ]
    if len(heads) != 1:
        raise ParallelRegionError(
            f"region {region!r}: expected exactly one head operator, found "
            f"{[h.full_name for h in heads]}"
        )
    chain = [heads[0]]
    while True:
        current = chain[-1]
        outs = graph.downstream_of(current)
        internal = [e for e in outs if e.dst.full_name in member_names]
        if not internal:
            break  # current is the tail
        if len(internal) != 1 or len(outs) != 1:
            raise ParallelRegionError(
                f"region {region!r}: operator {current.full_name!r} branches; "
                "a parallel region must be a linear chain"
            )
        nxt = internal[0].dst
        if nxt in chain:
            raise ParallelRegionError(f"region {region!r}: cycle in chain")
        ins = graph.upstream_of(nxt)
        if len(ins) != 1:
            raise ParallelRegionError(
                f"region {region!r}: operator {nxt.full_name!r} has side inputs; "
                "only the head may receive external streams"
            )
        chain.append(nxt)
    if len(chain) != len(members):
        missing = member_names - {c.full_name for c in chain}
        raise ParallelRegionError(
            f"region {region!r}: operators {sorted(missing)} are not connected "
            "to the region chain"
        )
    return chain


# ---------------------------------------------------------------------------
# Expansion
# ---------------------------------------------------------------------------


def _clone_channel(
    graph: LogicalGraph,
    plan: ParallelRegionPlan,
    splitter: OperatorSpec,
    merger: OperatorSpec,
    channel: int,
) -> List[OperatorSpec]:
    """Clone the region's template chain as channel ``channel`` and wire it."""
    clones: List[OperatorSpec] = []
    for template in plan.templates:
        clone = graph._add_operator_in(
            f"{template.name}__c{channel}",
            template.op_class,
            composite=None,
            params=dict(template.params),
            partition=_suffix(template.partition, channel),
            partition_exlocation=_suffix(template.partition_exlocation, channel),
            host_pool=template.host_pool,
            host_exlocation=_suffix(template.host_exlocation, channel),
            host_colocation=_suffix(template.host_colocation, channel),
            output_schema=template.output_schema,
        )
        clone.parallel_region = plan.name
        clone.parallel_channel = channel
        clone.parallel_role = "worker"
        clones.append(clone)
    graph.connect(splitter.oport(channel), clones[0].iport(0))
    for upstream, downstream in zip(clones, clones[1:]):
        graph.connect(upstream.oport(0), downstream.iport(0))
    graph.connect(clones[-1].oport(0), merger.iport(channel))
    return clones


def expand_parallel_regions(
    app: Application,
) -> Tuple[Application, Dict[str, ParallelRegionPlan]]:
    """Expand every annotated region of ``app`` into splitter/channels/merger.

    Returns ``(app, {})`` unchanged when no operator is annotated; otherwise
    a *new* Application whose graph contains the expanded regions, plus the
    per-region plans.  The input application is left untouched so it can be
    re-expanded (each submitted job gets a private expansion it may resize).
    """
    regions = _discover_regions(app)
    if not regions:
        return app, {}

    member_region: Dict[str, str] = {
        spec.full_name: region
        for region, chain in regions.items()
        for spec in chain
    }

    expanded = Application(app.name, app.version)
    expanded.host_pools = app.host_pools
    expanded.parameters = dict(app.parameters)
    g = expanded.graph
    g.composite_instances = dict(app.graph.composite_instances)

    plans: Dict[str, ParallelRegionPlan] = {}
    clone_map: Dict[str, OperatorSpec] = {}  #: original name -> cloned spec

    for spec in app.graph.operators.values():
        region = member_region.get(spec.full_name)
        if region is None:
            clone = g._add_operator_in(
                spec.name,
                spec.op_class,
                composite=spec.composite,
                params=dict(spec.params),
                partition=spec.partition,
                partition_exlocation=spec.partition_exlocation,
                host_pool=spec.host_pool,
                host_exlocation=spec.host_exlocation,
                host_colocation=spec.host_colocation,
                output_schema=spec.output_schema,
            )
            clone_map[spec.full_name] = clone
            continue
        chain = regions[region]
        if spec is not chain[0]:
            continue  # the whole region is emitted when its head is reached
        annotation: ParallelAnnotation = chain[0].parallel
        plan = ParallelRegionPlan(
            name=region,
            width=annotation.width,
            max_width=annotation.max_width,
            partition_by=annotation.partition_by,
            ordered=annotation.ordered,
            reorder_grace=annotation.reorder_grace,
            congestion_metric=annotation.congestion_metric,
            congestion_threshold=annotation.congestion_threshold,
            splitter=f"{region}__split",
            merger=f"{region}__merge",
            chain=[c.full_name for c in chain],
            templates=list(chain),
            migrate_state=annotation.migrate_state,
            global_merge=annotation.global_merge,
        )
        splitter = g.add_operator(
            plan.splitter,
            ParallelSplitter,
            params={
                "width": plan.width,
                "partition_by": plan.partition_by,
                "ordered": plan.ordered,
                "region": region,
            },
        )
        splitter.parallel_region = region
        splitter.parallel_role = "splitter"
        merger = g.add_operator(
            plan.merger,
            OrderedMerger,
            params={
                "width": plan.width,
                "ordered": plan.ordered,
                "reorder_grace": plan.reorder_grace,
                "region": region,
            },
        )
        merger.parallel_region = region
        merger.parallel_role = "merger"
        for channel in range(plan.width):
            clones = _clone_channel(g, plan, splitter, merger, channel)
            plan.channel_ops.append([c.full_name for c in clones])
        plans[region] = plan

    # External edges: anything into a region head targets its splitter;
    # anything out of a region tail originates from its merger.
    for edge in app.graph.edges:
        src_region = member_region.get(edge.src.full_name)
        dst_region = member_region.get(edge.dst.full_name)
        if src_region is not None and src_region == dst_region:
            continue  # internal chain edge, already replicated per channel
        if src_region is not None:
            src_ref = g.operator(plans[src_region].merger).oport(0)
        else:
            src_ref = clone_map[edge.src.full_name].oport(edge.src_port)
        if dst_region is not None:
            dst_ref = g.operator(plans[dst_region].splitter).iport(0)
        else:
            dst_ref = clone_map[edge.dst.full_name].iport(edge.dst_port)
        g.connect(src_ref, dst_ref)

    return expanded, plans


# ---------------------------------------------------------------------------
# Live resize (invoked by repro.elastic while the splitter is quiesced)
# ---------------------------------------------------------------------------


def resize_region(
    graph: LogicalGraph, plan: ParallelRegionPlan, new_width: int
) -> Tuple[List[OperatorSpec], List[str]]:
    """Grow or shrink a region's channel set in an *expanded* graph.

    Returns ``(added_specs, removed_operator_names)``.  The caller is
    responsible for the physical side (PE specs, placement, live operator
    instances) — this function only performs the logical graph surgery.
    """
    if new_width < 1 or new_width > plan.max_width:
        raise ParallelRegionError(
            f"region {plan.name!r}: width {new_width} outside [1, {plan.max_width}]"
        )
    splitter = graph.operator(plan.splitter)
    merger = graph.operator(plan.merger)
    added: List[OperatorSpec] = []
    removed: List[str] = []
    if new_width > plan.width:
        splitter.params["width"] = new_width
        splitter.n_outputs = new_width
        merger.params["width"] = new_width
        merger.n_inputs = new_width
        for channel in range(plan.width, new_width):
            clones = _clone_channel(graph, plan, splitter, merger, channel)
            plan.channel_ops.append([c.full_name for c in clones])
            added.extend(clones)
    elif new_width < plan.width:
        doomed = {
            name
            for ops in plan.channel_ops[new_width:]
            for name in ops
        }
        removed = sorted(doomed)
        graph.edges = [
            e
            for e in graph.edges
            if e.src.full_name not in doomed and e.dst.full_name not in doomed
        ]
        for name in doomed:
            del graph.operators[name]
        plan.channel_ops = plan.channel_ops[:new_width]
        splitter.params["width"] = new_width
        splitter.n_outputs = new_width
        merger.params["width"] = new_width
        merger.n_inputs = new_width
    plan.width = new_width
    return added, removed
