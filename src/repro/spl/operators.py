"""Operator runtime base class.

Logical graphs are assembled from :class:`~repro.spl.graph.OperatorSpec`
entries; at job submission each spec is *instantiated* inside its PE as an
:class:`Operator` subclass object.  This split is what lets one application
be submitted several times (e.g. the three replicas of Sec. 5.2) with fully
independent operator state, and what makes a PE restart start from empty
state (the window-refill behaviour of Fig. 9).

Subclasses override the ``on_*`` hooks; the framework entry points
(prefixed ``_``) maintain built-in metrics and final-punctuation bookkeeping
before delegating to the hooks.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Dict, Mapping, Optional, Tuple, Union

from repro.errors import GraphError
from repro.spl.metrics import MetricKind, MetricRegistry, Metric, OperatorMetricName
from repro.spl.state import StateStore
from repro.spl.tuples import Punctuation, StreamTuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.spl.graph import OperatorSpec

_REQUIRED = object()

#: What an operator may pass to :meth:`Operator.submit`.
Submittable = Union[StreamTuple, Mapping[str, Any]]


class OperatorContext:
    """Everything an operator instance needs from its surrounding PE.

    The PE injects callbacks rather than itself to keep operators testable
    in isolation: unit tests drive operators with a hand-built context.
    """

    def __init__(
        self,
        spec: "OperatorSpec",
        job_id: str,
        app_name: str,
        submission_params: Mapping[str, str],
        now_fn: Callable[[], float],
        submit_fn: Callable[[int, StreamTuple], None],
        punct_fn: Callable[[int, Punctuation], None],
        schedule_fn: Callable[[float, Callable[[], None]], Any],
        pe_id: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.job_id = job_id
        self.app_name = app_name
        self.submission_params = dict(submission_params)
        self.pe_id = pe_id
        #: the operator instance's partitioned state (see repro.spl.state)
        self.state = StateStore()
        #: observability hub when span tracing is on (set by the PE after
        #: construction; None keeps Operator.submit at one check)
        self.obs = None
        self._now_fn = now_fn
        self._submit_fn = submit_fn
        self._punct_fn = punct_fn
        self._schedule_fn = schedule_fn
        #: batched submission callback (set by the PE after construction,
        #: like ``obs``); hand-built test contexts leave it None and
        #: :meth:`submit_batch` falls back to a per-tuple loop
        self.submit_batch_fn: Optional[
            Callable[[int, "list[StreamTuple]"], None]
        ] = None

    @property
    def full_name(self) -> str:
        return self.spec.full_name

    @property
    def params(self) -> Dict[str, Any]:
        return self.spec.params

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now_fn()

    def get_submission_time_value(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Submission-time parameter of the job (SPL's getSubmissionTimeValue)."""
        return self.submission_params.get(name, default)

    def submit(self, port: int, tup: StreamTuple) -> None:
        self._submit_fn(port, tup)

    def submit_punct(self, port: int, punct: Punctuation) -> None:
        self._punct_fn(port, punct)

    def submit_batch(self, port: int, tuples: "list[StreamTuple]") -> None:
        """Emit a run of tuples on one port as a single unit of work."""
        if self.submit_batch_fn is not None:
            self.submit_batch_fn(port, tuples)
            return
        submit = self._submit_fn
        for tup in tuples:
            submit(port, tup)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Any:
        """Schedule operator-local work; cancelled automatically on PE stop."""
        return self._schedule_fn(delay, callback)


class Operator:
    """Base class of all runtime operators.

    Class attributes declare the default port counts; parameters
    ``n_inputs`` / ``n_outputs`` override them for variadic operators such
    as Split and Merge.
    """

    #: Operator kind name as it appears in the ADL and in scope filters.
    KIND: ClassVar[Optional[str]] = None
    N_INPUTS: ClassVar[int] = 1
    N_OUTPUTS: ClassVar[int] = 1
    #: Declares that instances hold meaningful state in ``self.state``.
    #: The compiler records stateful operators in each PESpec (state
    #: descriptors), the PE runtime snapshots them on graceful stop, and
    #: the elastic migration phase considers them when a partitioned
    #: region changes width.
    STATEFUL: ClassVar[bool] = False
    #: Whether a FINAL punctuation received on every input port is
    #: automatically forwarded to all output ports after
    #: :meth:`on_all_ports_final` runs.
    FORWARD_FINAL: ClassVar[bool] = True

    def __init__(self, ctx: OperatorContext) -> None:
        self.ctx = ctx
        self.metrics = MetricRegistry()
        self._final_ports: set[int] = set()
        self._finalized = False
        self.n_inputs, self.n_outputs = self.port_counts(ctx.params)
        self._create_builtin_metrics()

    # -- class-level descriptors ---------------------------------------------

    @classmethod
    def kind(cls) -> str:
        return cls.KIND or cls.__name__

    @classmethod
    def port_counts(cls, params: Mapping[str, Any]) -> Tuple[int, int]:
        """(n_inputs, n_outputs) for an instance with the given params."""
        n_in = int(params.get("n_inputs", cls.N_INPUTS))
        n_out = int(params.get("n_outputs", cls.N_OUTPUTS))
        if n_in < 0 or n_out < 0:
            raise GraphError(f"negative port count for {cls.kind()}")
        return n_in, n_out

    # -- parameter access ------------------------------------------------------

    @property
    def state(self) -> StateStore:
        """The instance's partitioned state store (``state.keyed(name)`` /
        ``state.global_(name)``)."""
        return self.ctx.state

    def param(self, name: str, default: Any = _REQUIRED) -> Any:
        """Operator parameter from the logical graph; raises if required & missing."""
        value = self.ctx.params.get(name, default)
        if value is _REQUIRED:
            raise GraphError(
                f"operator {self.ctx.full_name} ({self.kind()}) requires parameter {name!r}"
            )
        return value

    def now(self) -> float:
        return self.ctx.now()

    # -- metrics ---------------------------------------------------------------

    def _create_builtin_metrics(self) -> None:
        registry = self.metrics
        registry.create(OperatorMetricName.N_TUPLES_PROCESSED, MetricKind.COUNTER)
        registry.create(OperatorMetricName.N_TUPLES_SUBMITTED, MetricKind.COUNTER)
        registry.create(OperatorMetricName.N_PUNCTS_PROCESSED, MetricKind.COUNTER)
        registry.create(OperatorMetricName.N_FINAL_PUNCTS_PROCESSED, MetricKind.COUNTER)
        registry.create(OperatorMetricName.QUEUE_SIZE, MetricKind.GAUGE)
        for port in range(self.n_inputs):
            registry.create(OperatorMetricName.N_TUPLES_PROCESSED, MetricKind.COUNTER, port=port)
            registry.create(OperatorMetricName.QUEUE_SIZE, MetricKind.GAUGE, port=port)
        for port in range(self.n_outputs):
            registry.create(OperatorMetricName.N_TUPLES_SUBMITTED, MetricKind.COUNTER, port=port)

    def create_custom_metric(
        self, name: str, kind: MetricKind = MetricKind.COUNTER, description: str = ""
    ) -> Metric:
        """Create a custom metric (Sec. 2.1: 'at any point during execution')."""
        return self.metrics.create(name, kind, description)

    def metric(self, name: str, port: Optional[int] = None) -> Metric:
        return self.metrics.get(name, port=port)

    # -- submission --------------------------------------------------------------

    def submit(self, values: Submittable, port: int = 0) -> None:
        """Emit a tuple on an output port."""
        if port < 0 or port >= self.n_outputs:
            raise GraphError(
                f"{self.ctx.full_name}: invalid output port {port} "
                f"(operator has {self.n_outputs})"
            )
        if isinstance(values, StreamTuple):
            tup = values
        else:
            tup = StreamTuple(values, created_at=self.now())
            obs = self.ctx.obs
            if obs is not None and obs.sample_tuple():
                # sampling is decided once, here, at tuple creation; the
                # flag rides the tuple (and its derived copies) so every
                # downstream hop records a span without re-deciding
                tup.traced = True
                obs.record_emit(
                    self.ctx.full_name,
                    self.ctx.pe_id,
                    self.ctx.job_id,
                    tup.created_at,
                )
        self.metrics.get(OperatorMetricName.N_TUPLES_SUBMITTED).increment()
        self.metrics.get(OperatorMetricName.N_TUPLES_SUBMITTED, port=port).increment()
        self.ctx.submit(port, tup)

    def submit_batch(self, items: "list[Submittable]", port: int = 0) -> None:
        """Emit a run of tuples on an output port as one unit of work.

        The batched twin of :meth:`submit`: per-tuple semantics (dict
        wrapping, trace sampling) are identical, but the submission
        metrics move once per batch and the whole run travels downstream
        through one routing/transport call.  Only worthwhile from
        ``process_batch`` overrides; a batch only ever reaches the
        transport as a unit when batching is enabled there.
        """
        if not items:
            return
        if port < 0 or port >= self.n_outputs:
            raise GraphError(
                f"{self.ctx.full_name}: invalid output port {port} "
                f"(operator has {self.n_outputs})"
            )
        obs = self.ctx.obs
        now = self.now()
        tuples: "list[StreamTuple]" = []
        for values in items:
            if isinstance(values, StreamTuple):
                tuples.append(values)
                continue
            tup = StreamTuple(values, created_at=now)
            if obs is not None and obs.sample_tuple():
                tup.traced = True
                obs.record_emit(
                    self.ctx.full_name,
                    self.ctx.pe_id,
                    self.ctx.job_id,
                    tup.created_at,
                )
            tuples.append(tup)
        n = len(tuples)
        self.metrics.get(OperatorMetricName.N_TUPLES_SUBMITTED).increment(n)
        self.metrics.get(
            OperatorMetricName.N_TUPLES_SUBMITTED, port=port
        ).increment(n)
        self.ctx.submit_batch(port, tuples)

    def submit_punct(self, punct: Punctuation, port: int = 0) -> None:
        if port < 0 or port >= self.n_outputs:
            raise GraphError(
                f"{self.ctx.full_name}: invalid output port {port} "
                f"(operator has {self.n_outputs})"
            )
        self.ctx.submit_punct(port, punct)

    def submit_final(self) -> None:
        """Send FINAL punctuation on every output port."""
        for port in range(self.n_outputs):
            self.ctx.submit_punct(port, Punctuation.FINAL)

    # -- hooks for subclasses ------------------------------------------------------

    def on_initialize(self) -> None:
        """Called once when the PE instantiates the operator."""

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        """Called for every arriving tuple."""

    def process_batch(self, tuples: "list[StreamTuple]", port: int) -> None:
        """Called with a whole tuple batch when transport batching is on.

        The default preserves exact per-tuple semantics by looping over
        :meth:`on_tuple`; stateless operators override it with a
        vectorized pass (and typically re-emit via :meth:`submit_batch`
        so the batch survives the hop).  Never called when batching is
        disabled, so overrides cannot change size-1 behaviour.
        """
        on_tuple = self.on_tuple
        for tup in tuples:
            on_tuple(tup, port)

    def on_punct(self, punct: Punctuation, port: int) -> None:
        """Called for every arriving punctuation (before final bookkeeping)."""

    def on_all_ports_final(self) -> None:
        """Called once when FINAL punctuation has arrived on every input port."""

    def on_control(self, command: str, payload: Mapping[str, Any]) -> None:
        """Called when a control command is sent to this operator instance.

        The paper distinguishes orchestrator-level adaptation from local,
        operator-level adaptation (e.g. a dynamic filter changing its
        condition); control commands are the hook for the latter, and the
        ORCA actuation API can target them.
        """

    def on_shutdown(self) -> None:
        """Called when the PE stops or is cancelled."""

    def on_snapshot(self) -> Any:
        """Hook: extra instance state not held in ``self.state``.

        Returned value rides along in :meth:`snapshot` payloads and is
        handed back to :meth:`on_restore`.  Must be deep-copyable.
        """
        return None

    def on_restore(self, extra: Any) -> None:
        """Hook: reinstall whatever :meth:`on_snapshot` returned."""

    def pending_items(self) -> int:
        """Tuples held in operator-internal buffers awaiting emission.

        Buffering operators (Throttle, the parallel-region merger, ...)
        override this; the elastic re-parallelization protocol polls it to
        decide when a parallel region is fully drained (no tuple may be in
        an internal buffer when channels are rewired, or it would be lost).
        """
        return 0

    def pending_tuples(self) -> int:
        """Data tuples (punctuations excluded) in internal buffers.

        Defaults to :meth:`pending_items`; operators whose buffers also
        hold punctuations (the region splitter's quiesce buffer) override
        this so crash-loss accounting (``buffered_at_crash`` in
        :mod:`repro.chaos`) counts only items whose loss would show up as
        missing data tuples.
        """
        return self.pending_items()

    # -- state snapshot / restore (framework entry points) ------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Capture this instance's state as a plain, detached payload.

        Only meaningful when the operator is quiesced or drained (the
        callers — PE graceful stop, the elastic migration phase — ensure
        that); a crash never produces a snapshot (Sec. 5.2 semantics).
        The ``extra`` returned by :meth:`on_snapshot` is deep-copied so
        the payload never aliases live operator internals.
        """
        return {
            "store": self.state.snapshot(),
            "extra": copy.deepcopy(self.on_snapshot()),
        }

    def restore(self, payload: Mapping[str, Any]) -> None:
        """Reinstall a :meth:`snapshot` payload into this (fresh) instance.

        Both halves are detached before installation: the payload may be
        a retained checkpoint epoch, and an operator adopting ``extra``
        as a live buffer must not mutate the committed snapshot in place.
        """
        self.state.restore(payload.get("store", {}))
        self.on_restore(copy.deepcopy(payload.get("extra")))

    # -- framework entry points (called by the PE) --------------------------------

    def _process(self, item: Union[StreamTuple, Punctuation], port: int) -> None:
        if self._finalized:
            return
        if isinstance(item, StreamTuple):
            self.metrics.get(OperatorMetricName.N_TUPLES_PROCESSED).increment()
            self.metrics.get(OperatorMetricName.N_TUPLES_PROCESSED, port=port).increment()
            self.on_tuple(item, port)
            return
        self.metrics.get(OperatorMetricName.N_PUNCTS_PROCESSED).increment()
        if item is Punctuation.FINAL:
            self.metrics.get(OperatorMetricName.N_FINAL_PUNCTS_PROCESSED).increment()
        self.on_punct(item, port)
        if item is Punctuation.FINAL:
            self._final_ports.add(port)
            if len(self._final_ports) >= self.n_inputs and not self._finalized:
                self._finalized = True
                self.on_all_ports_final()
                if self.FORWARD_FINAL:
                    self.submit_final()

    def _process_batch(self, tuples: "list[StreamTuple]", port: int) -> None:
        """Framework entry for one delivered batch (tuples only).

        Punctuation never rides in batches, so this is the tuple half of
        :meth:`_process` with the metric increments amortized over the
        whole run before :meth:`process_batch` dispatches once.
        """
        if self._finalized or not tuples:
            return
        n = len(tuples)
        self.metrics.get(OperatorMetricName.N_TUPLES_PROCESSED).increment(n)
        self.metrics.get(
            OperatorMetricName.N_TUPLES_PROCESSED, port=port
        ).increment(n)
        self.process_batch(tuples, port)

    @property
    def is_finalized(self) -> bool:
        """True once FINAL punctuation was seen on all input ports."""
        return self._finalized

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.ctx.full_name})"
