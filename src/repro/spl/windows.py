"""Window machinery for aggregate operators.

The Trend Calculator application of Sec. 5.2 computes min/max/average and
Bollinger bands over a 600-second sliding time window per stock symbol; the
windows here provide exactly that, plus tumbling count/time variants used by
other sample applications and tests.

Windows are deliberately stateful plain objects: when a PE crashes and is
restarted, its operators are re-instantiated and their windows start empty,
which is what produces the "incorrect output until the application fully
recovers its state" behaviour highlighted in Fig. 9(b) of the paper.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Iterable, List, Optional, Tuple


class SlidingTimeWindow:
    """Time-based sliding window of ``(timestamp, value)`` pairs.

    ``span`` is the window length in seconds.  Insertion takes the current
    timestamp; eviction removes entries older than ``now - span``.  The
    window keeps running sums so mean/std queries are O(1); min/max scan the
    deque (O(n)) which is fine at simulation scale and keeps the code
    straightforward.
    """

    def __init__(self, span: float) -> None:
        if span <= 0:
            raise ValueError(f"window span must be positive, got {span}")
        self.span = float(span)
        self._items: Deque[Tuple[float, float]] = deque()
        self._sum = 0.0
        self._sum_sq = 0.0

    def insert(self, timestamp: float, value: float) -> None:
        self._items.append((timestamp, value))
        self._sum += value
        self._sum_sq += value * value
        self.evict(timestamp)

    def evict(self, now: float) -> int:
        """Drop entries older than ``now - span``; return how many."""
        cutoff = now - self.span
        dropped = 0
        items = self._items
        while items and items[0][0] < cutoff:
            _, value = items.popleft()
            self._sum -= value
            self._sum_sq -= value * value
            dropped += 1
        return dropped

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def oldest_timestamp(self) -> Optional[float]:
        return self._items[0][0] if self._items else None

    @property
    def coverage(self) -> float:
        """Seconds of data currently held (0 when empty).

        A freshly restarted operator has coverage near 0; output is only
        trustworthy once coverage approaches the configured span.
        """
        if len(self._items) < 2:
            return 0.0
        return self._items[-1][0] - self._items[0][0]

    def values(self) -> List[float]:
        return [v for _, v in self._items]

    def mean(self) -> float:
        if not self._items:
            raise ValueError("mean of empty window")
        return self._sum / len(self._items)

    def minimum(self) -> float:
        if not self._items:
            raise ValueError("minimum of empty window")
        return min(v for _, v in self._items)

    def maximum(self) -> float:
        if not self._items:
            raise ValueError("maximum of empty window")
        return max(v for _, v in self._items)

    def stddev(self) -> float:
        """Population standard deviation of the window contents."""
        n = len(self._items)
        if n == 0:
            raise ValueError("stddev of empty window")
        mean = self._sum / n
        variance = max(self._sum_sq / n - mean * mean, 0.0)
        return math.sqrt(variance)

    def bollinger_bands(self, k: float = 2.0) -> Tuple[float, float]:
        """Return (upper, lower) Bollinger bands: mean +/- k * stddev."""
        mean = self.mean()
        sd = self.stddev()
        return mean + k * sd, mean - k * sd

    def to_snapshot(self) -> dict:
        """Plain-data snapshot (window objects also deep-copy cleanly, so
        they may be stored in a StateStore directly; this form is for
        operators that prefer explicit payloads)."""
        return {"span": self.span, "items": list(self._items)}

    @classmethod
    def from_snapshot(cls, payload: dict) -> "SlidingTimeWindow":
        window = cls(payload["span"])
        for timestamp, value in payload["items"]:
            window.insert(timestamp, value)
        return window


class TumblingCountWindow:
    """Count-based tumbling window: fills to ``size`` then flushes."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size}")
        self.size = size
        self._items: List[object] = []

    def insert(self, item: object) -> Optional[List[object]]:
        """Add ``item``; return the full batch when the window tumbles."""
        self._items.append(item)
        if len(self._items) >= self.size:
            batch = self._items
            self._items = []
            return batch
        return None

    def __len__(self) -> int:
        return len(self._items)

    def flush(self) -> List[object]:
        """Return and clear any partial contents (used on final punctuation)."""
        batch = self._items
        self._items = []
        return batch

    def to_snapshot(self) -> dict:
        return {"size": self.size, "items": list(self._items)}

    @classmethod
    def from_snapshot(cls, payload: dict) -> "TumblingCountWindow":
        window = cls(payload["size"])
        window._items = list(payload["items"])
        return window


class SlidingCountWindow:
    """Count-based sliding window holding the last ``size`` values."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size}")
        self.size = size
        self._items: Deque[float] = deque(maxlen=size)

    def insert(self, value: float) -> None:
        self._items.append(value)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) == self.size

    def values(self) -> List[float]:
        return list(self._items)

    def mean(self) -> float:
        if not self._items:
            raise ValueError("mean of empty window")
        return sum(self._items) / len(self._items)

    def to_snapshot(self) -> dict:
        return {"size": self.size, "items": list(self._items)}

    @classmethod
    def from_snapshot(cls, payload: dict) -> "SlidingCountWindow":
        window = cls(payload["size"])
        for value in payload["items"]:
            window.insert(value)
        return window


def merge_sorted_by_time(
    streams: Iterable[Iterable[Tuple[float, float]]],
) -> List[Tuple[float, float]]:
    """Merge several time-ordered series into one (helper for tests/benches)."""
    merged: List[Tuple[float, float]] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda pair: pair[0])
    return merged
