"""ADL — the application description language document.

Sec. 2.1 of the paper: when the SPL compiler builds an application it emits
an XML description (the ADL) with "the name of each operator in the graph,
their interconnections, their composite containment relationship, their PE
partitioning, and the PE's host placement constraints".  Both the runtime
and the orchestrator consume it: the ORCA service builds its in-memory
stream graph from the ADL files listed in the orchestrator descriptor, and
the exclusive-host-pool actuation *rewrites* the ADL before submission.

Operator parameters that are plain JSON-able values are serialized;
callables and other rich objects are recorded as ``opaque`` so a parsed
ADL still lists every parameter name.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ADLError
from repro.spl.compiler import CompiledApplication
from repro.spl.hostpool import HostPool


# ---------------------------------------------------------------------------
# Parsed model (what the orchestrator's stream graph is built from)
# ---------------------------------------------------------------------------


@dataclass
class ADLOperator:
    name: str
    kind: str
    composite: Optional[str]
    pe_index: int
    n_inputs: int
    n_outputs: int
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ADLComposite:
    name: str
    kind: str
    parent: Optional[str]


@dataclass
class ADLPE:
    index: int
    operators: List[str]
    host_pool: Optional[str]
    host_exlocations: List[str] = field(default_factory=list)
    host_colocations: List[str] = field(default_factory=list)


@dataclass
class ADLStream:
    name: str
    src_operator: str
    src_port: int
    dst_operator: str
    dst_port: int


@dataclass
class ADLHostPool:
    name: str
    hosts: List[str]
    tags: List[str]
    size: Optional[int]
    exclusive: bool

    def to_host_pool(self) -> HostPool:
        return HostPool(
            name=self.name,
            hosts=tuple(self.hosts),
            tags=tuple(self.tags),
            size=self.size,
            exclusive=self.exclusive,
        )


@dataclass
class ADLExport:
    operator: str
    stream_id: Optional[str]
    properties: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ADLImport:
    operator: str
    stream_id: Optional[str]
    subscription: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ADLModel:
    """Full parsed ADL document."""

    name: str
    version: str
    operators: List[ADLOperator]
    composites: List[ADLComposite]
    pes: List[ADLPE]
    streams: List[ADLStream]
    host_pools: List[ADLHostPool]
    exports: List[ADLExport]
    imports: List[ADLImport]

    def operator_by_name(self, name: str) -> ADLOperator:
        for op in self.operators:
            if op.name == name:
                return op
        raise ADLError(f"ADL of {self.name!r}: no operator {name!r}")


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _serialize_param(value: Any) -> tuple[str, str]:
    """Return (encoding, text) for a parameter value."""
    try:
        return "json", json.dumps(value)
    except (TypeError, ValueError):
        return "opaque", type(value).__name__


def adl_to_xml(compiled: CompiledApplication) -> str:
    """Render the ADL XML document for a compiled application."""
    app = compiled.application
    root = ET.Element("application", name=app.name, version=app.version)

    pools_el = ET.SubElement(root, "hostpools")
    for pool in app.host_pools:
        pool_el = ET.SubElement(
            pools_el,
            "hostpool",
            name=pool.name,
            exclusive=str(pool.exclusive).lower(),
        )
        if pool.size is not None:
            pool_el.set("size", str(pool.size))
        for host in pool.hosts:
            ET.SubElement(pool_el, "host", name=host)
        for tag in pool.tags:
            ET.SubElement(pool_el, "tag", name=tag)

    comps_el = ET.SubElement(root, "composites")
    for comp in app.graph.composite_instances.values():
        comp_el = ET.SubElement(comps_el, "composite", name=comp.full_name, kind=comp.kind)
        if comp.parent:
            comp_el.set("parent", comp.parent)

    ops_el = ET.SubElement(root, "operators")
    for spec in app.graph.operators.values():
        op_el = ET.SubElement(
            ops_el,
            "operator",
            name=spec.full_name,
            kind=spec.kind,
            peIndex=str(compiled.pe_of(spec.full_name)),
            nInputs=str(spec.n_inputs),
            nOutputs=str(spec.n_outputs),
        )
        if spec.composite:
            op_el.set("composite", spec.composite)
        for key, value in spec.params.items():
            encoding, text = _serialize_param(value)
            param_el = ET.SubElement(op_el, "param", name=key, encoding=encoding)
            param_el.text = text

    pes_el = ET.SubElement(root, "pes")
    for pe in compiled.pes:
        pe_el = ET.SubElement(pes_el, "pe", index=str(pe.index))
        if pe.host_pool:
            pe_el.set("hostpool", pe.host_pool)
        for tag in sorted(pe.host_exlocations):
            ET.SubElement(pe_el, "exlocation", tag=tag)
        for tag in sorted(pe.host_colocations):
            ET.SubElement(pe_el, "colocation", tag=tag)
        for op_name in pe.operators:
            ET.SubElement(pe_el, "operator", name=op_name)

    streams_el = ET.SubElement(root, "streams")
    for edge in app.graph.edges:
        ET.SubElement(
            streams_el,
            "stream",
            name=edge.stream_name,
            srcOperator=edge.src.full_name,
            srcPort=str(edge.src_port),
            dstOperator=edge.dst.full_name,
            dstPort=str(edge.dst_port),
        )

    exports_el = ET.SubElement(root, "exports")
    for export in app.export_specs():
        export_el = ET.SubElement(exports_el, "export", operator=export["operator"])
        if export["stream_id"]:
            export_el.set("streamId", export["stream_id"])
        for key, value in export["properties"].items():
            ET.SubElement(export_el, "property", key=key, value=str(value))

    imports_el = ET.SubElement(root, "imports")
    for import_ in app.import_specs():
        import_el = ET.SubElement(imports_el, "import", operator=import_["operator"])
        if import_["stream_id"]:
            import_el.set("streamId", import_["stream_id"])
        for key, value in import_["subscription"].items():
            ET.SubElement(import_el, "subscription", key=key, value=str(value))

    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def adl_from_xml(text: str) -> ADLModel:
    """Parse an ADL XML document into an :class:`ADLModel`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ADLError(f"malformed ADL XML: {exc}") from exc
    if root.tag != "application":
        raise ADLError(f"expected <application> root, got <{root.tag}>")
    name = root.get("name")
    if not name:
        raise ADLError("<application> missing name attribute")

    host_pools = []
    for pool_el in root.iterfind("./hostpools/hostpool"):
        size_text = pool_el.get("size")
        host_pools.append(
            ADLHostPool(
                name=pool_el.get("name", ""),
                hosts=[h.get("name", "") for h in pool_el.iterfind("host")],
                tags=[t.get("name", "") for t in pool_el.iterfind("tag")],
                size=int(size_text) if size_text else None,
                exclusive=pool_el.get("exclusive") == "true",
            )
        )

    composites = [
        ADLComposite(
            name=el.get("name", ""),
            kind=el.get("kind", ""),
            parent=el.get("parent") or None,
        )
        for el in root.iterfind("./composites/composite")
    ]

    operators = []
    for op_el in root.iterfind("./operators/operator"):
        params: Dict[str, Any] = {}
        for param_el in op_el.iterfind("param"):
            key = param_el.get("name", "")
            if param_el.get("encoding") == "json":
                params[key] = json.loads(param_el.text or "null")
            else:
                params[key] = {"opaque": param_el.text or ""}
        operators.append(
            ADLOperator(
                name=op_el.get("name", ""),
                kind=op_el.get("kind", ""),
                composite=op_el.get("composite") or None,
                pe_index=int(op_el.get("peIndex", "0")),
                n_inputs=int(op_el.get("nInputs", "0")),
                n_outputs=int(op_el.get("nOutputs", "0")),
                params=params,
            )
        )

    pes = [
        ADLPE(
            index=int(pe_el.get("index", "0")),
            operators=[o.get("name", "") for o in pe_el.iterfind("operator")],
            host_pool=pe_el.get("hostpool") or None,
            host_exlocations=[e.get("tag", "") for e in pe_el.iterfind("exlocation")],
            host_colocations=[c.get("tag", "") for c in pe_el.iterfind("colocation")],
        )
        for pe_el in root.iterfind("./pes/pe")
    ]

    streams = [
        ADLStream(
            name=s.get("name", ""),
            src_operator=s.get("srcOperator", ""),
            src_port=int(s.get("srcPort", "0")),
            dst_operator=s.get("dstOperator", ""),
            dst_port=int(s.get("dstPort", "0")),
        )
        for s in root.iterfind("./streams/stream")
    ]

    exports = []
    for export_el in root.iterfind("./exports/export"):
        exports.append(
            ADLExport(
                operator=export_el.get("operator", ""),
                stream_id=export_el.get("streamId") or None,
                properties={
                    p.get("key", ""): p.get("value", "")
                    for p in export_el.iterfind("property")
                },
            )
        )

    imports = []
    for import_el in root.iterfind("./imports/import"):
        imports.append(
            ADLImport(
                operator=import_el.get("operator", ""),
                stream_id=import_el.get("streamId") or None,
                subscription={
                    s.get("key", ""): s.get("value", "")
                    for s in import_el.iterfind("subscription")
                },
            )
        )

    return ADLModel(
        name=name,
        version=root.get("version", "1.0"),
        operators=operators,
        composites=composites,
        pes=pes,
        streams=streams,
        host_pools=host_pools,
        exports=exports,
        imports=imports,
    )


def adl_model_of(compiled: CompiledApplication) -> ADLModel:
    """Round-trip convenience: the parsed model of a compiled application."""
    return adl_from_xml(adl_to_xml(compiled))
