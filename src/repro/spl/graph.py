"""Logical application graphs.

The :class:`LogicalGraph` is the in-memory equivalent of an SPL program's
operator graph: operator specs (not instances — instantiation happens per
job at runtime), composite containment, stream edges, and the partition /
placement annotations that the compiler and scheduler honour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import CompositeError, GraphError
from repro.spl.composite import (
    CompositeBuilder,
    CompositeDefinition,
    CompositeHandle,
    CompositeInstance,
    containment_chain,
)
from repro.spl.schema import TupleSchema


@dataclass
class OperatorSpec:
    """A logical operator: what to instantiate, where it sits, how to place it."""

    name: str  #: unqualified name
    full_name: str  #: dotted path including enclosing composite instances
    op_class: type  #: :class:`~repro.spl.operators.Operator` subclass
    params: Dict[str, Any] = field(default_factory=dict)
    n_inputs: int = 1
    n_outputs: int = 1
    composite: Optional[str] = None  #: full name of immediately enclosing composite
    partition: Optional[str] = None  #: partition colocation tag (same tag -> same PE)
    partition_exlocation: Optional[str] = None  #: same tag -> different PEs
    host_pool: Optional[str] = None  #: name of the host pool this operator must run in
    host_exlocation: Optional[str] = None  #: same tag -> PEs on different hosts
    host_colocation: Optional[str] = None  #: same tag -> PEs on the same host
    output_schema: Optional[TupleSchema] = None
    #: data-parallel annotation (see :mod:`repro.spl.parallel`); consumed by
    #: the compiler, which expands the annotated region into N channels
    parallel: Optional[Any] = None
    #: expansion metadata, set on operators produced by region expansion
    parallel_region: Optional[str] = None  #: region this operator belongs to
    parallel_channel: Optional[int] = None  #: channel index (None: split/merge)
    parallel_role: Optional[str] = None  #: "splitter" | "worker" | "merger"

    @property
    def kind(self) -> str:
        return self.op_class.kind()

    def iport(self, index: int = 0) -> "PortRef":
        if index < 0 or index >= self.n_inputs:
            raise GraphError(
                f"{self.full_name}: no input port {index} (has {self.n_inputs})"
            )
        return PortRef(self, index, is_output=False)

    def oport(self, index: int = 0) -> "PortRef":
        if index < 0 or index >= self.n_outputs:
            raise GraphError(
                f"{self.full_name}: no output port {index} (has {self.n_outputs})"
            )
        return PortRef(self, index, is_output=True)

    def __repr__(self) -> str:
        return f"OperatorSpec({self.full_name}:{self.kind})"


@dataclass(frozen=True)
class PortRef:
    """Reference to one port of one operator spec."""

    spec: OperatorSpec
    index: int
    is_output: bool

    def __repr__(self) -> str:
        direction = "out" if self.is_output else "in"
        return f"{self.spec.full_name}.{direction}[{self.index}]"


@dataclass(frozen=True)
class Edge:
    """A stream connection between an output port and an input port."""

    src: OperatorSpec
    src_port: int
    dst: OperatorSpec
    dst_port: int

    @property
    def stream_name(self) -> str:
        return f"{self.src.full_name}.out{self.src_port}"

    def __repr__(self) -> str:
        return (
            f"Edge({self.src.full_name}[{self.src_port}] -> "
            f"{self.dst.full_name}[{self.dst_port}])"
        )


class LogicalGraph:
    """Mutable operator graph under construction."""

    def __init__(self) -> None:
        self.operators: Dict[str, OperatorSpec] = {}
        self.composite_instances: Dict[str, CompositeInstance] = {}
        self.edges: List[Edge] = []

    # -- construction -------------------------------------------------------

    def add_operator(self, name: str, op_class: type, **kwargs: Any) -> OperatorSpec:
        """Add a top-level operator.  See :meth:`_add_operator_in` for kwargs."""
        return self._add_operator_in(name, op_class, composite=None, **kwargs)

    def _add_operator_in(
        self,
        name: str,
        op_class: type,
        composite: Optional[str],
        params: Optional[Mapping[str, Any]] = None,
        partition: Optional[str] = None,
        partition_exlocation: Optional[str] = None,
        host_pool: Optional[str] = None,
        host_exlocation: Optional[str] = None,
        host_colocation: Optional[str] = None,
        output_schema: Optional[TupleSchema] = None,
        parallel: Optional[Any] = None,
    ) -> OperatorSpec:
        if not name or "." in name:
            raise GraphError(f"invalid operator name {name!r} (no dots, non-empty)")
        full_name = f"{composite}.{name}" if composite else name
        if full_name in self.operators:
            raise GraphError(f"duplicate operator name {full_name!r}")
        if full_name in self.composite_instances:
            raise GraphError(f"name {full_name!r} already used by a composite")
        param_dict = dict(params or {})
        n_inputs, n_outputs = op_class.port_counts(param_dict)
        spec = OperatorSpec(
            name=name,
            full_name=full_name,
            op_class=op_class,
            params=param_dict,
            n_inputs=n_inputs,
            n_outputs=n_outputs,
            composite=composite,
            partition=partition,
            partition_exlocation=partition_exlocation,
            host_pool=host_pool,
            host_exlocation=host_exlocation,
            host_colocation=host_colocation,
            output_schema=output_schema,
            parallel=parallel,
        )
        self.operators[full_name] = spec
        return spec

    def connect(self, src: PortRef, dst: PortRef) -> None:
        """Create a stream edge from an output port to an input port."""
        if not src.is_output:
            raise GraphError(f"connection source {src!r} is not an output port")
        if dst.is_output:
            raise GraphError(f"connection destination {dst!r} is not an input port")
        if src.spec.full_name not in self.operators:
            raise GraphError(f"source operator {src.spec.full_name!r} not in graph")
        if dst.spec.full_name not in self.operators:
            raise GraphError(f"destination operator {dst.spec.full_name!r} not in graph")
        edge = Edge(src.spec, src.index, dst.spec, dst.index)
        if edge in self.edges:
            raise GraphError(f"duplicate edge {edge!r}")
        self.edges.append(edge)

    def instantiate(
        self,
        definition: CompositeDefinition,
        name: str,
        inputs: Sequence[PortRef] = (),
    ) -> CompositeHandle:
        """Instantiate a composite at top level."""
        return self._instantiate_in(definition, name, inputs, parent=None)

    def _instantiate_in(
        self,
        definition: CompositeDefinition,
        name: str,
        inputs: Sequence[PortRef],
        parent: Optional[str],
    ) -> CompositeHandle:
        if not name or "." in name:
            raise CompositeError(f"invalid composite instance name {name!r}")
        full_name = f"{parent}.{name}" if parent else name
        if full_name in self.composite_instances or full_name in self.operators:
            raise CompositeError(f"duplicate name {full_name!r}")
        if len(inputs) != definition.n_inputs:
            raise CompositeError(
                f"composite {definition.name!r} declares {definition.n_inputs} inputs, "
                f"got {len(inputs)}"
            )
        instance = CompositeInstance(
            name=name, full_name=full_name, kind=definition.name, parent=parent
        )
        self.composite_instances[full_name] = instance
        builder = CompositeBuilder(self, definition, instance)
        definition.assemble(builder)
        builder._validate()
        # Route the outer inputs to every internal binding.
        for index, outer_src in enumerate(inputs):
            for spec, port in builder._input_bindings.get(index, []):
                self.connect(outer_src, spec.iport(port))
        outputs = [
            builder._output_bindings[i][0].oport(builder._output_bindings[i][1])
            for i in range(definition.n_outputs)
        ]
        return CompositeHandle(instance=instance, outputs=outputs)

    # -- queries --------------------------------------------------------------

    def operator(self, full_name: str) -> OperatorSpec:
        try:
            return self.operators[full_name]
        except KeyError:
            raise GraphError(f"unknown operator {full_name!r}") from None

    def composite_chain(self, op_full_name: str) -> List[CompositeInstance]:
        """Enclosing composite instances of an operator, innermost first."""
        spec = self.operator(op_full_name)
        return containment_chain(self.composite_instances, spec.composite)

    def composite_types_of(self, op_full_name: str) -> List[str]:
        """Composite *types* enclosing an operator (any nesting depth)."""
        return [ci.kind for ci in self.composite_chain(op_full_name)]

    def operators_in_composite(self, composite_full_name: str) -> List[OperatorSpec]:
        """All operators contained (at any depth) in a composite instance."""
        if composite_full_name not in self.composite_instances:
            raise CompositeError(f"unknown composite instance {composite_full_name!r}")
        result = []
        for spec in self.operators.values():
            chain = containment_chain(self.composite_instances, spec.composite)
            if any(ci.full_name == composite_full_name for ci in chain):
                result.append(spec)
        return result

    def downstream_of(self, spec: OperatorSpec, port: Optional[int] = None) -> List[Edge]:
        return [
            e
            for e in self.edges
            if e.src is spec and (port is None or e.src_port == port)
        ]

    def upstream_of(self, spec: OperatorSpec, port: Optional[int] = None) -> List[Edge]:
        return [
            e
            for e in self.edges
            if e.dst is spec and (port is None or e.dst_port == port)
        ]

    def sources(self) -> List[OperatorSpec]:
        """Operators with no input ports (true sources, incl. Import)."""
        return [s for s in self.operators.values() if s.n_inputs == 0]

    def sinks(self) -> List[OperatorSpec]:
        """Operators with no output ports (true sinks, incl. Export)."""
        return [s for s in self.operators.values() if s.n_outputs == 0]

    # -- validation --------------------------------------------------------------

    def validate(self, require_connected_inputs: bool = True) -> None:
        """Check structural invariants; raise :class:`GraphError` on violation."""
        connected_inputs: Dict[Tuple[str, int], int] = {}
        for edge in self.edges:
            key = (edge.dst.full_name, edge.dst_port)
            connected_inputs[key] = connected_inputs.get(key, 0) + 1
        if require_connected_inputs:
            for spec in self.operators.values():
                for port in range(spec.n_inputs):
                    if (spec.full_name, port) not in connected_inputs:
                        raise GraphError(
                            f"input port {port} of {spec.full_name!r} is not connected"
                        )
        # partition colocation and exlocation must not contradict each other
        by_partition: Dict[str, List[OperatorSpec]] = {}
        for spec in self.operators.values():
            if spec.partition is not None:
                by_partition.setdefault(spec.partition, []).append(spec)
        for tag, members in by_partition.items():
            counts: Dict[str, int] = {}
            for member in members:
                if member.partition_exlocation is not None:
                    counts[member.partition_exlocation] = (
                        counts.get(member.partition_exlocation, 0) + 1
                    )
            for exgroup, count in counts.items():
                if count > 1:
                    raise GraphError(
                        f"operators in partition {tag!r} share exlocation group "
                        f"{exgroup!r}: colocation and exlocation contradict"
                    )

    def __repr__(self) -> str:
        return (
            f"LogicalGraph(operators={len(self.operators)}, "
            f"composites={len(self.composite_instances)}, edges={len(self.edges)})"
        )
