"""Composite operators.

A composite operator is a logically-related reusable sub-graph (Sec. 2.1 of
the paper: "similar to methods and classes in object-oriented programming").
A :class:`CompositeDefinition` carries an ``assemble`` function that builds
the sub-graph each time the composite is instantiated; instantiation
produces a :class:`CompositeInstance` node in the containment hierarchy and
fresh, qualified operator names (e.g. ``c1.op3`` and ``c2.op3`` for the two
instances of Fig. 2).

Composites may nest arbitrarily — which is exactly why matching a
*composite type filter* in an event scope requires walking the containment
chain (and why the SQL-equivalent formulation in Sec. 4.1 needs a recursive
query).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import CompositeError

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.spl.graph import LogicalGraph, OperatorSpec, PortRef


@dataclass(frozen=True)
class CompositeInstance:
    """A node in the composite containment hierarchy of an application."""

    name: str  #: unqualified instance name
    full_name: str  #: dotted path, unique within the application
    kind: str  #: composite type name (the definition's name)
    parent: Optional[str]  #: full name of the enclosing composite instance


class CompositeDefinition:
    """A reusable sub-graph template.

    ``assemble`` receives a :class:`CompositeBuilder` and must:

    * add internal operators / nested composites through the builder,
    * route each declared input with ``builder.connect(builder.input(i), ...)``,
    * bind each declared output with ``builder.bind_output(i, port)``.
    """

    def __init__(
        self,
        name: str,
        n_inputs: int,
        n_outputs: int,
        assemble: Callable[["CompositeBuilder"], None],
    ) -> None:
        if n_inputs < 0 or n_outputs < 0:
            raise CompositeError(f"composite {name!r}: negative port count")
        self.name = name
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.assemble = assemble

    def __repr__(self) -> str:
        return (
            f"CompositeDefinition({self.name}, in={self.n_inputs}, out={self.n_outputs})"
        )


class _InputPlaceholder:
    """Stands for an input port of the composite during assembly."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index


class CompositeBuilder:
    """Builder handed to ``assemble`` during composite instantiation.

    It forwards operator/composite creation to the owning graph with
    qualified names, and records how the composite's declared input and
    output ports map onto internal operator ports.
    """

    def __init__(
        self,
        graph: "LogicalGraph",
        definition: CompositeDefinition,
        instance: CompositeInstance,
    ) -> None:
        self._graph = graph
        self._definition = definition
        self._instance = instance
        # input index -> list of internal (spec, port) destinations
        self._input_bindings: Dict[int, List[Tuple["OperatorSpec", int]]] = {}
        # output index -> internal (spec, port) source
        self._output_bindings: Dict[int, Tuple["OperatorSpec", int]] = {}

    @property
    def instance(self) -> CompositeInstance:
        return self._instance

    def add_operator(self, name: str, op_class: type, **kwargs: Any) -> "OperatorSpec":
        """Add an operator inside this composite instance."""
        return self._graph._add_operator_in(
            name, op_class, composite=self._instance.full_name, **kwargs
        )

    def instantiate(
        self,
        definition: CompositeDefinition,
        name: str,
        inputs: Sequence["PortRef"] = (),
    ) -> "CompositeHandle":
        """Instantiate a nested composite inside this one."""
        return self._graph._instantiate_in(
            definition, name, inputs, parent=self._instance.full_name
        )

    def input(self, index: int) -> _InputPlaceholder:
        """Reference to the composite's declared input port ``index``."""
        if index < 0 or index >= self._definition.n_inputs:
            raise CompositeError(
                f"composite {self._definition.name!r} has no input {index}"
            )
        return _InputPlaceholder(index)

    def connect(self, src: Any, dst: "PortRef") -> None:
        """Connect inside the composite; ``src`` may be an input placeholder."""
        if isinstance(src, _InputPlaceholder):
            if dst.is_output:
                raise CompositeError("destination of a connection must be an input port")
            self._input_bindings.setdefault(src.index, []).append((dst.spec, dst.index))
            return
        self._graph.connect(src, dst)

    def bind_output(self, index: int, src: "PortRef") -> None:
        """Declare that composite output ``index`` is fed by internal port ``src``."""
        if index < 0 or index >= self._definition.n_outputs:
            raise CompositeError(
                f"composite {self._definition.name!r} has no output {index}"
            )
        if not src.is_output:
            raise CompositeError("bind_output requires an operator *output* port")
        if index in self._output_bindings:
            raise CompositeError(
                f"composite {self._definition.name!r}: output {index} bound twice"
            )
        self._output_bindings[index] = (src.spec, src.index)

    # -- used by the graph after assemble() returns --------------------------

    def _validate(self) -> None:
        missing = [
            i
            for i in range(self._definition.n_outputs)
            if i not in self._output_bindings
        ]
        if missing:
            raise CompositeError(
                f"composite {self._definition.name!r}: outputs {missing} never bound"
            )


@dataclass
class CompositeHandle:
    """What ``instantiate`` returns: resolved output ports of the instance."""

    instance: CompositeInstance
    outputs: List["PortRef"] = field(default_factory=list)

    def output(self, index: int = 0) -> "PortRef":
        try:
            return self.outputs[index]
        except IndexError:
            raise CompositeError(
                f"composite instance {self.instance.full_name!r} has no output {index}"
            ) from None


def containment_chain(
    instances: Mapping[str, CompositeInstance], start: Optional[str]
) -> List[CompositeInstance]:
    """Enclosing composite instances of ``start``, innermost first.

    ``start`` is the full name of the immediately enclosing composite
    instance (or None for a top-level operator).  This walk is the runtime
    counterpart of the recursive CTE in the paper's Sec. 4.1 SQL query.
    """
    chain: List[CompositeInstance] = []
    current = start
    while current is not None:
        instance = instances.get(current)
        if instance is None:
            raise CompositeError(f"unknown composite instance {current!r}")
        chain.append(instance)
        current = instance.parent
    return chain
