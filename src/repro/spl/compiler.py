"""The SPL compiler: partitions operators into PEs.

Sec. 2.1 of the paper: "the SPL compiler places operators into processing
elements (PEs) ... based on performance measurements and following
partition constraints informed by the developers", and PEs may fuse
operators from *different* composite instances (Fig. 3).  We implement the
constraint machinery faithfully and offer several fusion strategies in
place of the profile-driven optimizer (COLA):

* ``manual`` — operators sharing a ``partition`` tag are fused; untagged
  operators get singleton PEs.  This is how the paper's Fig. 3 layout is
  expressed exactly.
* ``per_operator`` — one PE per operator.
* ``fuse_all`` — a single PE (when host pools and exlocations allow).
* ``balanced`` — greedy weight-balanced packing into ``target_pe_count``
  PEs, honouring colocation tags as atomic groups, partition exlocation,
  and host-pool compatibility.  Operator weight comes from the ``cost``
  operator param (default 1.0), standing in for profiling data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import CompilationError, ConstraintError
from repro.spl.application import Application
from repro.spl.graph import Edge, OperatorSpec
from repro.spl.parallel import ParallelRegionPlan, expand_parallel_regions


@dataclass
class PESpec:
    """A processing element: a set of fused operators plus placement needs."""

    index: int  #: 1-based index within the application (as in Fig. 3)
    operators: List[str] = field(default_factory=list)  #: operator full names
    host_pool: Optional[str] = None
    host_exlocations: Set[str] = field(default_factory=set)
    host_colocations: Set[str] = field(default_factory=set)
    #: state descriptors: operators whose class declares ``STATEFUL = True``
    #: (the PE runtime snapshots exactly these on graceful stop, and the
    #: elastic migration phase consults them when re-partitioning a region)
    stateful_ops: List[str] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"PESpec(#{self.index}, ops={self.operators})"


@dataclass
class CompiledApplication:
    """Result of compilation: the physical plan for one application."""

    application: Application
    pes: List[PESpec]
    #: operator full name -> PE index
    placement: Dict[str, int]
    #: edges crossing PE boundaries (need transport) vs fused edges
    inter_pe_edges: List[Edge]
    intra_pe_edges: List[Edge]
    #: region name -> plan, for applications with parallel annotations;
    #: ``application`` is then the *expanded* graph
    parallel_regions: Dict[str, ParallelRegionPlan] = field(default_factory=dict)
    #: the pre-expansion application (None when nothing was expanded); SAM
    #: recompiles it per job so live rescales never mutate a shared plan
    source_application: Optional[Application] = None
    #: compiler settings, kept so SAM can recompile per job
    strategy: str = "manual"
    target_pe_count: int = 0

    @property
    def name(self) -> str:
        return self.application.name

    def pe_of(self, operator_full_name: str) -> int:
        try:
            return self.placement[operator_full_name]
        except KeyError:
            raise CompilationError(
                f"operator {operator_full_name!r} not in compiled plan"
            ) from None

    def pe(self, index: int) -> PESpec:
        for pe in self.pes:
            if pe.index == index:
                return pe
        raise CompilationError(f"no PE with index {index}")


class SPLCompiler:
    """Partitions an application's operators into PEs."""

    STRATEGIES = ("manual", "per_operator", "fuse_all", "balanced")

    def __init__(self, strategy: str = "manual", target_pe_count: int = 0) -> None:
        if strategy not in self.STRATEGIES:
            raise CompilationError(
                f"unknown strategy {strategy!r}; choose from {self.STRATEGIES}"
            )
        if strategy == "balanced" and target_pe_count <= 0:
            raise CompilationError("balanced strategy requires target_pe_count > 0")
        self.strategy = strategy
        self.target_pe_count = target_pe_count

    # -- public API ----------------------------------------------------------

    def compile(self, application: Application) -> CompiledApplication:
        application.validate()
        source = application
        application, parallel_regions = expand_parallel_regions(application)
        if parallel_regions:
            application.validate()
        groups = self._atomic_groups(application)
        if self.strategy == "manual" or self.strategy == "per_operator":
            partitions = groups
        elif self.strategy == "fuse_all":
            partitions = self._fuse_all(groups)
        else:
            partitions = self._balanced(groups)
        self._check_exlocation(partitions)
        pes = self._build_pes(application, partitions)
        placement = {
            op_name: pe.index for pe in pes for op_name in pe.operators
        }
        inter, intra = [], []
        for edge in application.graph.edges:
            if placement[edge.src.full_name] == placement[edge.dst.full_name]:
                intra.append(edge)
            else:
                inter.append(edge)
        return CompiledApplication(
            application=application,
            pes=pes,
            placement=placement,
            inter_pe_edges=inter,
            intra_pe_edges=intra,
            parallel_regions=parallel_regions,
            source_application=source if parallel_regions else None,
            strategy=self.strategy,
            target_pe_count=self.target_pe_count,
        )

    # -- grouping ---------------------------------------------------------------

    def _atomic_groups(self, application: Application) -> List[List[OperatorSpec]]:
        """Indivisible operator groups: partition-tag groups + singletons.

        In ``per_operator`` mode, tags are ignored and everything is a
        singleton (used to model "no fusion" baselines).
        """
        specs = list(application.graph.operators.values())
        if self.strategy == "per_operator":
            return [[spec] for spec in specs]
        by_tag: Dict[str, List[OperatorSpec]] = {}
        singletons: List[List[OperatorSpec]] = []
        for spec in specs:
            if spec.partition is not None:
                by_tag.setdefault(spec.partition, []).append(spec)
            else:
                singletons.append([spec])
        groups = list(by_tag.values()) + singletons
        for group in groups:
            self._check_group_compatibility(group)
        return groups

    def _check_group_compatibility(self, group: Sequence[OperatorSpec]) -> None:
        pools = {s.host_pool for s in group if s.host_pool is not None}
        if len(pools) > 1:
            names = [s.full_name for s in group]
            raise ConstraintError(
                f"operators {names} are fused but demand different host pools {sorted(pools)}"
            )
        exloc_counts: Dict[str, int] = {}
        for spec in group:
            if spec.partition_exlocation is not None:
                exloc_counts[spec.partition_exlocation] = (
                    exloc_counts.get(spec.partition_exlocation, 0) + 1
                )
        for tag, count in exloc_counts.items():
            if count > 1:
                raise ConstraintError(
                    f"fused operators share partition exlocation tag {tag!r}"
                )

    def _fuse_all(
        self, groups: List[List[OperatorSpec]]
    ) -> List[List[OperatorSpec]]:
        merged = [spec for group in groups for spec in group]
        self._check_group_compatibility(merged)
        return [merged]

    def _balanced(
        self, groups: List[List[OperatorSpec]]
    ) -> List[List[OperatorSpec]]:
        """Greedy longest-processing-time packing of groups into N bins."""

        def group_weight(group: Sequence[OperatorSpec]) -> float:
            return sum(float(s.params.get("cost", 1.0)) for s in group)

        ordered = sorted(groups, key=group_weight, reverse=True)
        bins: List[List[OperatorSpec]] = [[] for _ in range(self.target_pe_count)]
        weights = [0.0] * self.target_pe_count
        for group in ordered:
            placed = False
            # try lightest-first bins that remain compatible
            for bin_index in sorted(
                range(self.target_pe_count), key=lambda i: weights[i]
            ):
                candidate = bins[bin_index] + list(group)
                try:
                    self._check_group_compatibility(candidate)
                except ConstraintError:
                    continue
                bins[bin_index] = candidate
                weights[bin_index] += group_weight(group)
                placed = True
                break
            if not placed:
                names = [s.full_name for s in group]
                raise ConstraintError(
                    f"could not place group {names} into {self.target_pe_count} PEs "
                    "without violating constraints"
                )
        return [b for b in bins if b]

    # -- constraint checks ---------------------------------------------------------

    def _check_exlocation(self, partitions: List[List[OperatorSpec]]) -> None:
        """Partition exlocation across PEs: tags must not repeat inside a PE.

        (Already enforced per group; this re-checks the final partitioning
        so every strategy goes through the same gate.)
        """
        for group in partitions:
            self._check_group_compatibility(group)

    # -- PE construction -----------------------------------------------------------

    def _build_pes(
        self, application: Application, partitions: List[List[OperatorSpec]]
    ) -> List[PESpec]:
        # Deterministic PE numbering: order groups by their first operator's
        # position in the graph insertion order.
        order = {name: i for i, name in enumerate(application.graph.operators)}
        partitions = sorted(partitions, key=lambda g: min(order[s.full_name] for s in g))
        pes: List[PESpec] = []
        for index, group in enumerate(partitions, start=1):
            pool = None
            for spec in group:
                if spec.host_pool is not None:
                    pool = spec.host_pool
                    break
            ordered_group = sorted(group, key=lambda s: order[s.full_name])
            pe = PESpec(
                index=index,
                operators=[s.full_name for s in ordered_group],
                host_pool=pool,
                host_exlocations={
                    s.host_exlocation for s in group if s.host_exlocation is not None
                },
                host_colocations={
                    s.host_colocation for s in group if s.host_colocation is not None
                },
                stateful_ops=[
                    s.full_name
                    for s in ordered_group
                    if getattr(s.op_class, "STATEFUL", False)
                ],
            )
            pes.append(pe)
        return pes
