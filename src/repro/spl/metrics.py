"""Runtime metrics.

SPL exposes two families of metrics (Sec. 2.1 of the paper):

* **built-in** metrics, common to every operator and PE — numbers of tuples
  processed/submitted, queue sizes, bytes processed;
* **custom** metrics, created by operator code at any point of execution and
  carrying operator-specific semantics (e.g. the sentiment application's
  counts of tweets with known and unknown causes).

Metrics are plain counters/gauges updated synchronously by operator and PE
code.  Host controllers snapshot them periodically and push them to SRM,
from which the ORCA service polls (Sec. 3).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Optional, Tuple


class MetricKind(enum.Enum):
    """How a metric's value evolves."""

    COUNTER = "counter"
    GAUGE = "gauge"
    TIME = "time"


class OperatorMetricName:
    """Well-known built-in operator metric names."""

    N_TUPLES_PROCESSED = "nTuplesProcessed"
    N_TUPLES_SUBMITTED = "nTuplesSubmitted"
    N_PUNCTS_PROCESSED = "nPunctsProcessed"
    N_FINAL_PUNCTS_PROCESSED = "nFinalPunctsProcessed"
    QUEUE_SIZE = "queueSize"

    #: All built-in operator metrics, in creation order.
    ALL = (
        N_TUPLES_PROCESSED,
        N_TUPLES_SUBMITTED,
        N_PUNCTS_PROCESSED,
        N_FINAL_PUNCTS_PROCESSED,
        QUEUE_SIZE,
    )

    #: Convenience alias mirroring ``OperatorMetricScope::queueSize`` usage
    #: in the paper's Fig. 5.
    queueSize = QUEUE_SIZE


class PEMetricName:
    """Well-known built-in PE metric names."""

    N_TUPLES_PROCESSED = "nTuplesProcessed"
    N_TUPLE_BYTES_PROCESSED = "nTupleBytesProcessed"
    N_TUPLES_SUBMITTED = "nTuplesSubmitted"
    N_RESTARTS = "nRestarts"

    ALL = (
        N_TUPLES_PROCESSED,
        N_TUPLE_BYTES_PROCESSED,
        N_TUPLES_SUBMITTED,
        N_RESTARTS,
    )


class Metric:
    """A single named counter or gauge."""

    __slots__ = ("name", "kind", "description", "_value")

    def __init__(
        self,
        name: str,
        kind: MetricKind = MetricKind.COUNTER,
        description: str = "",
        value: float = 0,
    ) -> None:
        self.name = name
        self.kind = kind
        self.description = description
        self._value = value

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = value

    def increment(self, amount: float = 1) -> None:
        self._value += amount

    def reset(self) -> None:
        self._value = 0

    def __repr__(self) -> str:
        return f"Metric({self.name}={self._value}, {self.kind.value})"


class MetricRegistry:
    """Set of metrics owned by one operator instance or one PE.

    Port-scoped metrics are stored under a composite key ``(port, name)``
    with ``port is None`` meaning operator/PE scope.  Iteration yields
    ``(port, name, metric)`` triples, which is the shape the host controller
    pushes to SRM.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[Optional[int], str], Metric] = {}

    def create(
        self,
        name: str,
        kind: MetricKind = MetricKind.COUNTER,
        description: str = "",
        port: Optional[int] = None,
    ) -> Metric:
        key = (port, name)
        if key in self._metrics:
            raise ValueError(f"metric {name!r} (port={port}) already exists")
        metric = Metric(name, kind, description)
        self._metrics[key] = metric
        return metric

    def get_or_create(
        self,
        name: str,
        kind: MetricKind = MetricKind.COUNTER,
        port: Optional[int] = None,
    ) -> Metric:
        key = (port, name)
        metric = self._metrics.get(key)
        if metric is None:
            metric = Metric(name, kind)
            self._metrics[key] = metric
        return metric

    def get(self, name: str, port: Optional[int] = None) -> Metric:
        try:
            return self._metrics[(port, name)]
        except KeyError:
            raise KeyError(f"no metric {name!r} (port={port})") from None

    def has(self, name: str, port: Optional[int] = None) -> bool:
        return (port, name) in self._metrics

    def __iter__(self) -> Iterator[Tuple[Optional[int], str, Metric]]:
        for (port, name), metric in self._metrics.items():
            yield port, name, metric

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[Tuple[Optional[int], str], float]:
        """Point-in-time copy of all values (used by the host controller)."""
        return {key: metric.value for key, metric in self._metrics.items()}
