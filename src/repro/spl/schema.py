"""Tuple schemas.

SPL streams are strongly typed; we keep a lightweight structural equivalent:
a :class:`TupleSchema` is an ordered list of named, typed attributes.
Schemas validate tuples at stream boundaries when validation is enabled
(it is on by default in tests, off in benchmarks for speed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Tuple

from repro.errors import SchemaError

#: Python types accepted as SPL attribute types.
_ALLOWED_TYPES = (int, float, str, bool, list, dict, tuple, bytes, object)


@dataclass(frozen=True)
class Attribute:
    """A single named, typed attribute of a schema."""

    name: str
    type: type

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"attribute name {self.name!r} is not an identifier")
        if self.type not in _ALLOWED_TYPES:
            raise SchemaError(
                f"attribute type {self.type!r} not supported; "
                f"use one of {[t.__name__ for t in _ALLOWED_TYPES]}"
            )


class TupleSchema:
    """Ordered collection of attributes describing tuples on a stream."""

    __slots__ = ("_attributes", "_by_name")

    def __init__(self, attributes: Iterable[Tuple[str, type]]) -> None:
        attrs = tuple(Attribute(name, type_) for name, type_ in attributes)
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        self._attributes = attrs
        self._by_name = {a.name: a for a in attrs}

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TupleSchema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def attribute(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"schema has no attribute {name!r}") from None

    def validate(self, values: Mapping[str, Any]) -> None:
        """Raise :class:`SchemaError` if ``values`` does not match the schema.

        ``int`` values are accepted where ``float`` is declared, mirroring
        SPL's implicit widening.  An ``object``-typed attribute accepts any
        value.
        """
        for attr in self._attributes:
            if attr.name not in values:
                raise SchemaError(f"missing attribute {attr.name!r}")
            value = values[attr.name]
            if attr.type is object:
                continue
            if attr.type is float and isinstance(value, int):
                continue
            if not isinstance(value, attr.type):
                raise SchemaError(
                    f"attribute {attr.name!r} expects {attr.type.__name__}, "
                    f"got {type(value).__name__} ({value!r})"
                )
        extra = set(values) - set(self.names)
        if extra:
            raise SchemaError(f"unexpected attributes {sorted(extra)}")

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.name}: {a.type.__name__}" for a in self._attributes)
        return f"TupleSchema<{inner}>"

    @classmethod
    def of(cls, **attrs: type) -> "TupleSchema":
        """Convenience constructor: ``TupleSchema.of(symbol=str, price=float)``."""
        return cls(tuple(attrs.items()))


#: Schema that accepts any payload; used by generic control/display streams.
ANY_SCHEMA = TupleSchema.of(payload=object)
