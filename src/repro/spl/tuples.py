"""Stream data items: tuples and punctuations.

A :class:`StreamTuple` is an immutable-ish record of attribute values plus
bookkeeping (creation time, an estimated wire size used for the PE byte
metrics).  :class:`Punctuation` markers flow through the same channels as
tuples; ``FINAL`` punctuation signals that a stream will never carry tuples
again, and its propagation through the graph is managed by the runtime
(Sec. 5.3 of the paper relies on final punctuation to garbage-collect C3
applications).
"""

from __future__ import annotations

import enum
from typing import Any, Iterator, List, Mapping, Optional


class Punctuation(enum.Enum):
    """Marker kinds that can be interleaved with tuples on a stream."""

    WINDOW = "window"
    FINAL = "final"


#: Singletons used when submitting punctuation.
WindowMarker = Punctuation.WINDOW
FinalMarker = Punctuation.FINAL


class StreamTuple:
    """A data item flowing on a stream.

    Attribute values are held in a plain dict; attribute access is provided
    both via item syntax (``t["price"]``) and :meth:`get`.  Tuples estimate
    their serialized size once at construction so the runtime can maintain
    the ``nTupleBytesProcessed`` built-in PE metric cheaply.
    """

    __slots__ = ("values", "created_at", "size_bytes", "traced")

    #: Baseline per-tuple framing overhead, in bytes (header + ports).
    FRAME_OVERHEAD = 24

    def __init__(
        self,
        values: Mapping[str, Any],
        created_at: float = 0.0,
        size_bytes: Optional[int] = None,
        traced: bool = False,
    ) -> None:
        self.values = dict(values)
        self.created_at = created_at
        if size_bytes is None:
            size_bytes = self.FRAME_OVERHEAD + _estimate_size(self.values)
        self.size_bytes = size_bytes
        #: sampled for span tracing (repro.obs); decided once at creation
        #: and propagated through derived copies so a traced tuple's whole
        #: path shows up in the flight recorder
        self.traced = traced

    def __getitem__(self, name: str) -> Any:
        return self.values[name]

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def get(self, name: str, default: Any = None) -> Any:
        return self.values.get(name, default)

    def with_values(self, **updates: Any) -> "StreamTuple":
        """Return a copy of this tuple with some attributes replaced/added."""
        merged = dict(self.values)
        merged.update(updates)
        return StreamTuple(merged, created_at=self.created_at, traced=self.traced)

    def project(self, *names: str) -> "StreamTuple":
        """Return a copy containing only the named attributes."""
        return StreamTuple(
            {n: self.values[n] for n in names},
            created_at=self.created_at,
            traced=self.traced,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamTuple):
            return NotImplemented
        return self.values == other.values

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, repr(v)) for k, v in self.values.items())))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.values.items())
        return f"StreamTuple({inner})"


class TupleBatch:
    """A contiguous run of tuples travelling as one unit of work.

    When transport batching is on (``SystemConfig.batch_max_size > 1``)
    the transport coalesces same-flow tuples into one of these, schedules
    a *single* kernel event for the whole run, and the PE hands the run
    to the destination operator through one ``process_batch`` call —
    amortizing scheduling and dispatch overhead across every member.
    Punctuation never rides in a batch: markers flush the open batch and
    travel singly, so ordering relative to the tuples ahead of them is
    preserved.

    Aggregates (total wire size, whether any member is traced) are
    computed once at construction; the member list is owned by the batch
    after construction and must not be mutated.
    """

    __slots__ = ("tuples", "size_bytes", "traced")

    def __init__(self, tuples: List[StreamTuple]) -> None:
        self.tuples = tuples
        self.size_bytes = sum(t.size_bytes for t in tuples)
        self.traced = any(t.traced for t in tuples)

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self.tuples)

    def __repr__(self) -> str:
        return f"TupleBatch(n={len(self.tuples)}, bytes={self.size_bytes})"


def estimate_value_size(value: Any) -> int:
    """Cheap, deterministic byte estimate of one attribute/state value.

    The single accounting scheme shared by tuple wire sizes
    (``nTupleBytesProcessed``) and the operator-state footprint gauges
    (``stateBytes``) — keeping both on one ruler means thresholds
    calibrated against transport metrics transfer to state metrics.
    """
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, (list, tuple, set, frozenset)):
        return 8 + sum(estimate_value_size(v) for v in value)
    if isinstance(value, dict):
        return 8 + sum(
            estimate_value_size(k) + estimate_value_size(v)
            for k, v in value.items()
        )
    size_bytes = getattr(value, "size_bytes", None)  # nested StreamTuple
    if isinstance(size_bytes, int):
        return size_bytes
    return 16


def _estimate_size(values: Mapping[str, Any]) -> int:
    """Size estimate of a tuple's attribute map (keys + values)."""
    return sum(
        len(key) + estimate_value_size(value) for key, value in values.items()
    )
