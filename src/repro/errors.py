"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch everything coming out of the simulated middleware or the
orchestrator with a single ``except`` clause.  The sub-hierarchy mirrors the
components of the system: SPL compilation, the System S runtime, and the
orchestrator (ORCA) service.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# SPL / compilation errors
# ---------------------------------------------------------------------------


class SPLError(ReproError):
    """Base class for errors in application composition or compilation."""


class SchemaError(SPLError):
    """A tuple does not conform to the schema of the stream carrying it."""


class GraphError(SPLError):
    """Invalid logical graph construction (bad ports, duplicate names...)."""


class CompositeError(GraphError):
    """Invalid composite operator definition or instantiation."""


class CompilationError(SPLError):
    """The compiler could not partition the application into PEs."""


class ConstraintError(CompilationError):
    """Partition or placement constraints are unsatisfiable."""


class ADLError(SPLError):
    """Malformed ADL document (serialization or parsing)."""


class ParallelRegionError(SPLError):
    """Invalid parallel-region annotation or expansion (bad chain, width...)."""


# ---------------------------------------------------------------------------
# Runtime (System S) errors
# ---------------------------------------------------------------------------


class RuntimeFault(ReproError):
    """Base class for errors raised by the simulated System S runtime."""


class SubmissionError(RuntimeFault):
    """A job could not be submitted (no hosts, bad ADL, name clash...)."""


class PlacementError(SubmissionError):
    """The scheduler could not place every PE on a host."""


class CancellationError(RuntimeFault):
    """A job could not be cancelled."""


class UnknownJobError(RuntimeFault):
    """A job id does not name a job known to SAM."""


class UnknownPEError(RuntimeFault):
    """A PE id does not name a PE known to the runtime."""


class UnknownHostError(RuntimeFault):
    """A host name does not name a host registered with SRM."""


class PEControlError(RuntimeFault):
    """An invalid PE lifecycle operation (e.g. restarting a running PE)."""


class ElasticError(RuntimeFault):
    """A parallel-region rescale could not be started or completed."""


# ---------------------------------------------------------------------------
# Orchestrator (ORCA) errors
# ---------------------------------------------------------------------------


class OrcaError(ReproError):
    """Base class for orchestrator errors."""


class ScopeError(OrcaError):
    """Invalid event scope definition or registration."""


class OrcaPermissionError(OrcaError):
    """The ORCA logic acted on a job it did not start (Sec. 3 of the paper)."""


class InspectionError(OrcaError):
    """A stream-graph inspection query referenced an unknown entity."""


class DependencyError(OrcaError):
    """Invalid application dependency registration (unknown config...)."""


class DependencyCycleError(DependencyError):
    """Registering the dependency would create a cycle (Sec. 4.4)."""


class StarvationError(DependencyError):
    """Cancelling the application would starve a running dependent (Sec. 4.4)."""


class DescriptorError(OrcaError):
    """Malformed orchestrator descriptor document."""


class ActuationError(OrcaError):
    """An actuation request failed (e.g. host pools changed post-submit)."""
