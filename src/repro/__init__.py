"""repro — reproduction of "Building User-defined Runtime Adaptation
Routines for Stream Processing Applications" (Jacques-Silva et al.,
PVLDB 5(12), 2012).

The package provides:

* :mod:`repro.spl` — an SPL-like composition layer (operators, composite
  operators, compiler producing PE partitions and ADL XML);
* :mod:`repro.runtime` — a deterministic simulated System S middleware
  (SAM / SRM / host controllers / PEs / dynamic import-export / failures);
* :mod:`repro.orca` — the paper's contribution: the orchestrator
  framework (ORCA logic base class + ORCA service with event scopes,
  contexts, epochs, stream-graph inspection, actuation, and application
  dependency management);
* :mod:`repro.apps` — the paper's three use-case applications and their
  orchestrators (sentiment adaptation, replica failover, dynamic
  composition), plus synthetic workloads.

Quickstart::

    from repro import SystemS, OrcaDescriptor, ManagedApplication
    from repro.apps.figure2 import build_figure2_application

    system = SystemS(hosts=2)
    app = build_figure2_application()
    descriptor = OrcaDescriptor(
        name="MyOrca", logic=MyOrca,
        applications=[ManagedApplication(name=app.name, application=app)],
    )
    service = system.submit_orchestrator(descriptor)
    service.submit_application(app.name)
    system.run_for(60.0)
"""

from repro.errors import ReproError
from repro.orca import (
    AppConfig,
    ManagedApplication,
    Orchestrator,
    OrcaDescriptor,
    OrcaService,
)
from repro.runtime import Host, SystemConfig, SystemS
from repro.spl import Application, CompositeDefinition, HostPool

__version__ = "1.0.0"

__all__ = [
    "AppConfig",
    "Application",
    "CompositeDefinition",
    "Host",
    "HostPool",
    "ManagedApplication",
    "Orchestrator",
    "OrcaDescriptor",
    "OrcaService",
    "ReproError",
    "SystemConfig",
    "SystemS",
    "__version__",
]
