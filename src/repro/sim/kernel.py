"""Discrete-event simulation kernel.

The kernel owns a priority queue of scheduled callbacks keyed by
``(time, sequence)``.  Ties in time are broken by scheduling order, which
makes runs fully deterministic.  Components schedule work with
:meth:`Kernel.schedule` (relative delay) or :meth:`Kernel.schedule_at`
(absolute time) and may cancel the returned handle.

The kernel deliberately has no notion of threads: the "application
submission thread" and "cancellation thread" of the paper's Sec. 4.4, PE
metric pushes, SRM polls and failure detections are all modelled as chains
of scheduled callbacks on one clock.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.clock import Clock


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        label: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        # heap comparisons dominate the scheduler hot path; comparing the
        # fields directly avoids two tuple allocations per comparison
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"ScheduledEvent(t={self.time:.3f}, {self.label or self.callback}, {state})"


class Kernel:
    """Deterministic discrete-event scheduler over a shared :class:`Clock`.

    Also the reference implementation of the executor contract
    (:class:`repro.runtime.exec.base.Executor`, where it is registered
    as a virtual subclass — this module must not import upward).
    """

    #: executor contract: virtual time, not the host's monotonic clock
    wall_clock = False

    #: executor contract: short backend name for logs and artifacts
    backend_name = "sim"

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False
        #: optional observer of every executed event (repro.obs installs
        #: one when tracing is enabled); None keeps the loop at a single
        #: attribute check per event
        self.event_tap: Optional[Callable[[ScheduledEvent], None]] = None

    # -- scheduling ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for tests and stats)."""
        return self._events_processed

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self.clock.now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < {self.clock.now}"
            )
        event = ScheduledEvent(time, self._seq, callback, args, label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def call_soon(
        self, callback: Callable[..., Any], *args: Any, label: str = ""
    ) -> ScheduledEvent:
        """Schedule a callback at the current time (after pending same-time work)."""
        return self.schedule_at(self.clock.now, callback, *args, label=label)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Run the single next pending event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock._advance_to(event.time)
            self._events_processed += 1
            if self.event_tap is not None:
                self.event_tap(event)
            event.callback(*event.args)
            return True
        return False

    def run_until(self, time: float) -> None:
        """Process all events with timestamp <= ``time``; leave clock at ``time``.

        Events scheduled during execution are processed too as long as they
        fall within the horizon, so chained periodic activities (metric
        pushes, polls) advance naturally.
        """
        if time < self.clock.now:
            raise ValueError(f"cannot run into the past: {time} < {self.clock.now}")
        self._running = True
        # hoisted locals: this loop executes every event in the
        # simulation, so each attribute lookup shaved here is paid back
        # millions of times (self._heap is only ever mutated in place,
        # never rebound, so the local alias stays valid)
        heap = self._heap
        heappop = heapq.heappop
        advance = self.clock._advance_to
        try:
            while heap:
                event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    continue
                if event.time > time:
                    break
                heappop(heap)
                advance(event.time)
                self._events_processed += 1
                if self.event_tap is not None:
                    self.event_tap(event)
                event.callback(*event.args)
            advance(time)
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Convenience wrapper: run ``duration`` seconds past the current time."""
        self.run_until(self.clock.now + duration)

    def run(self, max_events: int = 1_000_000) -> None:
        """Drain the event queue completely (bounded by ``max_events``)."""
        count = 0
        while self.step():
            count += 1
            if count >= max_events:
                raise RuntimeError(
                    f"kernel did not quiesce within {max_events} events; "
                    "likely an unbounded periodic activity — use run_until()"
                )

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for event in self._heap if not event.cancelled)
