"""Deterministic discrete-event simulation substrate.

Every runtime component of the simulated System S middleware (SAM, SRM, host
controllers, PEs) and of the orchestrator (metric polling, dependency
submission threads, timers) is driven by one :class:`~repro.sim.kernel.Kernel`
instance so that entire end-to-end scenarios — including failures and
adaptation — replay identically from a seed.
"""

from repro.sim.clock import Clock
from repro.sim.kernel import Kernel, ScheduledEvent
from repro.sim.rand import RandomStreams

__all__ = ["Clock", "Kernel", "ScheduledEvent", "RandomStreams"]
