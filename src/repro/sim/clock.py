"""Simulated wall clock.

The clock is advanced only by the :class:`~repro.sim.kernel.Kernel`; every
component that needs the current time holds a reference to the shared clock
and reads :attr:`Clock.now`.  Times are floating-point seconds since the
start of the simulation.
"""

from __future__ import annotations


class Clock:
    """Monotonically advancing simulated time in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def _advance_to(self, time: float) -> None:
        """Move the clock forward.  Only the kernel may call this."""
        if time < self._now:
            raise ValueError(
                f"clock cannot move backwards: {time} < {self._now}"
            )
        self._now = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.3f})"
