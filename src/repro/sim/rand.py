"""Seeded random-number streams, one per named component.

Giving each component (workload generator, scheduler, failure injector...)
its own :class:`random.Random` derived from a root seed keeps scenarios
reproducible even when components are added or reordered: drawing numbers in
one stream never perturbs another.
"""

from __future__ import annotations

import random
import zlib


class RandomStreams:
    """Factory of independent deterministic random streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        derived = (self.seed * 1_000_003) ^ zlib.crc32(name.encode("utf-8"))
        stream = random.Random(derived)
        self._streams[name] = stream
        return stream

    def reset(self) -> None:
        """Drop all derived streams (they are recreated from the seed)."""
        self._streams.clear()
