"""Event scopes.

Sec. 4.1 of the paper: the ORCA service event scope is a **disjunction of
subscopes**; an event is delivered when it matches at least one registered
subscope (and only once, even when several match).  A subscope names an
event *type* (PE failure, operator metric, ...) and may be refined with
attribute filters.  Filter semantics:

* conditions on the **same attribute are disjunctive** ("application A or
  application B"),
* conditions on **different attributes are conjunctive** ("application A
  *and* contained within composite type composite1"),
* composite filters match through **any nesting depth** — which is why the
  equivalent SQL formulation needs a recursive query (see
  :mod:`repro.orca.sqlbaseline`).

The ``add*Filter`` method names follow the paper's Fig. 5 verbatim.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set, Union

from repro.errors import ScopeError

Values = Union[str, int, Iterable]


def _as_set(values: Values) -> Set:
    if isinstance(values, (str, int)):
        return {values}
    result = set(values)
    if not result:
        raise ScopeError("filter needs at least one value")
    return result


def to_string(metric_name: str) -> str:
    """Paper-parity helper: Fig. 6 calls ``toString(OperatorMetricScope::queueSize)``.

    Our metric identifiers are already strings, so this is the identity —
    kept so the paper's listings translate literally.
    """
    return metric_name


class EventScope:
    """Base class: one subscope with attribute filters."""

    #: Event type this subscope selects; set by subclasses.
    EVENT_TYPE = ""
    #: Additional event types this subscope also selects (a subscope is
    #: normally one event type; family scopes such as
    #: :class:`ParallelRegionScope` cover several related types).
    EVENT_TYPES: tuple = ()

    def handles(self, event_type: str) -> bool:
        return event_type == self.EVENT_TYPE or event_type in self.EVENT_TYPES

    def __init__(self, key: str) -> None:
        if not key:
            raise ScopeError("subscope key must be non-empty")
        self.key = key
        self._filters: Dict[str, Set] = {}

    # -- filter framework ------------------------------------------------------

    def _add(self, attribute: str, values: Values) -> None:
        self._filters.setdefault(attribute, set()).update(_as_set(values))

    def filters(self) -> Mapping[str, Set]:
        return dict(self._filters)

    def matches(self, attrs: Mapping[str, object]) -> bool:
        """Evaluate this subscope against an event's attribute map.

        ``attrs`` maps attribute name to either a scalar or a collection
        (collections arise from containment chains: an operator is "in"
        every enclosing composite).  Missing attribute => no match for any
        filter on it.
        """
        for attribute, allowed in self._filters.items():
            actual = attrs.get(attribute)
            if actual is None:
                return False
            if isinstance(actual, (set, frozenset, list, tuple)):
                if not allowed.intersection(actual):
                    return False
            else:
                if actual not in allowed:
                    return False
        return True

    # -- filters common to most subscopes -----------------------------------------

    def addApplicationFilter(self, names: Values) -> "EventScope":  # noqa: N802
        self._add("application", names)
        return self

    def addJobFilter(self, job_ids: Values) -> "EventScope":  # noqa: N802
        self._add("job", job_ids)
        return self

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.key!r}, filters={self._filters})"


class _GraphScopedMixin:
    """Filters that need the stream-graph containment information."""

    def addCompositeTypeFilter(self, kinds: Values) -> "EventScope":  # noqa: N802
        self._add("composite_type", kinds)  # type: ignore[attr-defined]
        return self  # type: ignore[return-value]

    def addCompositeInstanceFilter(self, names: Values) -> "EventScope":  # noqa: N802
        self._add("composite_instance", names)  # type: ignore[attr-defined]
        return self  # type: ignore[return-value]


class OperatorMetricScope(_GraphScopedMixin, EventScope):
    """Operator-scope metric events (Fig. 5 of the paper)."""

    EVENT_TYPE = "operator_metric"

    #: Built-in metric identifiers, mirroring ``OperatorMetricScope::...``
    queueSize = "queueSize"
    nTuplesProcessed = "nTuplesProcessed"
    nTuplesSubmitted = "nTuplesSubmitted"
    nPunctsProcessed = "nPunctsProcessed"
    nFinalPunctsProcessed = "nFinalPunctsProcessed"

    def addOperatorTypeFilter(self, kinds: Values) -> "OperatorMetricScope":  # noqa: N802
        self._add("operator_type", kinds)
        return self

    def addOperatorInstanceFilter(self, names: Values) -> "OperatorMetricScope":  # noqa: N802
        self._add("operator_instance", names)
        return self

    def addOperatorMetric(self, names: Values) -> "OperatorMetricScope":  # noqa: N802
        self._add("metric_name", names)
        return self

    def addPEFilter(self, pe_ids: Values) -> "OperatorMetricScope":  # noqa: N802
        self._add("pe", pe_ids)
        return self

    def addHostFilter(self, hosts: Values) -> "OperatorMetricScope":  # noqa: N802
        self._add("host", hosts)
        return self


class OperatorPortMetricScope(OperatorMetricScope):
    """Port-scope operator metric events (queueSize of one input port...)."""

    EVENT_TYPE = "operator_port_metric"

    def addPortFilter(self, ports: Values) -> "OperatorPortMetricScope":  # noqa: N802
        self._add("port", ports)
        return self


class PEMetricScope(EventScope):
    """PE-scope metric events."""

    EVENT_TYPE = "pe_metric"

    nTuplesProcessed = "nTuplesProcessed"
    nTupleBytesProcessed = "nTupleBytesProcessed"
    nTuplesSubmitted = "nTuplesSubmitted"
    nRestarts = "nRestarts"

    def addPEMetric(self, names: Values) -> "PEMetricScope":  # noqa: N802
        self._add("metric_name", names)
        return self

    def addPEFilter(self, pe_ids: Values) -> "PEMetricScope":  # noqa: N802
        self._add("pe", pe_ids)
        return self

    def addHostFilter(self, hosts: Values) -> "PEMetricScope":  # noqa: N802
        self._add("host", hosts)
        return self


class PEFailureScope(_GraphScopedMixin, EventScope):
    """PE failure events (Fig. 5 line 10)."""

    EVENT_TYPE = "pe_failure"

    def addPEFilter(self, pe_ids: Values) -> "PEFailureScope":  # noqa: N802
        self._add("pe", pe_ids)
        return self

    def addHostFilter(self, hosts: Values) -> "PEFailureScope":  # noqa: N802
        self._add("host", hosts)
        return self

    def addReasonFilter(self, reasons: Values) -> "PEFailureScope":  # noqa: N802
        self._add("reason", reasons)
        return self


class HostFailureScope(EventScope):
    """Host failure events."""

    EVENT_TYPE = "host_failure"

    def addHostFilter(self, hosts: Values) -> "HostFailureScope":  # noqa: N802
        self._add("host", hosts)
        return self


class JobSubmissionScope(EventScope):
    """Job submission notifications (generated by the ORCA service itself)."""

    EVENT_TYPE = "job_submission"

    def addConfigFilter(self, config_ids: Values) -> "JobSubmissionScope":  # noqa: N802
        self._add("config", config_ids)
        return self


class JobCancellationScope(EventScope):
    """Job cancellation notifications (generated by the ORCA service itself)."""

    EVENT_TYPE = "job_cancellation"

    def addConfigFilter(self, config_ids: Values) -> "JobCancellationScope":  # noqa: N802
        self._add("config", config_ids)
        return self


class TimerScope(EventScope):
    """Timer expirations."""

    EVENT_TYPE = "timer"

    def addTimerFilter(self, timer_ids: Values) -> "TimerScope":  # noqa: N802
        self._add("timer", timer_ids)
        return self


class UserEventScope(EventScope):
    """User-generated events injected through the command tool."""

    EVENT_TYPE = "user"

    def addNameFilter(self, names: Values) -> "UserEventScope":  # noqa: N802
        self._add("name", names)
        return self


class ParallelRegionScope(EventScope):
    """Parallel-region lifecycle events (the elastic subsystem).

    Covers the related event types with one subscope, so ORCA logic that
    drives elasticity registers a single scope:

    * ``channel_congested`` — one channel's aggregated backlog exceeded
      the region's congestion threshold at the last metric poll;
    * ``region_rescaled`` — a ``set_channel_width()`` actuation completed
      and the region is flowing at its new width;
    * ``region_state_migrated`` — the rescale's migration phase moved
      keyed operator state between channels (delivered right before the
      matching ``region_rescaled``);
    * ``channel_rerouted`` — a channel was masked out of (or restored to)
      the splitter's hash ring because its PE crashed / restarted.

    State-aware routines pair this scope with the service's region
    inspection API — ``state_of(job, region, key)`` for one key's owner
    channel and values, ``region_state_sizes()`` for per-channel
    ``stateBytes`` aggregates from SRM.
    """

    EVENT_TYPE = "channel_congested"
    EVENT_TYPES = (
        "channel_congested",
        "region_rescaled",
        "region_state_migrated",
        "channel_rerouted",
        "state_reclaimed",
    )

    #: metric identifiers commonly used as region congestion metrics
    queueSize = "queueSize"
    nBuffered = "nBuffered"
    #: per-operator state-footprint gauges collected by the host controllers
    stateBytes = "stateBytes"
    nStateKeys = "nStateKeys"

    def addRegionFilter(self, names: Values) -> "ParallelRegionScope":  # noqa: N802
        self._add("region", names)
        return self

    def addEventTypeFilter(self, kinds: Values) -> "ParallelRegionScope":  # noqa: N802
        """Restrict to a subset of the region event kinds (e.g.
        ``channel_congested``, ``region_state_migrated``)."""
        self._add("event_kind", kinds)
        return self

    def addChannelFilter(self, channels: Values) -> "ParallelRegionScope":  # noqa: N802
        """Restrict to events touching specific channel indices.

        Channel-scoped events (``channel_congested``, ``channel_rerouted``)
        match on their single channel; region-wide events
        (``region_rescaled``, ``region_state_migrated``) carry every
        channel index and therefore still match any channel filter.
        """
        self._add("channel", channels)
        return self


class CheckpointScope(EventScope):
    """Checkpoint / recovery lifecycle events (the state subsystem).

    Covers the related event types with one subscope, so ORCA logic that
    reasons about state durability registers a single scope:

    * ``checkpoint_committed`` — a PE's state store was captured and the
      epoch committed (carries incremental-capture statistics);
    * ``state_reclaimed`` — a restarted channel got its detour-accrued
      keyed state back at unmask time;
    * ``rehydrate_skipped`` — a ``restart_pe(rehydrate=True)`` found
      neither a committed checkpoint epoch nor a quiesced snapshot and
      the PE restarted empty.

    Staleness-reactive routines pair this scope with the ``checkpointLag``
    PE gauge in SRM (a :class:`PEMetricScope` on that metric) and the
    service's ``checkpoint_status()`` / ``checkpoint_now()`` hooks.
    """

    EVENT_TYPE = "checkpoint_committed"
    EVENT_TYPES = (
        "checkpoint_committed",
        "state_reclaimed",
        "rehydrate_skipped",
    )

    #: the PE-level staleness gauge collected at every metric push
    checkpointLag = "checkpointLag"

    def addPEFilter(self, pe_ids: Values) -> "CheckpointScope":  # noqa: N802
        self._add("pe", pe_ids)
        return self

    def addRegionFilter(self, names: Values) -> "CheckpointScope":  # noqa: N802
        self._add("region", names)
        return self

    def addEventTypeFilter(self, kinds: Values) -> "CheckpointScope":  # noqa: N802
        """Restrict to a subset of the checkpoint event kinds."""
        self._add("event_kind", kinds)
        return self


class ChaosScope(EventScope):
    """Chaos-campaign injection events (the :mod:`repro.chaos` subsystem).

    A routine that registers this scope *sees* injected faults as
    ``chaos_injected`` events (and can correlate its own reactions with
    the campaign); a routine tested blind to the campaign simply does
    not register it — the events then match no subscope and are dropped,
    exactly like any other unsubscribed event type.
    """

    EVENT_TYPE = "chaos_injected"

    def addScenarioFilter(self, names: Values) -> "ChaosScope":  # noqa: N802
        """Restrict to injections of specific scenarios."""
        self._add("scenario", names)
        return self

    def addKindFilter(self, kinds: Values) -> "ChaosScope":  # noqa: N802
        """Restrict to perturbation kinds (``pe_flap``, ``rate_surge``...)."""
        self._add("kind", kinds)
        return self

    def addTargetFilter(self, targets: Values) -> "ChaosScope":  # noqa: N802
        """Restrict to injection targets (PE ids, hosts, regions)."""
        self._add("target", targets)
        return self


class HealthScope(EventScope):
    """SLO burn-rate alerts from the health plane (repro.obs.health).

    A routine that registers this scope sees ``health_alert`` events
    whenever a registered :class:`~repro.obs.slo.Slo` raises or
    escalates; unsubscribed services drop the events like any other
    type.  Filters compose conjunctively across attributes, so
    ``HealthScope("lat").addSloFilter("p95").addSeverityFilter("page")``
    only wakes the routine for pages of that one objective.
    """

    EVENT_TYPE = "health_alert"

    def addSloFilter(self, names: Values) -> "HealthScope":  # noqa: N802
        """Restrict to specific objectives by name."""
        self._add("slo", names)
        return self

    def addSignalFilter(self, signals: Values) -> "HealthScope":  # noqa: N802
        """Restrict to signals (``latency_p95``, ``loss``, ``lag``)."""
        self._add("signal", signals)
        return self

    def addSeverityFilter(self, severities: Values) -> "HealthScope":  # noqa: N802
        """Restrict to severities (``warn``, ``page``)."""
        self._add("severity", severities)
        return self

    def addRegionFilter(self, regions: Values) -> "HealthScope":  # noqa: N802
        """Restrict to alerts scoped to specific parallel regions."""
        self._add("region", regions)
        return self


class ScopeRegistry:
    """The set of subscopes registered with one ORCA service.

    Matching returns the keys of *all* matching subscopes (the first item
    the service delivers alongside the context, Sec. 4.2); the service
    still delivers the event only once.
    """

    def __init__(self) -> None:
        self._scopes: List[EventScope] = []

    def register(self, scope: EventScope) -> None:
        if not isinstance(scope, EventScope):
            raise ScopeError(f"not an event scope: {scope!r}")
        if any(s.key == scope.key for s in self._scopes):
            raise ScopeError(f"subscope key {scope.key!r} already registered")
        self._scopes.append(scope)

    def unregister(self, key: str) -> bool:
        before = len(self._scopes)
        self._scopes = [s for s in self._scopes if s.key != key]
        return len(self._scopes) != before

    def matching_keys(self, event_type: str, attrs: Mapping[str, object]) -> List[str]:
        return [
            scope.key
            for scope in self._scopes
            if scope.handles(event_type) and scope.matches(attrs)
        ]

    def scopes_of_type(self, event_type: str) -> List[EventScope]:
        return [s for s in self._scopes if s.handles(event_type)]

    def __len__(self) -> int:
        return len(self._scopes)

    def __iter__(self):
        return iter(self._scopes)
