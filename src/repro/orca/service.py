"""OrcaService — the orchestrator runtime daemon.

Fig. 4 of the paper: users submit the orchestrator descriptor to SAM,
which forks a process for the ORCA service; the service loads the ORCA
logic shared library, invokes the start callback, and from then on

* **generates events**: from itself (start, job submission/cancellation,
  timers), from SRM metric polls (default every 15 s, adjustable), from
  SAM failure push notifications (one extra RPC), and from the command
  tool (user events);
* **matches** every event against the registered scope (disjunction of
  subscopes; delivered once with *all* matching keys);
* **delivers** events to the ORCA logic one at a time, in arrival order,
  with context + epoch;
* **actuates** on behalf of the logic: submit/cancel managed applications,
  restart/stop PEs, rewrite host pools to exclusive, send operator control
  commands, run external commands — refusing to act on jobs this
  orchestrator did not start (Sec. 3);
* **inspects**: the in-memory stream graph queries of Sec. 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import (
    ActuationError,
    DescriptorError,
    InspectionError,
    OrcaPermissionError,
)
from repro.orca.commandtool import OrcaCommandTool
from repro.orca.contexts import (
    ChannelCongestedContext,
    ChannelReroutedContext,
    ChaosInjectedContext,
    CheckpointCommittedContext,
    HealthAlertContext,
    HostFailureContext,
    JobCancellationContext,
    JobSubmissionContext,
    OperatorMetricContext,
    OperatorPortMetricContext,
    OrcaStartContext,
    PEFailureContext,
    PEMetricContext,
    RegionRescaledContext,
    RegionStateMigratedContext,
    RehydrateSkippedContext,
    StateReclaimedContext,
    TimerContext,
    UserEventContext,
)
from repro.obs.listeners import RuntimeSubscription, subscribe_runtime
from repro.orca.dependencies import DependencyManager
from repro.orca.descriptor import ManagedApplication, OrcaDescriptor
from repro.orca.epochs import FailureEpochTracker, MetricEpochCounter
from repro.orca.events import EventQueue, OrcaEvent, QueueLatencyStats
from repro.orca.scopes import ScopeRegistry, EventScope
from repro.orca.streamgraph import StreamGraph
from repro.orca.timers import TimerHandle, TimerService
from repro.spl.adl import adl_from_xml, adl_to_xml
from repro.spl.compiler import CompiledApplication, SPLCompiler
from repro.runtime.job import Job, JobState
from repro.runtime.pe import PERuntime
from repro.runtime.srm import MetricSample
from repro.runtime.system import SystemS


@dataclass
class ActuationRecord:
    """One actuation, attributed to the event transaction that caused it.

    Implements the future-work hook of Sec. 7 (actuation replay): every
    actuation is logged with the transaction id of the event being handled
    (0 when issued outside a handler).
    """

    txn_id: int
    action: str
    detail: str
    time: float


class OrcaService:
    """The runtime half of an orchestrator."""

    def __init__(self, orca_id: str, system: SystemS, descriptor: OrcaDescriptor) -> None:
        self.orca_id = orca_id
        self.system = system
        self.descriptor = descriptor
        self.kernel = system.kernel
        self.logic = descriptor.create_logic()
        self.logic._orca = self
        self.scopes = ScopeRegistry()
        self.queue = EventQueue()
        self.graph = StreamGraph()
        self.deps = DependencyManager(self)
        self.timers = TimerService(self)
        self.command_tool = OrcaCommandTool(self)
        self.metric_epochs = MetricEpochCounter()
        self.failure_epochs = FailureEpochTracker()
        self.jobs: Dict[str, Job] = {}
        self.actuation_log: List[ActuationRecord] = []
        #: every delivered event, in delivery order (Sec. 7 reliable-
        #: delivery hook: replaying the journal re-derives the actuations)
        self.event_journal: List[OrcaEvent] = []
        self.handler_errors: List[tuple] = []
        #: metric samples skipped because the stream graph lagged a rescale
        self.metric_event_skips = 0
        self._compiled: Dict[str, CompiledApplication] = {}
        self._poll_interval = (
            descriptor.metric_poll_interval
            if descriptor.metric_poll_interval is not None
            else system.config.orca_poll_interval
        )
        self._poll_handle = None
        self._drain_scheduled = False
        self._current_txn = 0
        self._alive = True
        #: runtime-tap registrations, attached in _boot / detached in
        #: shutdown as one unit (repro.obs.listeners)
        self._runtime_sub: Optional[RuntimeSubscription] = None

    # -- boot / shutdown ---------------------------------------------------------

    def _boot(self) -> None:
        """Load managed applications, deliver the start event, start polling."""
        for managed in self.descriptor.applications:
            self._register_application(managed)
        self._enqueue(
            "orca_start",
            OrcaStartContext(orca_id=self.orca_id, time=self.now),
            attrs={},
            always=True,
        )
        self._poll_handle = self.kernel.schedule(
            self._poll_interval, self._poll_metrics, label=f"{self.orca_id}-poll"
        )
        # Runtime instrumentation taps, registered through the one obs
        # front door: crashed-channel reroutes, finished rescales (also
        # those driven outside this service — autoscalers, chaos
        # campaigns, direct controller calls), unmask-time state
        # reclaims, checkpoint commits, completed PE restarts (inspected
        # for skipped rehydration), and chaos injections all become ORCA
        # events; PE-set topology changes refresh the stream graph.
        self._runtime_sub = subscribe_runtime(
            self.system,
            on_reroute=self._on_channel_rerouted,
            on_rescale=self._on_region_rescaled,
            on_topology=self._on_topology_changed,
            on_reclaim=self._on_state_reclaimed,
            on_checkpoint_commit=self._on_checkpoint_committed,
            on_pe_restart=self._on_pe_restarted,
            on_injection=self._on_chaos_injected,
        )
        # health-plane alert fan-out: SLO burn-rate alerts become
        # health_alert events (delivered only to registered HealthScopes)
        self.system.obs.health.alert_listeners.append(self._on_health_alert)

    def _register_application(self, managed: ManagedApplication) -> None:
        if managed.application is not None:
            compiled = SPLCompiler(
                managed.compile_strategy, managed.compile_target_pe_count
            ).compile(managed.application)
            self._compiled[managed.name] = compiled
            self.graph.add_application(adl_from_xml(adl_to_xml(compiled)))
        elif managed.adl_xml is not None:
            self.graph.add_application(adl_from_xml(managed.adl_xml))

    def add_managed_application(self, managed: ManagedApplication) -> None:
        """Dynamically add an application to a *running* orchestrator.

        This is the paper's Sec. 7 future-work item ("allow developers to
        dynamically add an application to the orchestrator, e.g.
        applications developed after orchestrator deployment").
        """
        if self.descriptor.manages(managed.name):
            raise DescriptorError(f"application {managed.name!r} already managed")
        self.descriptor.applications.append(managed)
        self._register_application(managed)

    def shutdown(self) -> None:
        self._alive = False
        if self._poll_handle is not None:
            self._poll_handle.cancel()
        self.timers.cancel_all()
        if self._runtime_sub is not None:
            self._runtime_sub.detach()
            self._runtime_sub = None
        listeners = self.system.obs.health.alert_listeners
        if self._on_health_alert in listeners:
            listeners.remove(self._on_health_alert)

    # -- time ------------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.kernel.now

    # -- scope registration -------------------------------------------------------------

    def register_event_scope(self, scope: EventScope) -> None:
        self.scopes.register(scope)

    def unregister_event_scope(self, key: str) -> bool:
        return self.scopes.unregister(key)

    # paper-parity aliases (Fig. 5: _orca->registerEventScope(oms))
    registerEventScope = register_event_scope  # noqa: N815
    unregisterEventScope = unregister_event_scope  # noqa: N815

    # -- event machinery ---------------------------------------------------------------------

    def _enqueue(
        self,
        event_type: str,
        context: Any,
        attrs: Dict[str, Any],
        always: bool = False,
    ) -> bool:
        """Match, queue, and schedule delivery.  Returns True if queued."""
        if not self._alive:
            return False
        keys = self.scopes.matching_keys(event_type, attrs)
        if not keys and not always:
            self.queue.dropped_count += 1
            return False
        self.queue.push(
            OrcaEvent(
                event_type=event_type,
                context=context,
                scope_keys=keys,
                enqueued_at=self.now,
            )
        )
        self._schedule_drain()
        return True

    def _schedule_drain(self) -> None:
        if not self._drain_scheduled and self.queue:
            self._drain_scheduled = True
            self.kernel.call_soon(self._drain_one, label=f"{self.orca_id}-deliver")

    def _drain_one(self) -> None:
        self._drain_scheduled = False
        event = self.queue.pop()
        if event is None:
            return
        self._deliver(event)
        self._schedule_drain()

    _DISPATCH: Dict[str, tuple] = {
        "orca_start": ("handleOrcaStart", False),
        "operator_metric": ("handleOperatorMetricEvent", True),
        "operator_port_metric": ("handleOperatorPortMetricEvent", True),
        "pe_metric": ("handlePEMetricEvent", True),
        "pe_failure": ("handlePEFailureEvent", True),
        "host_failure": ("handleHostFailureEvent", True),
        "job_submission": ("handleJobSubmissionEvent", True),
        "job_cancellation": ("handleJobCancellationEvent", True),
        "timer": ("handleTimerEvent", True),
        "user": ("handleUserEvent", True),
        "channel_congested": ("handleChannelCongestedEvent", True),
        "region_rescaled": ("handleRegionRescaledEvent", True),
        "region_state_migrated": ("handleRegionStateMigratedEvent", True),
        "channel_rerouted": ("handleChannelReroutedEvent", True),
        "checkpoint_committed": ("handleCheckpointCommittedEvent", True),
        "state_reclaimed": ("handleStateReclaimedEvent", True),
        "rehydrate_skipped": ("handleRehydrateSkippedEvent", True),
        "chaos_injected": ("handleChaosInjectedEvent", True),
        "health_alert": ("handleHealthAlertEvent", True),
    }

    def _deliver(self, event: OrcaEvent) -> None:
        handler_name, takes_scopes = self._DISPATCH[event.event_type]
        handler = getattr(self.logic, handler_name)
        self.queue.record_delivery(event, self.now)
        obs = getattr(self.system, "obs", None)
        if obs is not None and obs.trace_enabled:
            # the event->actuation chain: this span covers the event's
            # queue residence; actuations the handler issues are stamped
            # with the same txn id by _log_actuation
            obs.record_orca_event(
                self.orca_id, event.event_type, event.enqueued_at, self.now
            )
        self.event_journal.append(event)
        self._current_txn = event.txn_id
        try:
            if takes_scopes:
                handler(event.context, list(event.scope_keys))
            else:
                handler(event.context)
        except Exception as exc:  # isolate user-code failures (memory isolation)
            self.handler_errors.append((event.event_type, exc))
        finally:
            self._current_txn = 0

    # -- metric polling -------------------------------------------------------------------------

    @property
    def metric_poll_interval(self) -> float:
        return self._poll_interval

    def set_metric_poll_interval(self, seconds: float) -> None:
        """Change the SRM polling rate at any point of execution (Sec. 4.2)."""
        if seconds <= 0:
            raise ActuationError("poll interval must be positive")
        self._poll_interval = seconds
        if self._poll_handle is not None:
            self._poll_handle.cancel()
        if self._alive:
            self._poll_handle = self.kernel.schedule(
                seconds, self._poll_metrics, label=f"{self.orca_id}-poll"
            )

    def _poll_metrics(self) -> None:
        if not self._alive:
            return
        job_ids = [
            job_id
            for job_id, job in self.jobs.items()
            if job.state in (JobState.SUBMITTED, JobState.RUNNING)
        ]
        samples = self.system.srm.get_metrics(job_ids)
        epoch = self.metric_epochs.next()
        for sample in samples:
            try:
                self._emit_metric_event(sample, epoch)
            except InspectionError:
                # A sample can momentarily refer to an operator the stream
                # graph does not know yet/anymore (a parallel-region rescale
                # adds and removes channel operators at runtime); skip it —
                # the next poll sees a consistent view.
                self.metric_event_skips += 1
        self._check_region_congestion(epoch)
        self._poll_handle = self.kernel.schedule(
            self._poll_interval, self._poll_metrics, label=f"{self.orca_id}-poll"
        )

    def _check_region_congestion(self, epoch: int) -> None:
        """Emit channel_congested for overloaded parallel-region channels.

        Runs on every metric poll: the region's congestion metric is
        aggregated per channel (SRM keeps per-operator values; a channel's
        backlog is the sum over its operators); channels above the region's
        threshold raise one event each, all sharing the poll's epoch.
        """
        for job_id, job in self.jobs.items():
            if job.state is not JobState.RUNNING:
                continue
            for plan in job.compiled.parallel_regions.values():
                backlogs = self.system.srm.sum_operator_metric_by_group(
                    job_id,
                    dict(enumerate(plan.channel_ops)),
                    plan.congestion_metric,
                )
                for channel, backlog in sorted(backlogs.items()):
                    if backlog <= plan.congestion_threshold:
                        continue
                    context = ChannelCongestedContext(
                        job_id=job_id,
                        app_name=job.app_name,
                        region=plan.name,
                        channel=channel,
                        value=backlog,
                        threshold=plan.congestion_threshold,
                        metric=plan.congestion_metric,
                        width=plan.width,
                        epoch=epoch,
                        time=self.now,
                    )
                    attrs: Dict[str, Any] = {
                        "application": job.app_name,
                        "job": job_id,
                        "region": plan.name,
                        "channel": channel,
                        "event_kind": "channel_congested",
                    }
                    self._enqueue("channel_congested", context, attrs)

    def _emit_metric_event(self, sample: MetricSample, epoch: int) -> None:
        if sample.operator is None:
            context = PEMetricContext(
                pe_id=sample.pe_id,
                metric=sample.name,
                value=sample.value,
                epoch=epoch,
                job_id=sample.job_id,
                app_name=sample.app_name,
                host=self.graph.host_of_pe(sample.pe_id),
                collection_ts=sample.collection_ts,
                is_custom=sample.is_custom,
            )
            attrs = self.graph.pe_event_attrs(
                sample.app_name, sample.job_id, sample.pe_id
            )
            attrs["metric_name"] = sample.name
            self._enqueue("pe_metric", context, attrs)
            return
        base_attrs = self.graph.operator_event_attrs(
            sample.app_name, sample.operator, sample.job_id, sample.pe_id
        )
        base_attrs["metric_name"] = sample.name
        kind = base_attrs["operator_type"]
        if sample.port is None:
            context = OperatorMetricContext(
                instance_name=sample.operator,
                operator_kind=kind,
                metric=sample.name,
                value=sample.value,
                epoch=epoch,
                job_id=sample.job_id,
                app_name=sample.app_name,
                pe_id=sample.pe_id,
                collection_ts=sample.collection_ts,
                is_custom=sample.is_custom,
            )
            self._enqueue("operator_metric", context, base_attrs)
        else:
            base_attrs["port"] = sample.port
            context = OperatorPortMetricContext(
                instance_name=sample.operator,
                operator_kind=kind,
                port=sample.port,
                metric=sample.name,
                value=sample.value,
                epoch=epoch,
                job_id=sample.job_id,
                app_name=sample.app_name,
                pe_id=sample.pe_id,
                collection_ts=sample.collection_ts,
                is_custom=sample.is_custom,
            )
            self._enqueue("operator_port_metric", context, base_attrs)

    # -- failure events -----------------------------------------------------------------------------

    def _receive_pe_failure(self, pe: PERuntime, reason: str, detection_ts: float) -> None:
        """SAM pushes a PE crash of a managed job (Sec. 4.2).

        The reaction is delayed by one extra remote procedure call from SAM
        to the ORCA service (Sec. 3) — modelled as ``orca_rpc_latency``.
        """
        self.kernel.schedule(
            self.system.config.orca_rpc_latency,
            self._emit_pe_failure,
            pe,
            reason,
            detection_ts,
            label=f"{self.orca_id}-pefailure-rpc",
        )

    def _emit_pe_failure(self, pe: PERuntime, reason: str, detection_ts: float) -> None:
        job = pe.job
        if job.job_id not in self.jobs:
            return
        epoch = self.failure_epochs.epoch_for(reason, detection_ts)
        context = PEFailureContext(
            pe_id=pe.pe_id,
            pe_index=pe.index,
            job_id=job.job_id,
            app_name=job.app_name,
            reason=reason,
            detection_ts=detection_ts,
            epoch=epoch,
            host=pe.host_name,
            operators=tuple(pe.spec.operators),
        )
        attrs = self.graph.pe_event_attrs(job.app_name, job.job_id, pe.pe_id)
        attrs["reason"] = reason
        self._enqueue("pe_failure", context, attrs)

    def _receive_host_failure(self, host_name: str, detection_ts: float) -> None:
        affected = tuple(
            pe.pe_id
            for job in self.jobs.values()
            if job.state is JobState.RUNNING
            for pe in job.pes
            if pe.host_name == host_name
        )
        epoch = self.failure_epochs.epoch_for("host_failure", detection_ts)
        context = HostFailureContext(
            host=host_name,
            detection_ts=detection_ts,
            epoch=epoch,
            affected_pe_ids=affected,
        )
        self._enqueue("host_failure", context, {"host": host_name})

    # -- timers and user events ---------------------------------------------------------------------

    def create_timer(
        self,
        delay: float,
        payload: Any = None,
        periodic: bool = False,
        timer_id: Optional[str] = None,
    ) -> TimerHandle:
        return self.timers.create_timer(delay, payload, periodic, timer_id)

    def _emit_timer_event(self, handle: TimerHandle, payload: Any) -> None:
        context = TimerContext(
            timer_id=handle.timer_id,
            scheduled_for=handle.scheduled_for,
            time=self.now,
            payload=payload,
            periodic=handle.periodic,
        )
        self._enqueue("timer", context, {"timer": handle.timer_id})

    def inject_user_event(self, name: str, payload: Dict[str, Any]) -> None:
        context = UserEventContext(name=name, time=self.now, payload=dict(payload))
        self._enqueue("user", context, {"name": name})

    # -- actuation: job lifecycle ----------------------------------------------------------------------

    def submit_application(
        self, app_name: str, params: Optional[Dict[str, str]] = None
    ) -> Job:
        """Submit a managed application directly (outside the config system)."""
        return self._submit_managed(app_name, params, config_id=None, explicit=True)

    def _submit_managed(
        self,
        app_name: str,
        params: Optional[Dict[str, str]],
        config_id: Optional[str],
        explicit: bool,
    ) -> Job:
        compiled = self._get_compiled(app_name)
        job = self.system.sam.submit_job(compiled, params=params, owner_orca=self.orca_id)
        self.jobs[job.job_id] = job
        self.graph.register_job(
            job.job_id,
            app_name,
            {pe.index: (pe.pe_id, pe.host_name) for pe in job.pes},
        )
        self._log_actuation("submit", f"{app_name} -> {job.job_id}")
        context = JobSubmissionContext(
            job_id=job.job_id,
            app_name=app_name,
            config_id=config_id,
            time=self.now,
            explicit=explicit,
        )
        attrs: Dict[str, Any] = {"application": app_name, "job": job.job_id}
        if config_id is not None:
            attrs["config"] = config_id
        self._enqueue("job_submission", context, attrs)
        return job

    def cancel_job(self, job_id: str) -> None:
        """Cancel a job this orchestrator started."""
        self._check_owned(job_id)
        self._cancel_managed(job_id, config_id=None, garbage_collected=False)

    def _cancel_managed(
        self, job_id: str, config_id: Optional[str], garbage_collected: bool
    ) -> None:
        job = self._check_owned(job_id)
        self.system.sam.cancel_job(job_id)
        self.graph.unregister_job(job_id)
        self._log_actuation(
            "cancel", f"{job.app_name} ({job_id}) gc={garbage_collected}"
        )
        context = JobCancellationContext(
            job_id=job_id,
            app_name=job.app_name,
            config_id=config_id,
            time=self.now,
            garbage_collected=garbage_collected,
        )
        attrs: Dict[str, Any] = {"application": job.app_name, "job": job_id}
        if config_id is not None:
            attrs["config"] = config_id
        self._enqueue("job_cancellation", context, attrs)

    def _get_compiled(self, app_name: str) -> CompiledApplication:
        managed = self.descriptor.application(app_name)
        compiled = self._compiled.get(app_name)
        if compiled is None:
            if managed.application is None:
                raise ActuationError(
                    f"application {app_name!r} was registered by ADL only; "
                    "it cannot be submitted from this orchestrator"
                )
            compiled = SPLCompiler(
                managed.compile_strategy, managed.compile_target_pe_count
            ).compile(managed.application)
            self._compiled[app_name] = compiled
        return compiled

    def _check_owned(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise OrcaPermissionError(
                f"orchestrator {self.orca_id} did not start job {job_id!r} "
                "(Sec. 3: acting on foreign jobs is a runtime error)"
            )
        return job

    def job_is_running(self, job_id: str) -> bool:
        job = self.jobs.get(job_id)
        return job is not None and job.state in (JobState.SUBMITTED, JobState.RUNNING)

    # -- actuation: PE control ------------------------------------------------------------------------------

    def restart_pe(self, pe_id: str, rehydrate: bool = False) -> None:
        """Restart a crashed/stopped PE of a job this orchestrator owns.

        ``rehydrate=True`` restores each stateful operator from its last
        quiesced snapshot (captured at the most recent graceful stop);
        the default keeps the paper's restart-empty semantics.
        """
        job_id = self.graph.job_of_pe(pe_id)
        self._check_owned(job_id)
        self.system.sam.restart_pe(job_id, pe_id, rehydrate=rehydrate)
        self._log_actuation(
            "restart_pe", f"{pe_id} rehydrate={rehydrate}" if rehydrate else pe_id
        )

    def stop_pe(self, pe_id: str) -> None:
        job_id = self.graph.job_of_pe(pe_id)
        self._check_owned(job_id)
        self.system.sam.stop_pe(job_id, pe_id)
        self._log_actuation("stop_pe", pe_id)

    def send_control(
        self, job_id: str, op_full_name: str, command: str, payload: Dict[str, Any]
    ) -> None:
        """Deliver a control command to a running operator instance (Sec. 3)."""
        job = self._check_owned(job_id)
        pe = job.pe_of_operator(op_full_name)
        pe.send_control(op_full_name, command, payload)
        self._log_actuation("control", f"{op_full_name}:{command}")

    # -- actuation: checkpointing ----------------------------------------------------------------

    def checkpoint_now(self, job_id: str):
        """Force an immediate checkpoint of every stateful PE of a job.

        The policy hook for stale-checkpoint reactions: a routine that
        observes a high ``checkpointLag`` gauge (or infrequent
        ``checkpoint_committed`` events) can force a capture instead of
        waiting for the next periodic round.  Returns the list of
        :class:`~repro.checkpoint.service.CheckpointRecord` produced.
        """
        job = self._check_owned(job_id)
        records = self.system.checkpoints.checkpoint_job(job)
        self._log_actuation("checkpoint", f"{job_id} ({len(records)} PEs)")
        return records

    def set_checkpoint_interval(self, seconds: float) -> None:
        """Change the background checkpoint cadence at runtime.

        Args:
            seconds: New interval in sim-seconds; 0 stops periodic
                checkpointing (the paper's no-checkpoint default).
        """
        self.system.checkpoints.set_interval(seconds)
        self._log_actuation("checkpoint_interval", str(seconds))

    def checkpoint_status(self, job_id: str) -> Dict[str, Dict[str, Any]]:
        """Newest committed checkpoint epoch of each of a job's PEs.

        Returns:
            ``pe_id -> {"epoch", "committed_at", "age", "keys_total"}``
            for every PE with at least one committed epoch.
        """
        self._check_owned(job_id)
        status: Dict[str, Dict[str, Any]] = {}
        for pe_id, entry in self.system.checkpoint_store.job_status(job_id).items():
            status[pe_id] = {
                "epoch": entry.epoch,
                "committed_at": entry.time,
                "age": self.now - entry.time,
                "keys_total": entry.keys_total,
            }
        return status

    # -- actuation: elastic parallel regions ---------------------------------------------------

    def set_channel_width(self, job_id: str, region: str, width: int):
        """Re-parallelize a region of an owned job to ``width`` channels.

        Runs the tuple-loss-free rescale protocol of
        :class:`repro.elastic.controller.ElasticController`; when the
        region resumes, a ``region_rescaled`` event is delivered to the
        ORCA logic (subject to scope matching) and the in-memory stream
        graph is refreshed with the new channel operators and PEs.
        Returns the :class:`~repro.elastic.controller.RescaleOperation`.
        """
        job = self._check_owned(job_id)
        # completion flows through the controller-level rescale listener
        # (registered at boot), same as externally-driven rescales
        operation = self.system.elastic.set_channel_width(job, region, width)
        self._log_actuation("set_channel_width", f"{job_id}:{region}->{width}")
        return operation

    def _on_region_rescaled(self, operation) -> None:
        from repro.elastic.controller import RescaleState  # late: layer cycle

        job = self.jobs.get(operation.job_id)
        if job is None:
            return  # not a job this orchestrator owns
        succeeded = operation.state is RescaleState.COMPLETED
        if succeeded:
            # Refresh logical + physical stream graph: the rescale changed
            # the job's operator set and PE layout.
            self.graph.add_application(adl_from_xml(adl_to_xml(job.compiled)))
            self.graph.register_job(
                job.job_id,
                job.app_name,
                {pe.index: (pe.pe_id, pe.host_name) for pe in job.pes},
            )
        migration = operation.migration
        if (
            succeeded
            and migration is not None
            and (
                migration.keys_moved
                or migration.dropped_global_states
                or migration.global_states_merged
            )
        ):
            # Delivered before the matching region_rescaled so handlers see
            # the state movement in causal order.
            migrated = RegionStateMigratedContext(
                job_id=operation.job_id,
                app_name=job.app_name,
                region=operation.region,
                old_width=migration.old_width,
                new_width=migration.new_width,
                keys_moved=migration.keys_moved,
                bytes_moved=migration.bytes_moved,
                moves=dict(migration.moves),
                dropped_global_states=migration.dropped_global_states,
                skipped_channels=tuple(migration.skipped_channels),
                wall_ms=migration.wall_ms,
                epoch=operation.epoch,
                time=self.now,
                global_states_merged=migration.global_states_merged,
            )
            self._enqueue(
                "region_state_migrated",
                migrated,
                {
                    "application": job.app_name,
                    "job": operation.job_id,
                    "region": operation.region,
                    # region-wide event: matches any addChannelFilter choice
                    "channel": tuple(
                        range(max(operation.old_width, operation.new_width))
                    ),
                    "event_kind": "region_state_migrated",
                },
            )
        context = RegionRescaledContext(
            job_id=operation.job_id,
            app_name=job.app_name,
            region=operation.region,
            old_width=operation.old_width,
            new_width=operation.new_width,
            epoch=operation.epoch,
            duration=operation.duration,
            time=self.now,
            succeeded=succeeded,
            error=operation.error,
        )
        attrs: Dict[str, Any] = {
            "application": job.app_name,
            "job": operation.job_id,
            "region": operation.region,
            # region-wide event: matches any addChannelFilter choice
            "channel": tuple(range(max(operation.old_width, operation.new_width))),
            "event_kind": "region_rescaled",
        }
        self._enqueue("region_rescaled", context, attrs)

    def _on_topology_changed(self, job, change: str) -> None:
        """SAM topology observer: a job's PE set grew or shrank.

        Fires for every ``SAM.add_pes`` / ``SAM.remove_pes``, including
        ones driven entirely outside this service (an autoscaler, another
        orchestrator, a direct controller call).  Without this refresh the
        materialized stream graph would keep answering ``host_of_pe`` /
        placement queries from a stale PE inventory until the *next*
        rescale this service happens to observe.
        """
        if job.job_id not in self.jobs:
            return  # not a job this orchestrator owns
        del change  # add and remove refresh identically: re-register the job
        self.graph.add_application(adl_from_xml(adl_to_xml(job.compiled)))
        self.graph.register_job(
            job.job_id,
            job.app_name,
            {pe.index: (pe.pe_id, pe.host_name) for pe in job.pes},
        )

    def _on_channel_rerouted(self, record) -> None:
        """Elastic-controller listener: a splitter mask/unmask happened."""
        job = self.jobs.get(record.job_id)
        if job is None:
            return  # not a job this orchestrator owns
        context = ChannelReroutedContext(
            job_id=record.job_id,
            app_name=job.app_name,
            region=record.region,
            channel=record.channel,
            masked=record.masked,
            reason=record.reason,
            width=record.width,
            pe_id=record.pe_id,
            time=self.now,
            purged_keys=record.purged_keys,
            reclaimed_keys=record.reclaimed_keys,
            seeded_keys=record.seeded_keys,
        )
        attrs: Dict[str, Any] = {
            "application": job.app_name,
            "job": record.job_id,
            "region": record.region,
            "channel": record.channel,
            "event_kind": "channel_rerouted",
        }
        self._enqueue("channel_rerouted", context, attrs)

    # -- checkpointing and recovery events -----------------------------------------------------

    def _on_checkpoint_committed(self, record) -> None:
        """Checkpoint-service listener: a PE's epoch was committed."""
        job = self.jobs.get(record.job_id)
        if job is None:
            return  # not a job this orchestrator owns
        try:
            host = self.graph.host_of_pe(record.pe_id)
        except InspectionError:
            # A rescale driven outside this service (e.g. a chaos
            # perturbation calling the elastic controller directly) adds
            # channel PEs the stream graph has not registered; the commit
            # event must still flow.
            host = None
        context = CheckpointCommittedContext(
            job_id=record.job_id,
            app_name=job.app_name,
            pe_id=record.pe_id,
            host=host,
            epoch=record.epoch,
            full=record.full,
            n_operators=record.n_operators,
            keys_dirty=record.keys_dirty,
            keys_total=record.keys_total,
            bytes_written=record.bytes_written,
            time=self.now,
        )
        attrs: Dict[str, Any] = {
            "application": job.app_name,
            "job": record.job_id,
            "pe": record.pe_id,
            "event_kind": "checkpoint_committed",
        }
        self._enqueue("checkpoint_committed", context, attrs)

    def _on_state_reclaimed(self, record) -> None:
        """Elastic-controller listener: an unmask reclaimed detour state."""
        job = self.jobs.get(record.job_id)
        if job is None:
            return
        context = StateReclaimedContext(
            job_id=record.job_id,
            app_name=job.app_name,
            region=record.region,
            channels=tuple(record.channels),
            pe_id=record.pe_id,
            keys_reclaimed=record.keys_reclaimed,
            keys_purged=record.keys_purged,
            bytes_reclaimed=record.bytes_reclaimed,
            epoch=record.epoch,
            time=self.now,
        )
        attrs: Dict[str, Any] = {
            "application": job.app_name,
            "job": record.job_id,
            "region": record.region,
            "channel": tuple(record.channels),
            "pe": record.pe_id,
            "event_kind": "state_reclaimed",
        }
        self._enqueue("state_reclaimed", context, attrs)

    def _on_chaos_injected(self, injection) -> None:
        """Chaos-engine listener: a campaign step fired.

        Unlike job-scoped listeners this forwards every injection — chaos
        is system-level, like host failures — but delivery still depends
        on a registered :class:`~repro.orca.scopes.ChaosScope`, so logic
        not opted in stays blind to the campaign.
        """
        job = self.jobs.get(injection.job_id) if injection.job_id else None
        context = ChaosInjectedContext(
            scenario=injection.scenario,
            step_index=injection.step_index,
            kind=injection.kind,
            target=injection.target,
            run_id=injection.run_id,
            time=self.now,
            job_id=injection.job_id,
            app_name=job.app_name if job is not None else None,
            detail=injection.public_detail(),
        )
        attrs: Dict[str, Any] = {
            "scenario": injection.scenario,
            "kind": injection.kind,
            "target": injection.target,
            "event_kind": "chaos_injected",
        }
        if injection.job_id is not None:
            attrs["job"] = injection.job_id
        if job is not None:
            attrs["application"] = job.app_name
        self._enqueue("chaos_injected", context, attrs)

    def _on_health_alert(self, alert) -> None:
        """Health-plane listener: an SLO alert raised or escalated.

        Like chaos injections this forwards every alert (health is
        system-level), and delivery still requires a registered
        :class:`~repro.orca.scopes.HealthScope` — logic not opted in
        stays blind to the health plane.
        """
        context = HealthAlertContext(
            slo=alert.slo,
            signal=alert.signal,
            severity=alert.severity,
            burn_short=alert.burn_short,
            burn_long=alert.burn_long,
            observed=alert.observed,
            objective=alert.objective,
            time=alert.time,
            region=alert.region,
            bottleneck=alert.bottleneck,
            why=alert.why,
        )
        attrs: Dict[str, Any] = {
            "slo": alert.slo,
            "signal": alert.signal,
            "severity": alert.severity,
            "event_kind": "health_alert",
        }
        if alert.region is not None:
            attrs["region"] = alert.region
        self._enqueue("health_alert", context, attrs)

    def _on_pe_restarted(self, pe: PERuntime) -> None:
        """SAM observer: emit ``rehydrate_skipped`` for empty rehydrations."""
        job = self.jobs.get(pe.job.job_id)
        if job is None:
            return
        report = pe.last_restore
        if report is None or report.source != "none":
            return  # restart did not request rehydration, or it restored
        context = RehydrateSkippedContext(
            job_id=job.job_id,
            app_name=job.app_name,
            pe_id=pe.pe_id,
            pe_index=pe.index,
            host=pe.host_name,
            reason="no_snapshot",
            time=self.now,
        )
        attrs: Dict[str, Any] = {
            "application": job.app_name,
            "job": job.job_id,
            "pe": pe.pe_id,
            "event_kind": "rehydrate_skipped",
        }
        self._enqueue("rehydrate_skipped", context, attrs)

    # -- actuation: placement ----------------------------------------------------------------------------------

    def set_exclusive_host_pools(self, app_name: str) -> None:
        """Rewrite an application's host pools to exclusive (Sec. 4.3).

        Must happen before the application is submitted; the pool change is
        interpreted by SAM when instantiating the PEs.
        """
        managed = self.descriptor.application(app_name)
        if managed.application is None:
            raise ActuationError(
                f"application {app_name!r} was registered by ADL only"
            )
        for job in self.jobs.values():
            if job.app_name == app_name and job.state in (
                JobState.SUBMITTED,
                JobState.RUNNING,
            ):
                raise ActuationError(
                    "host pool configuration change must occur before the "
                    f"application is submitted; {app_name!r} is running as "
                    f"{job.job_id}"
                )
        managed.application.host_pools.make_all_exclusive()
        self._compiled.pop(app_name, None)  # recompile with the new ADL
        self._register_application(managed)
        self._log_actuation("exclusive_pools", app_name)

    # -- actuation: external commands ----------------------------------------------------------------------------

    def run_external(
        self,
        command: Callable[[], Any],
        duration: float = 0.0,
        on_complete: Optional[Callable[[Any], None]] = None,
    ):
        """Invoke an external component (e.g. the Hadoop job of Sec. 5.1).

        ``command`` runs after ``duration`` simulated seconds (the external
        job's latency); its return value is passed to ``on_complete``.
        """
        self._log_actuation("external", getattr(command, "__name__", "command"))

        def finish() -> None:
            result = command()
            if on_complete is not None:
                on_complete(result)

        return self.kernel.schedule(duration, finish, label=f"{self.orca_id}-external")

    def _log_actuation(self, action: str, detail: str) -> None:
        self.actuation_log.append(
            ActuationRecord(
                txn_id=self._current_txn, action=action, detail=detail, time=self.now
            )
        )
        obs = getattr(self.system, "obs", None)
        if obs is not None and obs.trace_enabled:
            obs.record_control_event(
                f"actuation:{action}",
                self.now,
                orca=self.orca_id,
                txn=self._current_txn,
                detail=detail,
            )

    def actuations_for(self, txn_id: int) -> List[ActuationRecord]:
        """All actuations attributed to one event transaction (Sec. 7)."""
        return [r for r in self.actuation_log if r.txn_id == txn_id]

    def journal_entry(self, txn_id: int) -> Optional[OrcaEvent]:
        """The delivered event with the given transaction id, if any."""
        for event in self.event_journal:
            if event.txn_id == txn_id:
                return event
        return None

    # -- inspection API (Sec. 4.2) -----------------------------------------------------------------------------------

    def operators_in_pe(self, pe_id: str) -> List[str]:
        return self.graph.operators_in_pe(pe_id)

    def composites_in_pe(self, pe_id: str):
        return self.graph.composites_in_pe(pe_id)

    def enclosing_composite(self, app_name: str, op_full_name: str) -> Optional[str]:
        return self.graph.enclosing_composite(app_name, op_full_name)

    def pe_of_operator(self, job_id: str, op_full_name: str) -> str:
        return self.graph.pe_of_operator(job_id, op_full_name)

    def host_of_pe(self, pe_id: str) -> Optional[str]:
        return self.graph.host_of_pe(pe_id)

    def pes_of_job(self, job_id: str) -> List[str]:
        return self.graph.pes_of_job(job_id)

    def job_of_pe(self, pe_id: str) -> str:
        return self.graph.job_of_pe(pe_id)

    def operators_of_type(self, app_name: str, kind: str) -> List[str]:
        return self.graph.operators_of_type(app_name, kind)

    def colocated_operators(self, job_id: str, op_full_name: str) -> List[str]:
        return self.graph.colocated_operators(job_id, op_full_name)

    def job(self, job_id: str) -> Job:
        return self._check_owned(job_id)

    # -- inspection: parallel regions ----------------------------------------------------------

    def _region_plan(self, job_id: str, region: str):
        job = self._check_owned(job_id)
        plan = job.compiled.parallel_regions.get(region)
        if plan is None:
            raise InspectionError(
                f"job {job_id}: no parallel region {region!r} "
                f"(has {sorted(job.compiled.parallel_regions)})"
            )
        return plan

    def parallel_regions(self, job_id: str) -> Dict[str, int]:
        """Region name -> current channel width, for an owned job."""
        job = self._check_owned(job_id)
        return {
            name: plan.width
            for name, plan in job.compiled.parallel_regions.items()
        }

    def channel_width(self, job_id: str, region: str) -> int:
        """Current channel width of one region (reflects completed rescales)."""
        return self._region_plan(job_id, region).width

    def region_channels(self, job_id: str, region: str) -> List[List[str]]:
        """Per channel, the operator full names running that channel."""
        return [list(ops) for ops in self._region_plan(job_id, region).channel_ops]

    def region_channel_backlogs(self, job_id: str, region: str) -> Dict[int, float]:
        """Channel index -> aggregated congestion-metric value (from SRM)."""
        plan = self._region_plan(job_id, region)
        return self.system.srm.sum_operator_metric_by_group(
            job_id, dict(enumerate(plan.channel_ops)), plan.congestion_metric
        )

    def region_state_sizes(self, job_id: str, region: str) -> Dict[int, float]:
        """Channel index -> aggregated ``stateBytes`` of the channel (SRM).

        The per-operator gauges are refreshed by the host controllers at
        every metric push, so this reflects state as of the last push —
        the same freshness contract as every other SRM-backed query.
        """
        plan = self._region_plan(job_id, region)
        return self.system.srm.sum_operator_metric_by_group(
            job_id, dict(enumerate(plan.channel_ops)), "stateBytes"
        )

    def region_key_owner(self, job_id: str, region: str, key) -> int:
        """The channel that owns ``key`` at the region's current width."""
        from repro.spl.library import stable_channel_of  # late: layer cycle

        plan = self._region_plan(job_id, region)
        if plan.partition_by is None:
            raise InspectionError(
                f"region {region!r} is not partitioned (no partition_by)"
            )
        return stable_channel_of(key, plan.width)

    def state_of(self, job_id: str, region: str, key) -> Dict[str, Any]:
        """Live keyed state of one partition key (Sec. 4.2 extended).

        Returns ``{"channel": owner, "values": {op_full_name: {state_name:
        value}}}``, read from the owner channel's live operator instances.
        Only keys the operators actually stored appear in ``values``; a key
        the region has never seen yields an empty values map.  This is the
        inspection hook that lets user routines write state-aware policies
        (e.g. pin a hot key's channel before deciding a width).
        """
        job = self._check_owned(job_id)
        plan = self._region_plan(job_id, region)
        channel = self.region_key_owner(job_id, region, key)
        values: Dict[str, Dict[str, Any]] = {}
        for op_name in plan.channel_ops[channel]:
            instance = job.operator_instance(op_name)
            if instance is None or not instance.state.in_use:
                continue
            found = {
                state_name: keyed.get(key)
                for state_name, keyed in instance.state.keyed_states().items()
                if key in keyed
            }
            if found:
                values[op_name] = found
        return {"channel": channel, "values": values}

    def region_observation(self, job_id: str, region: str):
        """A :class:`repro.elastic.policy.RegionObservation` for policies."""
        from repro.elastic.policy import RegionObservation  # late: layer cycle

        plan = self._region_plan(job_id, region)
        return RegionObservation(
            job_id=job_id,
            region=region,
            width=plan.width,
            channel_backlogs=self.region_channel_backlogs(job_id, region),
            channel_state_sizes=self.region_state_sizes(job_id, region),
            time=self.now,
        )

    def queue_latency_stats(self) -> QueueLatencyStats:
        """Queue-wait statistics of delivered events (one-at-a-time FIFO)."""
        return self.queue.latency_stats()

    # -- inspection: chaos campaigns -----------------------------------------------------------

    def chaos_status(self) -> Dict[str, Any]:
        """Campaign and injector counters (the chaos inspection hook).

        Returns:
            ``{"runs", "runs_done", "injections", "step_errors",
            "cancelled_steps", "active_link_faults",
            "active_link_faults_by_effect", "injector": {"injected",
            "by_kind", "noops", "pending"}, "last_injection"}`` — the
            failure injector's per-kind counters and recorded no-ops
            plus the chaos engine's journal summary (with active link
            faults broken down by latency/partition/loss effect), so
            routines, tests, and mid-flight fuzz searches can correlate
            their reactions with the fault mix actually injected.
        """
        return self.system.chaos.status()

    # -- inspection: health plane --------------------------------------------------------------

    def health_status(self) -> Dict[str, Any]:
        """The health plane's deterministic summary (the health hook).

        Returns:
            ``{"ticks", "interval", "alerts_fired", "pages_fired",
            "active_alerts", "slos", "max_lag", "regions", "bottleneck",
            "peak_link_lag", "peak_queue_depth",
            "peak_retry_pressure"}`` — the monitor's windowed state at
            the last evaluation tick, so routines can poll lag
            watermarks and the current bottleneck attribution between
            alerts.
        """
        return self.system.obs.health.status()

    def register_slo(self, slo) -> Any:
        """Register a health-plane SLO; its burn windows start now.

        Alerts the objective raises are delivered as ``health_alert``
        events to registered :class:`~repro.orca.scopes.HealthScope`
        subscopes (and recorded on :meth:`health_status`).
        """
        return self.system.obs.health.add_slo(slo)

    def __repr__(self) -> str:
        return f"OrcaService({self.orca_id}, logic={type(self.logic).__name__})"
