"""Epoch assignment.

Sec. 4.2 of the paper defines two epoch mechanisms:

* **Metric epochs** — "the epoch value is incremented at each SRM query
  and serves as a logical clock for the ORCA logic"; every metric event
  produced from one poll round shares the epoch, so handlers can check
  whether several metric values were measured together (Fig. 6 line 19).
* **Failure epochs** — "the ORCA service increments the epoch value based
  on the crash reason (e.g. host failure) and the detection timestamp",
  so multiple PE failure deliveries caused by one physical event (a host
  going down) share an epoch.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.checkpoint.store import EpochClock


class MetricEpochCounter(EpochClock):
    """One epoch per SRM metric poll.

    A named alias of the system-wide :class:`~repro.checkpoint.store.
    EpochClock` (one implementation of the monotone counter): the ORCA
    service keeps a private instance for metric polls, while the elastic
    controller shares the checkpoint store's instance so reconfiguration
    and fault tolerance order on one clock.
    """


class FailureEpochTracker:
    """Groups failure notifications into physical-event epochs.

    Two failures belong to the same epoch iff they share the crash reason
    and the detection timestamp (within ``tolerance`` seconds, to absorb
    notification jitter).
    """

    def __init__(self, tolerance: float = 1e-9) -> None:
        self.tolerance = tolerance
        self._epoch = 0
        self._last_key: Optional[Tuple[str, float]] = None

    def epoch_for(self, reason: str, detection_ts: float) -> int:
        if self._last_key is not None:
            last_reason, last_ts = self._last_key
            if last_reason == reason and abs(detection_ts - last_ts) <= self.tolerance:
                return self._epoch
        self._epoch += 1
        self._last_key = (reason, detection_ts)
        return self._epoch

    @property
    def current(self) -> int:
        return self._epoch
