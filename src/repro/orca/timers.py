"""Timer events.

Timer expiration is one of the event kinds the ORCA service generates
itself (Sec. 4.1).  The sentiment orchestrator of Sec. 5.1, for example,
suppresses Hadoop-job resubmission within a 10-minute window — policies
like that are naturally written against timers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.sim.kernel import ScheduledEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.orca.service import OrcaService


@dataclass
class TimerHandle:
    """Returned by ``create_timer``; supports cancellation."""

    timer_id: str
    scheduled_for: float
    periodic: bool
    _event: Optional[ScheduledEvent] = None
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()


class TimerService:
    """Creates kernel-backed timers that surface as ORCA timer events."""

    def __init__(self, service: "OrcaService") -> None:
        self._service = service
        self._timers: Dict[str, TimerHandle] = {}

    def create_timer(
        self,
        delay: float,
        payload: Any = None,
        periodic: bool = False,
        timer_id: Optional[str] = None,
    ) -> TimerHandle:
        service = self._service
        if timer_id is None:
            timer_id = service.system.ids.timers.allocate()
        if delay < 0:
            raise ValueError("timer delay must be >= 0")
        handle = TimerHandle(
            timer_id=timer_id,
            scheduled_for=service.now + delay,
            periodic=periodic,
        )

        def fire() -> None:
            if handle.cancelled:
                return
            service._emit_timer_event(handle, payload)
            if periodic and not handle.cancelled:
                handle.scheduled_for = service.now + delay
                handle._event = service.kernel.schedule(delay, fire, label=f"timer-{timer_id}")

        handle._event = service.kernel.schedule(delay, fire, label=f"timer-{timer_id}")
        self._timers[timer_id] = handle
        return handle

    def cancel_timer(self, timer_id: str) -> bool:
        handle = self._timers.pop(timer_id, None)
        if handle is None:
            return False
        handle.cancel()
        return True

    def cancel_all(self) -> None:
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
