"""Rule-based orchestration (the paper's Sec. 7 future-work item).

"One option is to use rules (similar to complex event processing) for
users to express event subscription more easily and take default
adaptation actions when no specialization is provided for a given event
(e.g., automatic PE restart)."

A :class:`Rule` bundles a subscope, an optional guard condition over the
event context, and an action over the ORCA service.  The
:class:`RuleOrchestrator` is a drop-in ORCA logic that registers every
rule's scope, evaluates guards, runs actions, and applies **default
actions** — out of the box, a PE failure that no user rule handles is
answered with an automatic PE restart.

Example::

    rules = [
        when("hot-queue",
             OperatorMetricScope("q").addOperatorMetric("queueSize"))
        .given(lambda ctx: ctx.value > 1000)
        .then(lambda orca, ctx: orca.send_control(
            ctx.job_id, ctx.instance_name, "shedLoad", {"factor": 0.5})),
    ]
    logic = RuleOrchestrator(rules, submit=["MyApp"])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ScopeError
from repro.orca.orchestrator import Orchestrator
from repro.orca.scopes import EventScope, PEFailureScope

Condition = Callable[[Any], bool]
Action = Callable[[Any, Any], None]  # (OrcaService, context)


@dataclass
class Rule:
    """One event-condition-action rule."""

    name: str
    scope: EventScope
    condition: Optional[Condition] = None
    action: Optional[Action] = None
    once: bool = False  #: fire at most once, then disarm
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.scope.key != self.name:
            # the subscope key doubles as the rule identity so that the
            # delivered scope keys tell the engine which rules matched
            raise ScopeError(
                f"rule {self.name!r}: its scope key must equal the rule name "
                f"(got {self.scope.key!r})"
            )

    def applies(self, context: Any) -> bool:
        if self.once and self.fired:
            return False
        if self.condition is None:
            return True
        return bool(self.condition(context))


class _RuleBuilder:
    """Fluent builder: ``when(name, scope).given(cond).then(action)``."""

    def __init__(self, name: str, scope: EventScope) -> None:
        self._rule = Rule(name=name, scope=scope)

    def given(self, condition: Condition) -> "_RuleBuilder":
        self._rule.condition = condition
        return self

    def then(self, action: Action) -> Rule:
        self._rule.action = action
        return self._rule

    def once(self) -> "_RuleBuilder":
        self._rule.once = True
        return self


def when(name: str, scope: EventScope) -> _RuleBuilder:
    """Start building a rule; the scope's key must equal ``name``."""
    return _RuleBuilder(name, scope)


def default_pe_restart(orca: Any, context: Any) -> None:
    """The paper's example default action: automatic PE restart."""
    orca.restart_pe(context.pe_id)


#: Reserved key for the engine's built-in PE failure catch-all.
_DEFAULT_FAILURE_KEY = "__default_pe_restart__"


class RuleOrchestrator(Orchestrator):
    """ORCA logic driven entirely by declarative rules.

    Parameters
    ----------
    rules:
        The user's rules.  Rule names must be unique.
    submit:
        Managed application names to submit on start (optionally
        ``(name, params)`` tuples).
    auto_restart_failed_pes:
        Install the default PE-restart action for failures no user rule
        fires on (default True, per the paper's example).
    """

    def __init__(
        self,
        rules: Sequence[Rule] = (),
        submit: Sequence = (),
        auto_restart_failed_pes: bool = True,
    ) -> None:
        super().__init__()
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ScopeError(f"duplicate rule names: {names}")
        self.rules: Dict[str, Rule] = {r.name: r for r in rules}
        self.submit_on_start = list(submit)
        self.auto_restart_failed_pes = auto_restart_failed_pes
        self.jobs = []
        #: (rule name, event type, context) log of fired rules
        self.firings: List[tuple] = []
        #: contexts of defaulted PE failures
        self.defaulted: List[Any] = []

    # -- lifecycle -----------------------------------------------------------

    def handleOrcaStart(self, context) -> None:  # noqa: N802
        for rule in self.rules.values():
            self.orca.register_event_scope(rule.scope)
        if self.auto_restart_failed_pes:
            self.orca.register_event_scope(PEFailureScope(_DEFAULT_FAILURE_KEY))
        for entry in self.submit_on_start:
            if isinstance(entry, tuple):
                name, params = entry
            else:
                name, params = entry, None
            self.jobs.append(self.orca.submit_application(name, params=params))

    # -- dispatch --------------------------------------------------------------

    def _dispatch(self, event_type: str, context, scopes: List[str]) -> bool:
        """Run every matching, applicable rule; True if any fired."""
        fired = False
        for key in scopes:
            rule = self.rules.get(key)
            if rule is None or rule.action is None:
                continue
            if not rule.applies(context):
                continue
            rule.fired += 1
            self.firings.append((rule.name, event_type, context))
            rule.action(self.orca, context)
            fired = True
        return fired

    def handleOperatorMetricEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("operator_metric", context, scopes)

    def handleOperatorPortMetricEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("operator_port_metric", context, scopes)

    def handlePEMetricEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("pe_metric", context, scopes)

    def handlePEFailureEvent(self, context, scopes) -> None:  # noqa: N802
        fired = self._dispatch("pe_failure", context, scopes)
        if not fired and self.auto_restart_failed_pes:
            # "take default adaptation actions when no specialization is
            # provided for a given event (e.g., automatic PE restart)"
            self.defaulted.append(context)
            default_pe_restart(self.orca, context)

    def handleHostFailureEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("host_failure", context, scopes)

    def handleJobSubmissionEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("job_submission", context, scopes)

    def handleJobCancellationEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("job_cancellation", context, scopes)

    def handleTimerEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("timer", context, scopes)

    def handleUserEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("user", context, scopes)

    def handleChannelCongestedEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("channel_congested", context, scopes)

    def handleRegionRescaledEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("region_rescaled", context, scopes)

    def handleRegionStateMigratedEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("region_state_migrated", context, scopes)

    def handleChannelReroutedEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("channel_rerouted", context, scopes)

    def handleCheckpointCommittedEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("checkpoint_committed", context, scopes)

    def handleStateReclaimedEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("state_reclaimed", context, scopes)

    def handleRehydrateSkippedEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("rehydrate_skipped", context, scopes)

    def handleChaosInjectedEvent(self, context, scopes) -> None:  # noqa: N802
        self._dispatch("chaos_injected", context, scopes)
