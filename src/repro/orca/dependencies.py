"""Application sets and dependencies (Sec. 4.4 of the paper).

Multiple applications managed by one orchestrator can be tied together by
explicit, unidirectional dependency relations.  The ORCA service then

* **automatically submits** applications required by other applications —
  dependency-free apps first, then the app whose *uptime requirements*
  (seconds its dependencies must have been running) are satisfied soonest;
* **automatically cancels** applications no longer in use — except when an
  application is not garbage-collectable, is still feeding another running
  application, or was explicitly submitted by the ORCA logic; garbage
  collection honours per-application timeouts, and an application enqueued
  for cancellation is rescued if a new submission needs it again;
* **rejects** dependency registrations that would create a cycle, and
  cancellation requests that would starve a running dependent.

All of this runs as deterministic state machines over the simulation
kernel (the paper's "application submission thread" and "cancellation
thread").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.errors import (
    DependencyCycleError,
    DependencyError,
    StarvationError,
)
from repro.sim.kernel import ScheduledEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.orca.service import OrcaService


@dataclass
class AppConfig:
    """Application configuration (the five items of Sec. 4.4)."""

    config_id: str
    app_name: str
    params: Dict[str, str] = field(default_factory=dict)
    garbage_collectable: bool = False
    gc_timeout: float = 0.0


@dataclass
class _SubmissionRecord:
    """Bookkeeping for a submitted configuration."""

    job_id: str
    submit_time: float
    explicit: bool


class DependencyManager:
    """Dependency graph + automatic submission / garbage collection."""

    def __init__(self, service: "OrcaService") -> None:
        self._service = service
        self._configs: Dict[str, AppConfig] = {}
        #: dependent -> {dependency: uptime requirement seconds}
        self._edges: Dict[str, Dict[str, float]] = {}
        #: dependency -> set of dependents
        self._redges: Dict[str, Set[str]] = {}
        self._records: Dict[str, _SubmissionRecord] = {}
        self._gc_pending: Dict[str, ScheduledEvent] = {}
        #: insertion order for deterministic tie-breaking
        self._order: Dict[str, int] = {}

    # -- configuration ---------------------------------------------------------

    def create_app_config(
        self,
        config_id: str,
        app_name: str,
        params: Optional[Dict[str, str]] = None,
        garbage_collectable: bool = False,
        gc_timeout: float = 0.0,
    ) -> AppConfig:
        if config_id in self._configs:
            raise DependencyError(f"app config {config_id!r} already exists")
        if not self._service.descriptor.manages(app_name):
            raise DependencyError(
                f"application {app_name!r} is not managed by this orchestrator"
            )
        if gc_timeout < 0:
            raise DependencyError("gc_timeout must be >= 0")
        config = AppConfig(
            config_id=config_id,
            app_name=app_name,
            params=dict(params or {}),
            garbage_collectable=garbage_collectable,
            gc_timeout=gc_timeout,
        )
        self._configs[config_id] = config
        self._order[config_id] = len(self._order)
        return config

    def config(self, config_id: str) -> AppConfig:
        try:
            return self._configs[config_id]
        except KeyError:
            raise DependencyError(f"unknown app config {config_id!r}") from None

    def register_dependency(
        self, dependent_id: str, dependency_id: str, uptime_requirement: float = 0.0
    ) -> None:
        """Declare that ``dependent`` needs ``dependency`` running first.

        ``uptime_requirement`` delays the dependent's submission by this
        many seconds after the dependency was submitted.  Raises
        :class:`DependencyCycleError` if the edge would create a cycle.
        """
        self.config(dependent_id)
        self.config(dependency_id)
        if dependent_id == dependency_id:
            raise DependencyCycleError(f"{dependent_id!r} cannot depend on itself")
        if uptime_requirement < 0:
            raise DependencyError("uptime requirement must be >= 0")
        if self._reaches(dependency_id, dependent_id):
            raise DependencyCycleError(
                f"dependency {dependent_id!r} -> {dependency_id!r} creates a cycle"
            )
        self._edges.setdefault(dependent_id, {})[dependency_id] = uptime_requirement
        self._redges.setdefault(dependency_id, set()).add(dependent_id)

    def _reaches(self, start: str, goal: str) -> bool:
        """DFS along dependency edges: can ``start`` reach ``goal``?"""
        stack = [start]
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._edges.get(node, {}))
        return False

    # -- queries ---------------------------------------------------------------------

    def dependencies_of(self, config_id: str) -> Dict[str, float]:
        return dict(self._edges.get(config_id, {}))

    def dependents_of(self, config_id: str) -> Set[str]:
        return set(self._redges.get(config_id, set()))

    def transitive_dependencies(self, config_id: str) -> Set[str]:
        """All configs the given one depends on, directly or indirectly."""
        result: Set[str] = set()
        stack = list(self._edges.get(config_id, {}))
        while stack:
            node = stack.pop()
            if node in result:
                continue
            result.add(node)
            stack.extend(self._edges.get(node, {}))
        return result

    def is_running(self, config_id: str) -> bool:
        record = self._records.get(config_id)
        if record is None:
            return False
        return self._service.job_is_running(record.job_id)

    def job_id_of(self, config_id: str) -> Optional[str]:
        record = self._records.get(config_id)
        return record.job_id if record else None

    def submit_time_of(self, config_id: str) -> Optional[float]:
        record = self._records.get(config_id)
        return record.submit_time if record else None

    def gc_queue(self) -> List[str]:
        """Configs currently enqueued for garbage collection (tests)."""
        return sorted(self._gc_pending)

    # -- start -------------------------------------------------------------------------

    def start(self, config_id: str) -> None:
        """Request an application (and its dependency closure) to start.

        Mirrors the submission-thread algorithm of Sec. 4.4: snapshot the
        graph, prune everything not connected to the target, submit
        dependency-free applications, then repeatedly pick the satisfied
        application with the lowest remaining sleep time.
        """
        target = self.config(config_id)
        self._rescue_from_gc(config_id)
        if self.is_running(config_id):
            # Already running: just upgrade to explicit.
            self._records[config_id].explicit = True
            return
        # Snapshot: target + all its transitive dependencies.
        nodes = {config_id} | self.transitive_dependencies(config_id)
        for node in nodes:
            self._rescue_from_gc(node)
        thread = _SubmissionThread(self, nodes=nodes, explicit_target=config_id)
        thread.step()

    def _rescue_from_gc(self, config_id: str) -> None:
        """Remove a config from the cancellation queue (Sec. 4.4)."""
        pending = self._gc_pending.pop(config_id, None)
        if pending is not None:
            pending.cancel()

    def _submit_now(self, config_id: str, explicit: bool) -> None:
        config = self._configs[config_id]
        job = self._service._submit_managed(
            config.app_name, params=config.params, config_id=config_id, explicit=explicit
        )
        self._records[config_id] = _SubmissionRecord(
            job_id=job.job_id,
            submit_time=self._service.now,
            explicit=explicit,
        )

    # -- cancel ------------------------------------------------------------------------

    def cancel(self, config_id: str) -> None:
        """Request cancellation; garbage-collect now-unused dependencies.

        Raises :class:`StarvationError` if the application is feeding
        another *running* application (Sec. 4.4's consistency guard).
        """
        self.config(config_id)
        record = self._records.get(config_id)
        if record is None or not self._service.job_is_running(record.job_id):
            raise DependencyError(f"app config {config_id!r} is not running")
        for dependent in self.dependents_of(config_id):
            if self.is_running(dependent):
                raise StarvationError(
                    f"cannot cancel {config_id!r}: running application "
                    f"{dependent!r} depends on it"
                )
        self._service._cancel_managed(
            record.job_id, config_id=config_id, garbage_collected=False
        )
        del self._records[config_id]
        # Cancellation thread: consider the apps that fed the cancelled one.
        self._schedule_gc_checks(self.dependencies_of(config_id))

    def _schedule_gc_checks(self, candidate_ids) -> None:
        for candidate_id in sorted(candidate_ids, key=lambda c: self._order[c]):
            if candidate_id in self._gc_pending:
                continue
            config = self._configs[candidate_id]
            if not self._gc_eligible(candidate_id):
                continue
            handle = self._service.kernel.schedule(
                config.gc_timeout,
                self._gc_fire,
                candidate_id,
                label=f"gc-{candidate_id}",
            )
            self._gc_pending[candidate_id] = handle

    def _gc_eligible(self, config_id: str) -> bool:
        """The three keep-alive rules of Sec. 4.4."""
        config = self._configs[config_id]
        record = self._records.get(config_id)
        if record is None or not self._service.job_is_running(record.job_id):
            return False  # nothing to collect
        if not config.garbage_collectable:
            return False  # rule (i)
        for dependent in self.dependents_of(config_id):
            if self.is_running(dependent):
                return False  # rule (ii): still in use
        if record.explicit:
            return False  # rule (iii): explicitly submitted
        return True

    def _gc_fire(self, config_id: str) -> None:
        self._gc_pending.pop(config_id, None)
        if not self._gc_eligible(config_id):
            return
        record = self._records.pop(config_id)
        self._service._cancel_managed(
            record.job_id, config_id=config_id, garbage_collected=True
        )
        # Cascade: the collected app's own dependencies may now be unused.
        self._schedule_gc_checks(self.dependencies_of(config_id))


class _SubmissionThread:
    """The paper's "application submission thread" as a DES state machine."""

    def __init__(
        self, manager: DependencyManager, nodes: Set[str], explicit_target: str
    ) -> None:
        self.manager = manager
        self.nodes = nodes
        self.explicit_target = explicit_target

    def step(self) -> None:
        manager = self.manager
        service = manager._service
        now = service.now
        # Submit every dependency-free, not-yet-running node right away,
        # then look for the next target among satisfied nodes.
        progressed = True
        while progressed:
            progressed = False
            for node in self._ordered_pending():
                deps = manager.dependencies_of(node)
                if deps:
                    continue
                manager._submit_now(node, explicit=(node == self.explicit_target))
                progressed = True
        pending = self._ordered_pending()
        if not pending:
            return  # everything (including the target) is submitted
        best_node: Optional[str] = None
        best_wait = float("inf")
        for node in pending:
            deps = manager.dependencies_of(node)
            if not all(self._dep_satisfied(dep) for dep in deps):
                continue
            wait = 0.0
            for dep, uptime in deps.items():
                dep_submit = manager.submit_time_of(dep)
                assert dep_submit is not None
                wait = max(wait, dep_submit + uptime - now)
            wait = max(wait, 0.0)
            if wait < best_wait:
                best_wait = wait
                best_node = node
        if best_node is None:
            # Nothing satisfiable: a dependency must still be sleeping in a
            # concurrent thread.  Re-check shortly.
            service.kernel.schedule(0.5, self.step, label="submission-thread-poll")
            return
        if best_wait <= 0:
            manager._submit_now(
                best_node, explicit=(best_node == self.explicit_target)
            )
            self.step()
            return
        service.kernel.schedule(
            best_wait, self._wake, best_node, label=f"submit-{best_node}"
        )

    def _wake(self, node: str) -> None:
        if node in self._ordered_pending():
            deps = self.manager.dependencies_of(node)
            if all(self._dep_satisfied(dep) for dep in deps):
                now = self.manager._service.now
                ready = all(
                    (self.manager.submit_time_of(dep) or 0.0) + uptime <= now + 1e-9
                    for dep, uptime in deps.items()
                )
                if ready:
                    self.manager._submit_now(
                        node, explicit=(node == self.explicit_target)
                    )
        self.step()

    def _ordered_pending(self) -> List[str]:
        return sorted(
            (
                node
                for node in self.nodes
                if not self.manager.is_running(node)
            ),
            key=lambda node: self.manager._order[node],
        )

    def _dep_satisfied(self, dep: str) -> bool:
        return self.manager.is_running(dep)
