"""ORCA — the orchestrator framework (the paper's contribution).

An orchestrator has two halves (Sec. 3):

* the **ORCA logic** — user code subclassing :class:`Orchestrator`,
  registering event scopes and specializing event handlers;
* the **ORCA service** — the runtime daemon (:class:`OrcaService`) that
  matches events to scopes, maintains the in-memory stream graph, delivers
  events one at a time with context + epoch, and exposes actuation and
  dependency-management APIs.
"""

from repro.orca.contexts import (
    ChannelCongestedContext,
    ChannelReroutedContext,
    ChaosInjectedContext,
    CheckpointCommittedContext,
    HealthAlertContext,
    HostFailureContext,
    JobCancellationContext,
    JobSubmissionContext,
    OperatorMetricContext,
    OperatorPortMetricContext,
    OrcaStartContext,
    PEFailureContext,
    PEMetricContext,
    RegionRescaledContext,
    RegionStateMigratedContext,
    RehydrateSkippedContext,
    StateReclaimedContext,
    TimerContext,
    UserEventContext,
)
from repro.orca.dependencies import AppConfig
from repro.orca.descriptor import ManagedApplication, OrcaDescriptor
from repro.orca.orchestrator import Orchestrator
from repro.orca.scopes import (
    ChaosScope,
    CheckpointScope,
    HealthScope,
    HostFailureScope,
    JobCancellationScope,
    JobSubmissionScope,
    OperatorMetricScope,
    OperatorPortMetricScope,
    ParallelRegionScope,
    PEFailureScope,
    PEMetricScope,
    TimerScope,
    UserEventScope,
    to_string,
)
from repro.orca.rules import Rule, RuleOrchestrator, when
from repro.orca.service import OrcaService

__all__ = [
    "Rule",
    "RuleOrchestrator",
    "when",
    "AppConfig",
    "ChannelCongestedContext",
    "ChannelReroutedContext",
    "ChaosInjectedContext",
    "ChaosScope",
    "CheckpointCommittedContext",
    "CheckpointScope",
    "HealthAlertContext",
    "HealthScope",
    "HostFailureContext",
    "HostFailureScope",
    "JobCancellationContext",
    "JobCancellationScope",
    "JobSubmissionContext",
    "JobSubmissionScope",
    "ManagedApplication",
    "OperatorMetricContext",
    "OperatorMetricScope",
    "OperatorPortMetricContext",
    "OperatorPortMetricScope",
    "Orchestrator",
    "OrcaDescriptor",
    "OrcaService",
    "OrcaStartContext",
    "ParallelRegionScope",
    "PEFailureContext",
    "PEFailureScope",
    "PEMetricContext",
    "PEMetricScope",
    "RegionRescaledContext",
    "RegionStateMigratedContext",
    "RehydrateSkippedContext",
    "StateReclaimedContext",
    "TimerContext",
    "TimerScope",
    "UserEventContext",
    "UserEventScope",
    "to_string",
]
