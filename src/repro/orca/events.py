"""Internal event records and the one-at-a-time delivery queue.

Sec. 4.2 of the paper: "Events are delivered to the ORCA logic one at a
time.  If other events occur while an event handling routine is under
execution, these events are queued by the ORCA service in the order they
were received."
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional


@dataclass
class OrcaEvent:
    """One queued event: type, context, and the matching subscope keys.

    ``txn_id`` implements the paper's future-work reliable-delivery hook:
    every delivered event carries a transaction id, and actuations issued
    while handling the event are attributed to it (see
    :meth:`repro.orca.service.OrcaService.actuation_log`).
    """

    event_type: str
    context: Any
    scope_keys: List[str] = field(default_factory=list)
    txn_id: int = 0
    enqueued_at: float = 0.0
    delivered_at: Optional[float] = None

    @property
    def queue_latency(self) -> Optional[float]:
        """Seconds the event waited in the queue (None until delivered)."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.enqueued_at


@dataclass(frozen=True)
class QueueLatencyStats:
    """Aggregate queue-wait statistics over all delivered events.

    One-at-a-time delivery (Sec. 4.2) means a slow handler delays every
    queued event behind it; these numbers make that head-of-line blocking
    observable through the ORCA service inspection API.
    """

    delivered: int
    mean: float
    maximum: float
    last: float


class EventQueue:
    """FIFO queue with delivery bookkeeping."""

    def __init__(self) -> None:
        self._queue: Deque[OrcaEvent] = deque()
        self._next_txn = 1
        self.delivered_count = 0
        self.dropped_count = 0
        self.total_queue_latency = 0.0
        self.max_queue_latency = 0.0
        self.last_queue_latency = 0.0

    def push(self, event: OrcaEvent) -> OrcaEvent:
        event.txn_id = self._next_txn
        self._next_txn += 1
        self._queue.append(event)
        return event

    def pop(self) -> Optional[OrcaEvent]:
        if not self._queue:
            return None
        self.delivered_count += 1
        return self._queue.popleft()

    def record_delivery(self, event: OrcaEvent, now: float) -> float:
        """Stamp the delivery time on an event and fold it into the stats."""
        event.delivered_at = now
        latency = max(0.0, now - event.enqueued_at)
        self.total_queue_latency += latency
        self.max_queue_latency = max(self.max_queue_latency, latency)
        self.last_queue_latency = latency
        return latency

    def latency_stats(self) -> QueueLatencyStats:
        delivered = self.delivered_count
        mean = self.total_queue_latency / delivered if delivered else 0.0
        return QueueLatencyStats(
            delivered=delivered,
            mean=mean,
            maximum=self.max_queue_latency,
            last=self.last_queue_latency,
        )

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
