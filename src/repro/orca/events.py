"""Internal event records and the one-at-a-time delivery queue.

Sec. 4.2 of the paper: "Events are delivered to the ORCA logic one at a
time.  If other events occur while an event handling routine is under
execution, these events are queued by the ORCA service in the order they
were received."
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional


@dataclass
class OrcaEvent:
    """One queued event: type, context, and the matching subscope keys.

    ``txn_id`` implements the paper's future-work reliable-delivery hook:
    every delivered event carries a transaction id, and actuations issued
    while handling the event are attributed to it (see
    :meth:`repro.orca.service.OrcaService.actuation_log`).
    """

    event_type: str
    context: Any
    scope_keys: List[str] = field(default_factory=list)
    txn_id: int = 0
    enqueued_at: float = 0.0


class EventQueue:
    """FIFO queue with delivery bookkeeping."""

    def __init__(self) -> None:
        self._queue: Deque[OrcaEvent] = deque()
        self._next_txn = 1
        self.delivered_count = 0
        self.dropped_count = 0

    def push(self, event: OrcaEvent) -> OrcaEvent:
        event.txn_id = self._next_txn
        self._next_txn += 1
        self._queue.append(event)
        return event

    def pop(self) -> Optional[OrcaEvent]:
        if not self._queue:
            return None
        self.delivered_count += 1
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
