"""Event contexts.

Sec. 4.2 of the paper: "for each event, the ORCA service delivers two
items" — the keys of all matching subscopes and the **context** of the
event: "a slice of the application runtime information in which the event
occurs ... the minimum information required to characterize each type of
event".  Contexts can be used to further query the ORCA service and
inspect the logical/physical representation of the application.

Field names are snake_case; the camelCase names used verbatim in the
paper's code listings (``context.instanceName``, ``context.epoch``...) are
provided as read-only aliases so the paper's Figs. 5-6 translate
one-to-one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class OrcaStartContext:
    """Delivered once, when the ORCA service has loaded the ORCA logic."""

    orca_id: str
    time: float


@dataclass(frozen=True)
class OperatorMetricContext:
    """An operator-scope metric value observed at one SRM poll."""

    instance_name: str  #: operator full (instance) name
    operator_kind: str
    metric: str  #: metric name
    value: float
    epoch: int  #: logical clock: one epoch per SRM poll round (Sec. 4.2)
    job_id: str
    app_name: str
    pe_id: str
    collection_ts: float  #: when the host controller sampled the value
    is_custom: bool

    @property
    def instanceName(self) -> str:  # noqa: N802 - paper-parity alias
        return self.instance_name


@dataclass(frozen=True)
class OperatorPortMetricContext:
    """A port-scope operator metric value (e.g. queueSize of input port 0)."""

    instance_name: str
    operator_kind: str
    port: int
    metric: str
    value: float
    epoch: int
    job_id: str
    app_name: str
    pe_id: str
    collection_ts: float
    is_custom: bool

    @property
    def instanceName(self) -> str:  # noqa: N802 - paper-parity alias
        return self.instance_name


@dataclass(frozen=True)
class PEMetricContext:
    """A PE-scope metric value."""

    pe_id: str
    metric: str
    value: float
    epoch: int
    job_id: str
    app_name: str
    host: Optional[str]
    collection_ts: float
    is_custom: bool


@dataclass(frozen=True)
class PEFailureContext:
    """A PE crash, pushed by SAM through the ORCA service (Sec. 4.2).

    SAM provides "the PE id, the failure detection timestamp, and the
    crash reason"; the ORCA service adds an epoch that groups PE failures
    belonging to the same physical event (e.g. one host failure).
    """

    pe_id: str
    pe_index: int
    job_id: str
    app_name: str
    reason: str
    detection_ts: float
    epoch: int
    host: Optional[str]
    operators: tuple = ()  #: full names of operators hosted by the failed PE

    @property
    def peId(self) -> str:  # noqa: N802 - paper-parity alias
        return self.pe_id


@dataclass(frozen=True)
class HostFailureContext:
    """A host went down (detected by SRM via missed heartbeats)."""

    host: str
    detection_ts: float
    epoch: int
    affected_pe_ids: tuple = ()


@dataclass(frozen=True)
class JobSubmissionContext:
    """A managed application was submitted (directly or by the dependency
    manager)."""

    job_id: str
    app_name: str
    config_id: Optional[str]  #: AppConfig id when the dependency manager submitted
    time: float
    explicit: bool  #: True when the ORCA logic asked for this app directly


@dataclass(frozen=True)
class JobCancellationContext:
    """A managed application was cancelled (directly or garbage-collected)."""

    job_id: str
    app_name: str
    config_id: Optional[str]
    time: float
    garbage_collected: bool  #: True when the dependency manager GC'd it


@dataclass(frozen=True)
class ChannelCongestedContext:
    """One channel of a parallel region exceeded its congestion threshold.

    Produced during the SRM metric poll: the region's congestion metric is
    aggregated per channel over the channel's operators; channels above the
    region's threshold raise this event (one event per congested channel,
    all sharing the poll's metric epoch, so handlers can reason about
    simultaneity exactly as with Fig. 6's metric events).
    """

    job_id: str
    app_name: str
    region: str
    channel: int  #: congested channel index
    value: float  #: aggregated congestion-metric value of the channel
    threshold: float
    metric: str  #: the region's congestion metric name
    width: int  #: region width at observation time
    epoch: int  #: metric epoch of the poll that observed the congestion
    time: float


@dataclass(frozen=True)
class RegionRescaledContext:
    """A parallel region finished a live re-parallelization attempt.

    Delivered for failed attempts too (``succeeded=False``, e.g. a drain
    timeout or an unplaceable channel): the region then still runs at
    ``old_width`` and the ORCA logic can retry, alert, or back off.
    """

    job_id: str
    app_name: str
    region: str
    old_width: int
    new_width: int  #: the *requested* width; actual width on failure is old_width
    epoch: int  #: reconfiguration epoch assigned at the resume barrier (0 on failure)
    duration: float  #: seconds from quiesce to resume
    time: float
    succeeded: bool = True
    error: Optional[str] = None  #: failure reason when succeeded is False


@dataclass(frozen=True)
class RegionStateMigratedContext:
    """A rescale's migration phase moved keyed operator state.

    Delivered right before the matching ``region_rescaled`` event when the
    completed rescale migrated at least one keyed entry (or dropped global
    state with removed channels).  ``moves`` maps ``(src, dst)`` channel
    pairs to the number of keyed entries that travelled along that edge.
    """

    job_id: str
    app_name: str
    region: str
    old_width: int
    new_width: int
    keys_moved: int
    bytes_moved: int
    moves: Dict[tuple, int]
    dropped_global_states: int
    skipped_channels: tuple  #: channels whose PE was down at extraction
    wall_ms: float  #: real time spent extracting + installing partitions
    epoch: int  #: reconfiguration epoch of the enclosing rescale
    time: float
    #: global states folded into survivors by the region's user-defined
    #: ``global_merge`` hook (scale-in only)
    global_states_merged: int = 0


@dataclass(frozen=True)
class ChannelReroutedContext:
    """A parallel-region channel was masked (or unmasked) on its splitter.

    Emitted when a channel's PE crashes — the splitter routes its keys to
    the surviving channels until ``restart_pe`` completes — and again,
    with ``masked=False``, once the restarted channel rejoined the ring.
    """

    job_id: str
    app_name: str
    region: str
    channel: int
    masked: bool
    reason: str
    width: int
    pe_id: str
    time: float
    #: on unmask: detour entries that could not be reclaimed (dropped)
    purged_keys: int = 0
    #: on unmask: detour entries returned to the restarted channel
    reclaimed_keys: int = 0
    #: on mask: entries seeded onto detours from the last committed epoch
    seeded_keys: int = 0


@dataclass(frozen=True)
class CheckpointCommittedContext:
    """A PE's state store was checkpointed and the epoch committed.

    Produced by the background :class:`~repro.checkpoint.service.
    CheckpointService` on every committed epoch of a managed job's PE.
    ``epoch`` is drawn from the clock shared with reconfiguration, so
    handlers can order checkpoints against rescales and reclaims.
    """

    job_id: str
    app_name: str
    pe_id: str
    host: Optional[str]
    epoch: int
    full: bool  #: True when any keyed state was captured in full
    n_operators: int
    keys_dirty: int  #: keys actually re-serialized (incremental capture)
    keys_total: int
    bytes_written: int
    time: float


@dataclass(frozen=True)
class StateReclaimedContext:
    """Detour-accrued keyed state returned to a restarted channel.

    Delivered when a masked channel rejoined its region's ring and the
    elastic controller moved the state its keys accrued on the detour
    channels back to it (instead of purging it, which is what the
    no-checkpoint semantics would do).
    """

    job_id: str
    app_name: str
    region: str
    channels: tuple  #: the channel indices that rejoined the ring
    pe_id: str
    keys_reclaimed: int
    keys_purged: int  #: entries dropped because their owner was not live
    bytes_reclaimed: int
    epoch: int  #: shared state-epoch clock (orders against checkpoints)
    time: float


@dataclass(frozen=True)
class RehydrateSkippedContext:
    """A ``restart_pe(rehydrate=True)`` found nothing to restore.

    Without this event a policy cannot distinguish a restored PE from one
    that silently restarted empty (no committed checkpoint epoch and no
    quiesced snapshot existed) — exactly the blind spot user-defined
    failover routines need surfaced.
    """

    job_id: str
    app_name: str
    pe_id: str
    pe_index: int
    host: Optional[str]
    reason: str  #: currently always "no_snapshot"
    time: float


@dataclass(frozen=True)
class ChaosInjectedContext:
    """A chaos-campaign step fired (see :mod:`repro.chaos`).

    Published by the chaos engine for every injected perturbation, so
    orchestration routines can *react* to injected faults (back off a
    scaling decision during a known outage window, annotate their own
    telemetry) — or be tested blind to them by simply not registering a
    :class:`~repro.orca.scopes.ChaosScope`.  ``detail`` carries the
    perturbation's public payload (engine-internal state snapshots are
    stripped).
    """

    scenario: str
    step_index: int
    kind: str  #: perturbation kind (pe_flap, latency_spike, rate_surge, ...)
    target: str  #: PE id, host name, region, or "feed"
    run_id: str
    time: float
    job_id: Optional[str] = None
    app_name: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class HealthAlertContext:
    """An SLO burn-rate alert raised by the health plane (repro.obs.health).

    Published when a registered :class:`~repro.obs.slo.Slo` objective
    burns through its budget on both the short (confirmation) and long
    (sustain) windows, so adaptation routines can react to degradation
    — congestion, retry storms, growing lag — *before* it becomes tuple
    loss.  ``bottleneck``/``why`` carry the bottleneck detector's
    attribution at raise time ("" when the system showed no eligible
    pressure target).
    """

    slo: str  #: the violated objective's name
    signal: str  #: ``latency_p95``, ``loss``, or ``lag``
    severity: str  #: ``warn`` or ``page``
    burn_short: float  #: short-window burn rate at raise time
    burn_long: float  #: long-window burn rate at raise time
    observed: float  #: short-window observed signal value
    objective: float  #: the objective's budget
    time: float
    region: Optional[str] = None  #: region restriction (None: global)
    bottleneck: str = ""  #: attributed bottleneck target
    why: str = ""  #: the detector's why-string


@dataclass(frozen=True)
class TimerContext:
    """A timer created through the ORCA service expired."""

    timer_id: str
    scheduled_for: float
    time: float
    payload: Any = None
    periodic: bool = False


@dataclass(frozen=True)
class UserEventContext:
    """A user-generated event, injected via the command tool (Sec. 4.1)."""

    name: str
    time: float
    payload: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class EventTransaction:
    """Transaction id attached to every delivered event.

    This implements the paper's *future work* item (Sec. 7): "adding
    transaction IDs to delivered events, and associating actuations taking
    place via the ORCA service to the event transaction ID", enabling
    reliable delivery and actuation replay.
    """

    txn_id: int
    event_type: str
    enqueued_at: float
