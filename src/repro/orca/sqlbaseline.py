"""SQL-equivalent baseline for scope matching (Sec. 4.1 of the paper).

The paper argues that the scope API "offers a much simpler interface to
developers when compared to an SQL-based approach", because composite
containment is recursive and the equivalent SQL needs a recursive common
table expression.  To *verify* that claim (and to have a baseline for the
scope-matching benchmark), this module implements

* a miniature in-memory relational engine — relations with named columns,
  selection, projection, theta-joins, union, distinct, and fixpoint
  evaluation of recursive CTEs;
* the paper's exact query over three tables
  (``CompositeInstances(compName, parentName, compKind)``,
  ``OperatorInstances(operName, operKind, compName)``,
  ``OperatorMetrics(metricName, operName, metricValue)``), parameterized
  by metric name, operator kinds and composite kind.

Property-based tests check that the recursive query and the scope
matcher select exactly the same operators on randomly nested graphs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Sequence, Set, Tuple

from repro.spl.adl import ADLModel

Row = Tuple[Any, ...]


class Relation:
    """An immutable bag of rows with named columns."""

    def __init__(self, columns: Sequence[str], rows: Iterable[Row]) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        self.rows: List[Row] = [tuple(r) for r in rows]
        if any(len(r) != len(self.columns) for r in self.rows):
            raise ValueError("row arity does not match columns")
        self._index = {name: i for i, name in enumerate(self.columns)}

    # -- helpers ---------------------------------------------------------------

    def col(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; have {list(self.columns)}"
            ) from None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    # -- relational operators -----------------------------------------------------

    def select(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Relation":
        """sigma: keep rows satisfying ``predicate`` (given as a dict view)."""
        kept = [
            row
            for row in self.rows
            if predicate(dict(zip(self.columns, row)))
        ]
        return Relation(self.columns, kept)

    def project(self, names: Sequence[str]) -> "Relation":
        """pi: keep (and reorder) the named columns."""
        idx = [self.col(n) for n in names]
        return Relation(names, [tuple(row[i] for i in idx) for row in self.rows])

    def rename(self, prefix: str) -> "Relation":
        """Prefix every column name (``CI.compName`` style aliases)."""
        return Relation([f"{prefix}.{c}" for c in self.columns], self.rows)

    def cross(self, other: "Relation") -> "Relation":
        """Cartesian product; column names must not collide."""
        clash = set(self.columns) & set(other.columns)
        if clash:
            raise ValueError(f"column clash in cross product: {sorted(clash)}")
        rows = [a + b for a in self.rows for b in other.rows]
        return Relation(self.columns + other.columns, rows)

    def join(
        self, other: "Relation", predicate: Callable[[Dict[str, Any]], bool]
    ) -> "Relation":
        """theta-join: cross product then selection."""
        return self.cross(other).select(predicate)

    def equi_join(self, other: "Relation", left: str, right: str) -> "Relation":
        """Hash equi-join on one column pair (the fast path)."""
        li = self.col(left)
        buckets: Dict[Any, List[Row]] = {}
        for row in other.rows:
            buckets.setdefault(row[other.col(right)], []).append(row)
        rows = []
        for a in self.rows:
            for b in buckets.get(a[li], ()):
                rows.append(a + b)
        return Relation(self.columns + other.columns, rows)

    def union_all(self, other: "Relation") -> "Relation":
        if self.columns != other.columns:
            raise ValueError("union requires identical schemas")
        return Relation(self.columns, self.rows + other.rows)

    def distinct(self) -> "Relation":
        seen: Set[Row] = set()
        rows = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Relation(self.columns, rows)


def recursive_cte(
    base: Relation, step: Callable[[Relation], Relation]
) -> Relation:
    """Fixpoint evaluation of a linear recursive CTE.

    ``step`` receives the rows produced in the previous iteration and
    returns the next batch; evaluation stops when no *new* rows appear
    (standard semi-naive semantics, which terminates on acyclic data).
    """
    all_rows: Set[Row] = set(base.rows)
    frontier = base
    result_rows: List[Row] = list(base.rows)
    while True:
        produced = step(frontier)
        if produced.columns != base.columns:
            raise ValueError("recursive step must preserve the CTE schema")
        fresh = [row for row in produced.rows if row not in all_rows]
        if not fresh:
            return Relation(base.columns, result_rows)
        all_rows.update(fresh)
        result_rows.extend(fresh)
        frontier = Relation(base.columns, fresh)


# ---------------------------------------------------------------------------
# The paper's tables, built from an ADL model
# ---------------------------------------------------------------------------


def tables_from_adl(
    adl: ADLModel,
    metrics: Iterable[Tuple[str, str, float]],
) -> Dict[str, Relation]:
    """Build CompositeInstances / OperatorInstances / OperatorMetrics.

    ``metrics`` is an iterable of (operator name, metric name, value) —
    typically the latest SRM snapshot.  As in the paper's simplification,
    composite and operator *types* are attributes of the instance tables.
    Top-level entities use ``None`` as their composite/parent.
    """
    composite_rows = [(c.name, c.parent, c.kind) for c in adl.composites]
    operator_rows = [(o.name, o.kind, o.composite) for o in adl.operators]
    metric_rows = [(name, op, value) for op, name, value in metrics]
    return {
        "CompositeInstances": Relation(
            ("compName", "parentName", "compKind"), composite_rows
        ),
        "OperatorInstances": Relation(
            ("operName", "operKind", "compName"), operator_rows
        ),
        "OperatorMetrics": Relation(
            ("metricName", "operName", "metricValue"), metric_rows
        ),
    }


def paper_scope_query(
    tables: Dict[str, Relation],
    metric_name: str,
    operator_kinds: Sequence[str],
    composite_kind: str,
) -> Relation:
    """The exact recursive query of Sec. 4.1, parameterized.

    Returns a relation with columns (operName, metricValue): the metric
    values of operators of one of ``operator_kinds`` residing (at any
    nesting depth) in a composite instance of ``composite_kind``.
    (We keep ``operName`` so the result can be compared set-wise against
    the scope matcher; the paper's SELECT projects only metricValue.)
    """
    ci = tables["CompositeInstances"]
    oi = tables["OperatorInstances"]
    om = tables["OperatorMetrics"]

    # WITH CompPairs(compName, parentName) AS (
    #   SELECT compName, parentName FROM CompositeInstances
    #   UNION ALL
    #   SELECT CI.compName, CP.parentName
    #   FROM CompositeInstances CI, CompPairs CP
    #   WHERE CI.parentName = CP.compName )
    base = ci.project(("compName", "parentName")).select(
        lambda r: r["parentName"] is not None
    )

    def step(frontier: Relation) -> Relation:
        joined = ci.rename("CI").equi_join(
            frontier.rename("CP"), "CI.parentName", "CP.compName"
        )
        return Relation(
            ("compName", "parentName"),
            [
                (row[joined.col("CI.compName")], row[joined.col("CP.parentName")])
                for row in joined.rows
                if row[joined.col("CP.parentName")] is not None
            ],
        ).distinct()

    comp_pairs = recursive_cte(base, step)

    # Main query body.
    kinds = set(operator_kinds)
    om_f = om.select(lambda r: r["metricName"] == metric_name)
    oi_f = oi.select(lambda r: r["operKind"] in kinds)
    ci_f = ci.select(lambda r: r["compKind"] == composite_kind).rename("CI")
    joined = om_f.equi_join(oi_f, "operName", "operName")
    # drop the duplicated operName column from the equi-join
    joined = Relation(
        ("metricName", "operName", "metricValue", "operKind", "compName"),
        [
            (
                row[0],
                row[1],
                row[2],
                row[joined.col("operKind")],
                row[joined.col("compName")],
            )
            for row in joined.rows
        ],
    )
    direct = joined.join(
        ci_f, lambda r: r["compName"] == r["CI.compName"]
    ).project(("operName", "metricValue"))
    cp = comp_pairs.rename("CP")
    indirect = (
        joined.join(cp, lambda r: r["compName"] == r["CP.compName"])
        .join(ci_f, lambda r: r["CP.parentName"] == r["CI.compName"])
        .project(("operName", "metricValue"))
    )
    return direct.union_all(indirect).distinct()


def scope_match_reference(
    adl: ADLModel,
    metrics: Iterable[Tuple[str, str, float]],
    metric_name: str,
    operator_kinds: Sequence[str],
    composite_kind: str,
) -> Set[Tuple[str, float]]:
    """What the ORCA scope matcher selects, computed directly from the ADL.

    Used by tests/benchmarks to compare against :func:`paper_scope_query`.
    """
    parents = {c.name: c.parent for c in adl.composites}
    kinds = {c.name: c.kind for c in adl.composites}
    kind_of_op = {o.name: o.kind for o in adl.operators}
    comp_of_op = {o.name: o.composite for o in adl.operators}
    wanted_kinds = set(operator_kinds)
    result: Set[Tuple[str, float]] = set()
    for op_name, name, value in metrics:
        if name != metric_name:
            continue
        if kind_of_op.get(op_name) not in wanted_kinds:
            continue
        current = comp_of_op.get(op_name)
        while current is not None:
            if kinds.get(current) == composite_kind:
                result.add((op_name, value))
                break
            current = parents.get(current)
    return result
