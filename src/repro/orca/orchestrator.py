"""Orchestrator — the base class of the ORCA logic.

Sec. 3 of the paper: "Developers write the ORCA logic ... by inheriting an
Orchestrator class.  The Orchestrator class contains the signature of all
event handling methods that can be specialized.  The ORCA logic can invoke
routines from the ORCA service by using a reference received during
construction."

Handler names match the paper's listings (Figs. 5-6) exactly.  Every
handler except :meth:`handleOrcaStart` receives the matched subscope keys
alongside the event context.  The only event that is always in scope is
the start notification (Sec. 4.1); all other events are delivered only if
they match a registered subscope.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.orca.contexts import (
    ChannelCongestedContext,
    ChannelReroutedContext,
    ChaosInjectedContext,
    CheckpointCommittedContext,
    HealthAlertContext,
    HostFailureContext,
    JobCancellationContext,
    JobSubmissionContext,
    OperatorMetricContext,
    OperatorPortMetricContext,
    OrcaStartContext,
    PEFailureContext,
    PEMetricContext,
    RegionRescaledContext,
    RegionStateMigratedContext,
    RehydrateSkippedContext,
    StateReclaimedContext,
    TimerContext,
    UserEventContext,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.orca.service import OrcaService


class Orchestrator:
    """Base class for user-written adaptation logic."""

    def __init__(self) -> None:
        #: Reference to the ORCA service, set before handleOrcaStart runs.
        self._orca: "OrcaService" = None  # type: ignore[assignment]

    @property
    def orca(self) -> "OrcaService":
        return self._orca

    def emitTraceMarker(self, name: str, **attrs) -> None:  # noqa: N802
        """Annotate the observability timeline from adaptation logic.

        Records a ``user:<name>`` control event (stamped with this
        orchestrator's id) through the system's :class:`repro.obs.hub.ObsHub`,
        so user-defined adaptation decisions appear in flight-recorder
        dumps alongside the runtime's own spans.  A no-op before the
        service is bound.

        Args:
            name: Marker name (rendered as ``user:<name>``).
            **attrs: Extra attributes for the span.
        """
        if self._orca is None:
            return
        obs = getattr(self._orca.system, "obs", None)
        if obs is not None:
            obs.record_control_event(
                f"user:{name}", self._orca.now, orca=self._orca.orca_id, **attrs
            )

    # -- lifecycle ---------------------------------------------------------------

    def handleOrcaStart(self, context: OrcaStartContext) -> None:  # noqa: N802
        """Always delivered once the ORCA service has loaded this logic."""

    # -- metric events --------------------------------------------------------------

    def handleOperatorMetricEvent(  # noqa: N802
        self, context: OperatorMetricContext, scopes: List[str]
    ) -> None:
        """An operator metric matched at least one registered subscope."""

    def handleOperatorPortMetricEvent(  # noqa: N802
        self, context: OperatorPortMetricContext, scopes: List[str]
    ) -> None:
        """An operator port metric matched at least one registered subscope."""

    def handlePEMetricEvent(  # noqa: N802
        self, context: PEMetricContext, scopes: List[str]
    ) -> None:
        """A PE metric matched at least one registered subscope."""

    # -- failure events -----------------------------------------------------------------

    def handlePEFailureEvent(  # noqa: N802
        self, context: PEFailureContext, scopes: List[str]
    ) -> None:
        """A PE of a managed job crashed."""

    def handleHostFailureEvent(  # noqa: N802
        self, context: HostFailureContext, scopes: List[str]
    ) -> None:
        """A host went down (detected via missed heartbeats)."""

    # -- job dynamics ----------------------------------------------------------------------

    def handleJobSubmissionEvent(  # noqa: N802
        self, context: JobSubmissionContext, scopes: List[str]
    ) -> None:
        """A managed application was submitted (Sec. 4.4)."""

    def handleJobCancellationEvent(  # noqa: N802
        self, context: JobCancellationContext, scopes: List[str]
    ) -> None:
        """A managed application was cancelled or garbage-collected."""

    # -- parallel regions (elastic subsystem) ------------------------------------------------

    def handleChannelCongestedEvent(  # noqa: N802
        self, context: ChannelCongestedContext, scopes: List[str]
    ) -> None:
        """A parallel-region channel exceeded its congestion threshold."""

    def handleRegionRescaledEvent(  # noqa: N802
        self, context: RegionRescaledContext, scopes: List[str]
    ) -> None:
        """A parallel region completed a live channel-width change."""

    def handleRegionStateMigratedEvent(  # noqa: N802
        self, context: RegionStateMigratedContext, scopes: List[str]
    ) -> None:
        """A rescale's migration phase moved keyed state between channels."""

    def handleChannelReroutedEvent(  # noqa: N802
        self, context: ChannelReroutedContext, scopes: List[str]
    ) -> None:
        """A channel was masked from (or restored to) its region's splitter
        because its PE crashed / finished restarting."""

    # -- checkpointing and recovery (state subsystem) ------------------------------------------

    def handleCheckpointCommittedEvent(  # noqa: N802
        self, context: CheckpointCommittedContext, scopes: List[str]
    ) -> None:
        """A managed PE's state store was checkpointed (epoch committed)."""

    def handleStateReclaimedEvent(  # noqa: N802
        self, context: StateReclaimedContext, scopes: List[str]
    ) -> None:
        """A restarted channel got its detour-accrued keyed state back."""

    def handleRehydrateSkippedEvent(  # noqa: N802
        self, context: RehydrateSkippedContext, scopes: List[str]
    ) -> None:
        """A rehydrating PE restart found nothing to restore (started empty)."""

    # -- chaos campaigns (the chaos subsystem) -------------------------------------------------

    def handleChaosInjectedEvent(  # noqa: N802
        self, context: ChaosInjectedContext, scopes: List[str]
    ) -> None:
        """A chaos-campaign perturbation was injected (ChaosScope only)."""

    # -- health plane (repro.obs.health) -------------------------------------------------------

    def handleHealthAlertEvent(  # noqa: N802
        self, context: HealthAlertContext, scopes: List[str]
    ) -> None:
        """An SLO burn-rate alert raised or escalated (HealthScope only)."""

    # -- timers and user events ----------------------------------------------------------------

    def handleTimerEvent(  # noqa: N802
        self, context: TimerContext, scopes: List[str]
    ) -> None:
        """A timer created through the ORCA service expired."""

    def handleUserEvent(  # noqa: N802
        self, context: UserEventContext, scopes: List[str]
    ) -> None:
        """A user event was injected via the command tool."""
