"""In-memory stream graph maintained by the ORCA service.

Sec. 3 of the paper (third key concept): "an in-memory stream graph
representation that has both logical and physical deployment information
... maintained by the ORCA service and can be queried by the adaptation
logic using an event context (e.g., which other operators are in the same
operating system process as operator x?)".

The *logical* side (operators, kinds, composite containment, streams) is
built from the ADL of every application listed in the orchestrator
descriptor.  The *physical* side (PE ids, hosts) is registered per job at
submission time — several jobs may run the same application (replicas), so
physical queries are keyed by job or by globally-unique PE id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import InspectionError
from repro.spl.adl import ADLModel


@dataclass
class _AppEntry:
    """Logical view of one managed application."""

    adl: ADLModel
    #: operator full name -> (chain of enclosing composite instance names,
    #: innermost first; chain of their kinds)
    containment: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = field(
        default_factory=dict
    )


@dataclass
class _JobEntry:
    """Physical view of one running job of a managed application."""

    job_id: str
    app_name: str
    pe_id_by_index: Dict[int, str] = field(default_factory=dict)
    host_by_pe_id: Dict[str, str] = field(default_factory=dict)
    index_by_pe_id: Dict[str, int] = field(default_factory=dict)


class StreamGraph:
    """Logical + physical view of every application an ORCA manages."""

    def __init__(self) -> None:
        self._apps: Dict[str, _AppEntry] = {}
        self._jobs: Dict[str, _JobEntry] = {}
        self._job_of_pe: Dict[str, str] = {}

    # -- logical registration ---------------------------------------------------

    def add_application(self, adl: ADLModel) -> None:
        """Register (or refresh) the logical view of an application."""
        entry = _AppEntry(adl=adl)
        parents = {c.name: c.parent for c in adl.composites}
        kinds = {c.name: c.kind for c in adl.composites}
        for operator in adl.operators:
            chain_names: List[str] = []
            chain_kinds: List[str] = []
            current = operator.composite
            while current is not None:
                if current not in parents:
                    raise InspectionError(
                        f"ADL of {adl.name!r}: operator {operator.name!r} references "
                        f"unknown composite {current!r}"
                    )
                chain_names.append(current)
                chain_kinds.append(kinds[current])
                current = parents[current]
            entry.containment[operator.name] = (tuple(chain_names), tuple(chain_kinds))
        self._apps[adl.name] = entry

    def has_application(self, app_name: str) -> bool:
        return app_name in self._apps

    def applications(self) -> List[str]:
        return list(self._apps)

    # -- physical registration -----------------------------------------------------

    def register_job(
        self,
        job_id: str,
        app_name: str,
        pe_assignment: Dict[int, Tuple[str, Optional[str]]],
    ) -> None:
        """Record a job's physical deployment: PE index -> (pe_id, host)."""
        self._require_app(app_name)
        entry = _JobEntry(job_id=job_id, app_name=app_name)
        for index, (pe_id, host) in pe_assignment.items():
            entry.pe_id_by_index[index] = pe_id
            entry.index_by_pe_id[pe_id] = index
            if host is not None:
                entry.host_by_pe_id[pe_id] = host
            self._job_of_pe[pe_id] = job_id
        self._jobs[job_id] = entry

    def unregister_job(self, job_id: str) -> None:
        entry = self._jobs.pop(job_id, None)
        if entry is not None:
            for pe_id in entry.index_by_pe_id:
                self._job_of_pe.pop(pe_id, None)

    # -- logical queries -----------------------------------------------------------

    def _require_app(self, app_name: str) -> _AppEntry:
        entry = self._apps.get(app_name)
        if entry is None:
            raise InspectionError(f"application {app_name!r} is not managed here")
        return entry

    def _require_job(self, job_id: str) -> _JobEntry:
        entry = self._jobs.get(job_id)
        if entry is None:
            raise InspectionError(f"job {job_id!r} is not managed here")
        return entry

    def operator_kind(self, app_name: str, op_name: str) -> str:
        entry = self._require_app(app_name)
        return entry.adl.operator_by_name(op_name).kind

    def operators_of_type(self, app_name: str, kind: str) -> List[str]:
        entry = self._require_app(app_name)
        return [op.name for op in entry.adl.operators if op.kind == kind]

    def enclosing_composite(self, app_name: str, op_name: str) -> Optional[str]:
        """Immediate enclosing composite instance name (None if top level).

        Answers the paper's "what is the enclosing composite operator
        instance name for operator instance y?" inspection query.
        """
        entry = self._require_app(app_name)
        if op_name not in entry.containment:
            raise InspectionError(f"{app_name!r} has no operator {op_name!r}")
        chain_names, _ = entry.containment[op_name]
        return chain_names[0] if chain_names else None

    def composite_chain(self, app_name: str, op_name: str) -> Tuple[str, ...]:
        """All enclosing composite instance names, innermost first."""
        entry = self._require_app(app_name)
        if op_name not in entry.containment:
            raise InspectionError(f"{app_name!r} has no operator {op_name!r}")
        return entry.containment[op_name][0]

    def composite_types_of(self, app_name: str, op_name: str) -> FrozenSet[str]:
        """Kinds of all enclosing composites (any depth) — scope matching."""
        entry = self._require_app(app_name)
        if op_name not in entry.containment:
            raise InspectionError(f"{app_name!r} has no operator {op_name!r}")
        return frozenset(entry.containment[op_name][1])

    def streams_of(self, app_name: str) -> List[Tuple[str, str]]:
        """(src operator, dst operator) pairs of the application."""
        entry = self._require_app(app_name)
        return [(s.src_operator, s.dst_operator) for s in entry.adl.streams]

    # -- physical queries -------------------------------------------------------------

    def job_of_pe(self, pe_id: str) -> str:
        job_id = self._job_of_pe.get(pe_id)
        if job_id is None:
            raise InspectionError(f"PE {pe_id!r} is not managed here")
        return job_id

    def pes_of_job(self, job_id: str) -> List[str]:
        entry = self._require_job(job_id)
        return [entry.pe_id_by_index[i] for i in sorted(entry.pe_id_by_index)]

    def pe_index(self, pe_id: str) -> int:
        job_id = self.job_of_pe(pe_id)
        return self._jobs[job_id].index_by_pe_id[pe_id]

    def host_of_pe(self, pe_id: str) -> Optional[str]:
        job_id = self.job_of_pe(pe_id)
        return self._jobs[job_id].host_by_pe_id.get(pe_id)

    def operators_in_pe(self, pe_id: str) -> List[str]:
        """Which stream operators reside in PE with id x? (Sec. 4.2)"""
        job_id = self.job_of_pe(pe_id)
        job = self._jobs[job_id]
        app = self._require_app(job.app_name)
        index = job.index_by_pe_id[pe_id]
        for pe in app.adl.pes:
            if pe.index == index:
                return list(pe.operators)
        raise InspectionError(f"ADL of {job.app_name!r} lacks PE index {index}")

    def composites_in_pe(self, pe_id: str) -> Set[str]:
        """Which composites reside in PE with id x? (Sec. 4.2)

        Returns the composite instance names having at least one operator
        inside the PE — note a composite may span several PEs (Fig. 3).
        """
        job_id = self.job_of_pe(pe_id)
        job = self._jobs[job_id]
        app = self._require_app(job.app_name)
        result: Set[str] = set()
        for op_name in self.operators_in_pe(pe_id):
            chain_names, _ = app.containment[op_name]
            result.update(chain_names)
        return result

    def pe_of_operator(self, job_id: str, op_name: str) -> str:
        """What is the PE id for operator instance y? (Sec. 4.2)"""
        job = self._require_job(job_id)
        app = self._require_app(job.app_name)
        index = app.adl.operator_by_name(op_name).pe_index
        pe_id = job.pe_id_by_index.get(index)
        if pe_id is None:
            raise InspectionError(
                f"job {job_id!r}: no physical PE for index {index} ({op_name!r})"
            )
        return pe_id

    def colocated_operators(self, job_id: str, op_name: str) -> List[str]:
        """Which other operators are in the same OS process as operator x?"""
        pe_id = self.pe_of_operator(job_id, op_name)
        return [name for name in self.operators_in_pe(pe_id) if name != op_name]

    # -- event attribute assembly (used by the service for scope matching) -------

    def operator_event_attrs(
        self, app_name: str, op_name: str, job_id: str, pe_id: str
    ) -> Dict[str, object]:
        entry = self._require_app(app_name)
        if op_name not in entry.containment:
            raise InspectionError(f"{app_name!r} has no operator {op_name!r}")
        chain_names, chain_kinds = entry.containment[op_name]
        return {
            "application": app_name,
            "job": job_id,
            "operator_instance": op_name,
            "operator_type": entry.adl.operator_by_name(op_name).kind,
            "composite_instance": set(chain_names),
            "composite_type": set(chain_kinds),
            "pe": pe_id,
            "host": self._jobs.get(job_id, _JobEntry("", "")).host_by_pe_id.get(pe_id),
        }

    def pe_event_attrs(self, app_name: str, job_id: str, pe_id: str) -> Dict[str, object]:
        attrs: Dict[str, object] = {
            "application": app_name,
            "job": job_id,
            "pe": pe_id,
            "host": self._jobs.get(job_id, _JobEntry("", "")).host_by_pe_id.get(pe_id),
        }
        # a PE's composite attributes: union over its operators
        job = self._jobs.get(job_id)
        if job is not None and pe_id in job.index_by_pe_id:
            app = self._require_app(app_name)
            instances: Set[str] = set()
            kinds: Set[str] = set()
            for op_name in self.operators_in_pe(pe_id):
                chain_names, chain_kinds = app.containment[op_name]
                instances.update(chain_names)
                kinds.update(chain_kinds)
            attrs["composite_instance"] = instances
            attrs["composite_type"] = kinds
        return attrs
