"""The command tool: user-generated events.

Sec. 3 of the paper: "The ORCA service can also receive user-generated
events via a command tool, which generates a direct call to the ORCA
service.  This direct call also does not interfere with the application
hot path."

Operators (e.g. human operations staff) use this to nudge a running
orchestrator: force a failover, request an extra replica, flip a feature
flag in the adaptation policy...
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.orca.service import OrcaService


class OrcaCommandTool:
    """CLI-equivalent front end for injecting user events."""

    def __init__(self, service: "OrcaService") -> None:
        self._service = service

    def submit_event(self, name: str, payload: Optional[Dict[str, Any]] = None) -> None:
        """Deliver a user event directly to the ORCA service."""
        self._service.inject_user_event(name, payload or {})

    def set_metric_poll_interval(self, seconds: float) -> None:
        """Operator override of the SRM polling rate."""
        self._service.set_metric_poll_interval(seconds)
