"""Orchestrator descriptor.

Sec. 3 of the paper: compiling the ORCA logic produces a shared library,
plus "an XML file which contains the basic description of the ORCA logic
artifacts (e.g., ORCA name and shared library path) and a list of all
applications that can be controlled from the orchestrator.  Each list item
contains the application name and a path to its corresponding ADL file."

Our Python equivalent keeps the same structure: the "shared library" is an
:class:`~repro.orca.orchestrator.Orchestrator` factory (a class or a
dotted import path resolved at load time), and each managed application
entry carries the in-memory :class:`~repro.spl.application.Application`
and/or its ADL XML text.
"""

from __future__ import annotations

import importlib
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from repro.errors import DescriptorError
from repro.orca.orchestrator import Orchestrator
from repro.spl.application import Application


@dataclass
class ManagedApplication:
    """One application the orchestrator may submit and act upon."""

    name: str
    application: Optional[Application] = None
    adl_xml: Optional[str] = None
    #: default compile strategy for this application
    compile_strategy: str = "manual"
    compile_target_pe_count: int = 0

    def __post_init__(self) -> None:
        if self.application is None and self.adl_xml is None:
            raise DescriptorError(
                f"managed application {self.name!r} needs an Application or ADL"
            )
        if self.application is not None and self.application.name != self.name:
            raise DescriptorError(
                f"managed application name {self.name!r} does not match "
                f"Application.name {self.application.name!r}"
            )


OrchestratorFactory = Union[type, Callable[[], Orchestrator], str]


@dataclass
class OrcaDescriptor:
    """The MyORCA.xml equivalent submitted to SAM (Fig. 4)."""

    name: str
    logic: OrchestratorFactory
    applications: List[ManagedApplication] = field(default_factory=list)
    #: initial SRM metric poll interval; None = system default (15 s)
    metric_poll_interval: Optional[float] = None

    def create_logic(self) -> Orchestrator:
        """Instantiate the ORCA logic ("load the shared library")."""
        factory = self.logic
        if isinstance(factory, str):
            factory = resolve_dotted(factory)
        instance = factory()
        if not isinstance(instance, Orchestrator):
            raise DescriptorError(
                f"orchestrator factory of {self.name!r} produced "
                f"{type(instance).__name__}, not an Orchestrator"
            )
        return instance

    def application(self, name: str) -> ManagedApplication:
        for managed in self.applications:
            if managed.name == name:
                return managed
        raise DescriptorError(
            f"orchestrator {self.name!r} does not manage application {name!r}"
        )

    def manages(self, name: str) -> bool:
        return any(m.name == name for m in self.applications)

    # -- XML round trip ----------------------------------------------------------

    def to_xml(self) -> str:
        """Serialize to the MyORCA.xml shape (logic as dotted path)."""
        if not isinstance(self.logic, str):
            logic_path = f"{self.logic.__module__}.{self.logic.__qualname__}"
        else:
            logic_path = self.logic
        root = ET.Element("orchestrator", name=self.name, logic=logic_path)
        if self.metric_poll_interval is not None:
            root.set("metricPollInterval", str(self.metric_poll_interval))
        apps_el = ET.SubElement(root, "applications")
        for managed in self.applications:
            app_el = ET.SubElement(apps_el, "application", name=managed.name)
            app_el.set("compileStrategy", managed.compile_strategy)
            if managed.compile_target_pe_count:
                app_el.set("compileTargetPeCount", str(managed.compile_target_pe_count))
            if managed.adl_xml is not None:
                adl_el = ET.SubElement(app_el, "adl")
                adl_el.text = managed.adl_xml
        ET.indent(root)
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "OrcaDescriptor":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise DescriptorError(f"malformed orchestrator XML: {exc}") from exc
        if root.tag != "orchestrator":
            raise DescriptorError(f"expected <orchestrator>, got <{root.tag}>")
        name = root.get("name")
        logic = root.get("logic")
        if not name or not logic:
            raise DescriptorError("<orchestrator> needs name and logic attributes")
        poll_text = root.get("metricPollInterval")
        applications = []
        for app_el in root.iterfind("./applications/application"):
            adl_el = app_el.find("adl")
            applications.append(
                ManagedApplication(
                    name=app_el.get("name", ""),
                    adl_xml=adl_el.text if adl_el is not None else None,
                    compile_strategy=app_el.get("compileStrategy", "manual"),
                    compile_target_pe_count=int(
                        app_el.get("compileTargetPeCount", "0")
                    ),
                )
            )
        return cls(
            name=name,
            logic=logic,
            applications=applications,
            metric_poll_interval=float(poll_text) if poll_text else None,
        )


def resolve_dotted(path: str) -> Callable[[], Orchestrator]:
    """Import ``package.module.ClassName`` and return the attribute."""
    module_path, _, attr = path.rpartition(".")
    if not module_path:
        raise DescriptorError(f"not a dotted path: {path!r}")
    try:
        module = importlib.import_module(module_path)
    except ImportError as exc:
        raise DescriptorError(f"cannot import {module_path!r}: {exc}") from exc
    try:
        return getattr(module, attr)
    except AttributeError:
        raise DescriptorError(f"{module_path!r} has no attribute {attr!r}") from None
