"""Deterministic bottleneck attribution over per-link pressure samples.

Each health-plane evaluation tick turns the transport's sampled state
into one :class:`PressureSample` per link and asks the detector *which
link is the bottleneck right now, and why*.  The score multiplies the
normalized pressure dimensions the elasticity literature agrees on —
queue level, queue growth, service time, and retry pressure — so a
link only wins by being worse than its peers on the dimensions that
are actually differentiating in this tick:

    score = depth_hat * (1 + growth_hat) * (1 + service_hat) * (1 + retry_hat)

where each ``*_hat`` is the sample's value divided by the tick's
fleet-wide maximum (0 when no link shows that pressure at all).  Links
below ``min_queue_depth`` never qualify; ties break on the
lexicographically smallest target name.  Everything is plain float
arithmetic over deterministically-ordered samples, so attributions are
byte-stable under fixed seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class PressureSample:
    """One link's (or operator's) pressure at an evaluation tick."""

    #: printable name (``<op>@<pe>#<port>`` for links)
    target: str
    #: ``link`` today; ``operator`` once operator-level sampling lands
    kind: str
    #: tuples queued toward the target
    queue_depth: float
    #: window-smoothed queue growth, tuples per second
    queue_growth: float
    #: service-time p95 estimate, seconds (ack round trip when known)
    service_p95: float
    #: outstanding retransmission attempts
    retry_pressure: float


@dataclass(frozen=True)
class Bottleneck:
    """The detector's verdict: who is limiting the system, and why."""

    target: str
    kind: str
    score: float
    why: str


class BottleneckDetector:
    """Scores pressure samples and names the current bottleneck."""

    def __init__(self, min_queue_depth: float = 1.0) -> None:
        #: links with less queued than this never qualify (idle noise)
        self.min_queue_depth = min_queue_depth

    def evaluate(
        self, samples: Sequence[PressureSample]
    ) -> Optional[Bottleneck]:
        """Pick the highest-pressure sample, or None when all is calm."""
        eligible: List[PressureSample] = [
            s for s in samples if s.queue_depth >= self.min_queue_depth
        ]
        if not eligible:
            return None
        max_depth = max(s.queue_depth for s in eligible)
        max_growth = max(max(s.queue_growth, 0.0) for s in eligible)
        max_service = max(s.service_p95 for s in eligible)
        max_retry = max(s.retry_pressure for s in eligible)

        def norm(value: float, peak: float) -> float:
            return value / peak if peak > 0 else 0.0

        best: Optional[PressureSample] = None
        best_score = 0.0
        # sorted by name so equal scores resolve deterministically
        for sample in sorted(eligible, key=lambda s: s.target):
            score = (
                norm(sample.queue_depth, max_depth)
                * (1.0 + norm(max(sample.queue_growth, 0.0), max_growth))
                * (1.0 + norm(sample.service_p95, max_service))
                * (1.0 + norm(sample.retry_pressure, max_retry))
            )
            if best is None or score > best_score:
                best = sample
                best_score = score
        assert best is not None
        why = (
            f"queue={best.queue_depth:.0f}"
            f" ({best.queue_growth:+.2f}/s)"
            f" service_p95={best.service_p95 * 1000.0:.3f}ms"
            f" retry_pressure={best.retry_pressure:.0f}"
        )
        return Bottleneck(
            target=best.target, kind=best.kind, score=best_score, why=why
        )
