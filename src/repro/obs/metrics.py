"""The observability metrics registry: counters, gauges, histograms.

A :class:`MetricsRegistry` holds labeled series under Prometheus-style
family names and renders them to the Prometheus text exposition format
or JSONL.  Everything is deterministic by construction: series render
sorted by ``(family, labels)``, histogram quantiles are computed by
linear interpolation over fixed bucket bounds, and values format
identically across platforms — the registry's renders participate in
the repo's byte-stable artifact discipline (chaos scorecards, flight
timelines), so nothing here may consult wall clocks or hash order.

Unlike the per-operator :class:`repro.spl.metrics.MetricRegistry`
(which models the paper's SPL metric accessors and is scraped by host
controllers into SRM), this registry is system-wide and export-facing;
:class:`repro.obs.hub.ObsHub` mirrors SRM samples into it at scrape
time under canonical names (see :mod:`repro.obs.naming`).
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Tuple

LabelItems = Tuple[Tuple[str, str], ...]

#: default histogram bucket upper bounds (seconds), chosen around the
#: simulator's transport latencies (1 ms base hop) and rescale horizons
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, math.inf,
)


def _format_value(value: float) -> str:
    """Render one sample value deterministically (ints without ``.0``)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Escape one label value per the Prometheus text format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_items(labels: Optional[Dict[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(items: LabelItems) -> str:
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + inner + "}"


class ObsCounter:
    """A monotonically increasing counter series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        self.value += amount


class ObsGauge:
    """A point-in-time gauge series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self.value += amount


class ObsHistogram:
    """A fixed-bucket histogram with deterministic quantile estimates.

    Observations land in pre-declared cumulative buckets (the last
    bound is always ``+Inf``); :meth:`quantile` interpolates linearly
    inside the bucket containing the requested rank, clamping the open
    top bucket to the maximum observed value, so p50/p95/p99 are exact
    functions of the observation multiset — no randomness, no decay.
    """

    __slots__ = ("bounds", "counts", "total", "sum", "min", "max")

    def __init__(self, buckets: Optional[Iterable[float]] = None) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        self.total += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) of observations.

        Args:
            q: The quantile, e.g. ``0.95``.

        Returns:
            The interpolated estimate (0.0 with no observations).
        """
        if self.total == 0:
            return 0.0
        rank = q * self.total
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.bounds):
            in_bucket = self.counts[i]
            if in_bucket and cumulative + in_bucket >= rank:
                upper = bound if bound != math.inf else self.max
                upper = min(upper, self.max)
                lower = max(lower, self.min) if i == 0 else lower
                if upper <= lower:
                    return upper
                fraction = (rank - cumulative) / in_bucket
                return lower + (upper - lower) * fraction
            cumulative += in_bucket
            if bound != math.inf:
                lower = bound
        return self.max if self.max != -math.inf else 0.0


class MetricsRegistry:
    """Labeled metric families with Prometheus-text and JSONL renders."""

    def __init__(self) -> None:
        #: family name -> (type, help text), in registration order
        self._families: Dict[str, Tuple[str, str]] = {}
        self._counters: Dict[Tuple[str, LabelItems], ObsCounter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], ObsGauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], ObsHistogram] = {}

    def _family(self, name: str, kind: str, help_text: str) -> None:
        existing = self._families.get(name)
        if existing is None:
            self._families[name] = (kind, help_text)
        elif existing[0] != kind:
            raise ValueError(
                f"metric family {name!r} registered as {existing[0]}, "
                f"requested as {kind}"
            )

    def counter(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help_text: str = "",
    ) -> ObsCounter:
        """Get or create one counter series.

        Args:
            name: Family name (``repro_*`` by convention).
            labels: Series labels (order-insensitive).
            help_text: Family HELP line, recorded on first registration.

        Returns:
            The (shared) series object.
        """
        self._family(name, "counter", help_text)
        key = (name, _label_items(labels))
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = ObsCounter()
        return series

    def gauge(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help_text: str = "",
    ) -> ObsGauge:
        """Get or create one gauge series (see :meth:`counter`)."""
        self._family(name, "gauge", help_text)
        key = (name, _label_items(labels))
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = ObsGauge()
        return series

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help_text: str = "",
        buckets: Optional[Iterable[float]] = None,
    ) -> ObsHistogram:
        """Get or create one histogram series (see :meth:`counter`).

        Args:
            name: Family name.
            labels: Series labels.
            help_text: Family HELP line.
            buckets: Bucket upper bounds (default
                :data:`DEFAULT_BUCKETS`); only consulted at creation.

        Returns:
            The (shared) series object.
        """
        self._family(name, "histogram", help_text)
        key = (name, _label_items(labels))
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms[key] = ObsHistogram(buckets)
        return series

    # -- rendering ----------------------------------------------------------

    def _series_of(self, name: str, kind: str) -> List[Tuple[LabelItems, object]]:
        store = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }[kind]
        return sorted(
            ((key[1], series) for key, series in store.items() if key[0] == name),
            key=lambda entry: entry[0],
        )

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format.

        Families render sorted by name, series sorted by label items,
        histograms as cumulative ``_bucket``/``_sum``/``_count`` series
        — byte-stable for a given registry state.

        Returns:
            The exposition text (trailing newline included when
            non-empty).
        """
        lines: List[str] = []
        for name in sorted(self._families):
            kind, help_text = self._families[name]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for items, series in self._series_of(name, kind):
                if kind == "histogram":
                    lines.extend(self._render_histogram(name, items, series))
                else:
                    labels = _render_labels(items)
                    lines.append(
                        f"{name}{labels} {_format_value(series.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def _render_histogram(
        name: str, items: LabelItems, series: "ObsHistogram"
    ) -> List[str]:
        lines: List[str] = []
        cumulative = 0
        for bound, count in zip(series.bounds, series.counts):
            cumulative += count
            le = "+Inf" if bound == math.inf else _format_value(bound)
            bucket_items = items + (("le", le),)
            lines.append(f"{name}_bucket{_render_labels(bucket_items)} {cumulative}")
        labels = _render_labels(items)
        lines.append(f"{name}_sum{labels} {_format_value(series.sum)}")
        lines.append(f"{name}_count{labels} {series.total}")
        return lines

    def render_jsonl(self) -> str:
        """One JSON object per series, sorted like the Prometheus render.

        Histogram lines carry ``count``/``sum``/``min``/``max`` and the
        interpolated ``p50``/``p95``/``p99`` — the quantile surface the
        Prometheus text format has no native slot for.

        Returns:
            Newline-delimited JSON (trailing newline when non-empty).
        """
        lines: List[str] = []
        for name in sorted(self._families):
            kind, _ = self._families[name]
            for items, series in self._series_of(name, kind):
                record: Dict[str, object] = {
                    "name": name,
                    "type": kind,
                    "labels": dict(items),
                }
                if kind == "histogram":
                    record.update(
                        count=series.total,
                        sum=series.sum,
                        min=series.min if series.total else 0.0,
                        max=series.max if series.total else 0.0,
                        p50=series.quantile(0.50),
                        p95=series.quantile(0.95),
                        p99=series.quantile(0.99),
                    )
                else:
                    record["value"] = series.value
                lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")
