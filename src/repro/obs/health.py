"""Continuous health plane: windowed signals, lag watermarks, alerts.

``repro.obs.health`` keeps an always-on, incrementally-maintained view
of how the runtime is doing *right now* — the input the paper's
adaptation routines (and our scaling policies) need in order to react
to degradation before it becomes loss:

* **Sliding windows** — :class:`SlidingWindow` maintains rate / mean /
  max / quantiles of one signal over a sim-time horizon with
  fixed-width buckets, so every statistic is incremental (observe is
  O(1), reads merge a handful of buckets) and fully deterministic.
* **Backpressure & lag watermarks** — every evaluation tick samples the
  transport's per-link in-flight depth, open-batch residency, and
  reliable-delivery retry pressure, and rolls them into a per-link
  **lag watermark**: the sim-time a tuple enqueued now should expect to
  wait before it clears the wire.  Region watermarks take the max over
  the links feeding a parallel region's operators.
* **Bottleneck attribution** — each tick feeds per-link pressure
  samples to :class:`repro.obs.detect.BottleneckDetector`, which names
  the current bottleneck with a why-string.
* **SLO burn-rate alerts** — declarative :class:`repro.obs.slo.Slo`
  objectives are evaluated with multi-window burn rates; raised alerts
  fan out to ``alert_listeners`` (ORCA turns them into ``health_alert``
  events for :class:`~repro.orca.scopes.HealthScope` subscribers).

Everything derives from the sim clock and sampled runtime state — no
wall clocks, no randomness — so :meth:`HealthMonitor.snapshot` renders
byte-identically across same-seed runs.  The monitor registers **no**
metric series and emits **no** spans unless SLOs are configured and
fire, which keeps every historical artifact byte-stable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.detect import Bottleneck, BottleneckDetector, PressureSample
from repro.obs.slo import SEVERITY_RANK, HealthAlert, Slo, classify

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import SystemS
    from repro.sim.kernel import Kernel, ScheduledEvent

#: default quantile bucket bounds for seconds-scale window signals
WINDOW_BOUNDS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, float("inf"),
)


class _WindowBucket:
    """One fixed-width time slice of a sliding window."""

    __slots__ = ("index", "count", "total", "max", "qcounts")

    def __init__(self, index: int, n_bounds: int) -> None:
        self.index = index
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.qcounts = [0] * n_bounds


class SlidingWindow:
    """Incremental sim-time sliding window over one scalar signal.

    Observations land in fixed-width buckets (``horizon / buckets``
    wide); statistics merge the live buckets, and buckets older than
    the horizon are evicted on the next observe/read.  All arithmetic
    is plain float summation in bucket order, so two identical runs
    produce bit-identical statistics.
    """

    __slots__ = ("horizon", "width", "bounds", "_buckets")

    def __init__(
        self,
        horizon: float,
        buckets: int = 10,
        bounds: Tuple[float, ...] = WINDOW_BOUNDS,
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"window horizon must be > 0, got {horizon}")
        if buckets < 1:
            raise ValueError(f"window needs >= 1 bucket, got {buckets}")
        self.horizon = horizon
        self.width = horizon / buckets
        self.bounds = bounds
        self._buckets: Deque[_WindowBucket] = deque()

    def observe(self, now: float, value: float) -> None:
        """Record ``value`` at sim-time ``now`` (O(1) amortized)."""
        index = int(now / self.width)
        self._evict(index)
        if not self._buckets or self._buckets[-1].index != index:
            self._buckets.append(_WindowBucket(index, len(self.bounds)))
        bucket = self._buckets[-1]
        bucket.count += 1
        bucket.total += value
        if value > bucket.max:
            bucket.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                bucket.qcounts[i] += 1
                break

    def _evict(self, newest_index: int) -> None:
        floor = newest_index - int(self.horizon / self.width)
        buckets = self._buckets
        while buckets and buckets[0].index <= floor:
            buckets.popleft()

    def _live(self, now: float) -> Deque[_WindowBucket]:
        self._evict(int(now / self.width))
        return self._buckets

    def count(self, now: float) -> int:
        """Observations currently inside the window."""
        return sum(b.count for b in self._live(now))

    def total(self, now: float) -> float:
        """Sum of observed values inside the window."""
        return sum(b.total for b in self._live(now))

    def rate(self, now: float) -> float:
        """Observations per second over the horizon."""
        return self.count(now) / self.horizon

    def mean(self, now: float) -> float:
        """Mean observed value (0.0 when the window is empty)."""
        buckets = self._live(now)
        count = sum(b.count for b in buckets)
        if count == 0:
            return 0.0
        return sum(b.total for b in buckets) / count

    def maximum(self, now: float) -> float:
        """Max observed value (0.0 when the window is empty)."""
        buckets = self._live(now)
        if not buckets:
            return 0.0
        return max(b.max for b in buckets)

    def quantile(self, now: float, q: float) -> float:
        """Deterministic interpolated quantile, clamped to observed max.

        Same estimator family as
        :meth:`repro.obs.metrics.ObsHistogram.quantile`: linear
        interpolation inside the winning fixed bucket, with the +Inf
        bucket clamped to the window's observed maximum.
        """
        buckets = self._live(now)
        total = sum(b.count for b in buckets)
        if total == 0:
            return 0.0
        merged = [0] * len(self.bounds)
        for b in buckets:
            for i, c in enumerate(b.qcounts):
                merged[i] += c
        target = q * total
        cumulative = 0
        observed_max = max(b.max for b in buckets)
        for i, c in enumerate(merged):
            if c == 0:
                continue
            if cumulative + c >= target:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                if hi == float("inf") or hi > observed_max:
                    hi = observed_max
                if hi <= lo:
                    return hi
                fraction = (target - cumulative) / c
                return lo + (hi - lo) * fraction
            cumulative += c
        return observed_max


@dataclass(frozen=True)
class LinkHealth:
    """One link's sampled pressure at the latest evaluation tick."""

    #: ``<operator>@<pe>#<port>`` — the in-flight key, printable
    name: str
    #: tuples in flight (or buffered in an open batch) toward the link
    depth: int
    #: age of the oldest open batch on the link, seconds (0.0: none)
    open_age: float
    #: outstanding retransmission attempts across pending units
    retry_pressure: int
    #: the lag watermark rolled up from the three components above
    lag: float


@dataclass(frozen=True)
class HealthSnapshot:
    """A byte-stable rendering of the health plane at one instant."""

    time: float
    ticks: int
    interval: float
    links: Tuple[LinkHealth, ...]
    regions: Tuple[Tuple[str, float], ...]
    ack_p95: float
    loss_rate: float
    max_lag: float
    bottleneck: Optional[Bottleneck]
    active_alerts: Tuple[Tuple[str, str, float, float], ...]
    alerts_fired: int
    pages_fired: int

    def render(self) -> str:
        """Deterministic text artifact (input to ``tools/healthwatch``)."""
        out = [
            "# health snapshot",
            f"# sim_time: {self.time:.6f}",
            f"# ticks: {self.ticks}",
            f"# interval: {self.interval:.6f}",
            "links:",
        ]
        for link in self.links:
            out.append(
                f"  {link.name} depth={link.depth}"
                f" open={link.open_age:.6f}"
                f" retries={link.retry_pressure}"
                f" lag={link.lag:.6f}"
            )
        out.append("regions:")
        for name, lag in self.regions:
            out.append(f"  {name} lag={lag:.6f}")
        out.append("signals:")
        out.append(f"  ack_rtt_p95: {self.ack_p95:.6f}")
        out.append(f"  loss_rate: {self.loss_rate:.6f}")
        out.append(f"  max_lag: {self.max_lag:.6f}")
        if self.bottleneck is not None:
            b = self.bottleneck
            out.append(
                f"bottleneck: {b.target} score={b.score:.6f} why={b.why}"
            )
        else:
            out.append("bottleneck: none")
        if self.active_alerts:
            out.append("alerts:")
            for slo, severity, short, long_ in self.active_alerts:
                out.append(
                    f"  {severity} slo={slo}"
                    f" burn_short={short:.3f} burn_long={long_:.3f}"
                )
        else:
            out.append("alerts: none")
        out.append(
            f"# fired: alerts={self.alerts_fired} pages={self.pages_fired}"
        )
        return "\n".join(out) + "\n"


class HealthMonitor:
    """Always-on health aggregation over one simulated system.

    Constructed (and attached) by :class:`repro.obs.hub.ObsHub`; a
    kernel-scheduled tick every ``interval`` sim-seconds samples the
    transport and delivery plane, updates the sliding windows, runs the
    bottleneck detector, and evaluates registered SLOs.  With
    ``interval <= 0`` the plane is disabled entirely (microbenchmarks).
    """

    def __init__(
        self,
        kernel: "Kernel",
        *,
        interval: float = 0.5,
        short_window: float = 5.0,
        long_window: float = 30.0,
    ) -> None:
        self.kernel = kernel
        self.interval = interval
        self.short_window = short_window
        self.long_window = long_window
        self.slos: List[Slo] = []
        #: fan-out for raised alerts (ORCA services append themselves)
        self.alert_listeners: List[Callable[[HealthAlert], None]] = []
        self.detector = BottleneckDetector()
        self._system: Optional["SystemS"] = None
        self._tick_event: Optional["ScheduledEvent"] = None
        self.ticks = 0
        self.alerts_fired = 0
        self.pages_fired = 0
        #: recent raised alerts, newest last (bounded)
        self.alerts: Deque[HealthAlert] = deque(maxlen=64)
        self._active: Dict[str, str] = {}
        self._active_burns: Dict[str, Tuple[float, float]] = {}
        #: latest per-link health, keyed by printable link name
        self._links: Dict[str, LinkHealth] = {}
        self._region_lag: Dict[str, float] = {}
        self._prev_depth: Dict[str, int] = {}
        self._depth_growth: Dict[str, SlidingWindow] = {}
        self._ack_links: Dict[str, SlidingWindow] = {}
        #: (signal, region-or-"", horizon) -> window; loss/lag are fed
        #: per tick, latency_p95 is fed by the ack round-trip tap
        self._signals: Dict[Tuple[str, str, float], SlidingWindow] = {}
        self._prev_counters = {"sent": 0, "dropped": 0}
        self.bottleneck: Optional[Bottleneck] = None
        self.max_lag = 0.0
        self.peak_link_lag = 0.0
        self.peak_queue_depth = 0
        self.peak_retry_pressure = 0
        #: bottleneck attributed at the tick that set ``peak_link_lag``
        #: (scorecards report this: the verdict *at* peak pressure, not
        #: whatever the post-drain calm shows)
        self.peak_bottleneck = ""
        self._signal_window("latency_p95", None, short_window)
        self._signal_window("loss", None, short_window)
        self._signal_window("lag", None, short_window)

    # -- lifecycle ----------------------------------------------------------

    def attach(self, system: "SystemS") -> None:
        """Bind to a system and start the evaluation tick."""
        self._system = system
        if self.interval > 0 and self._tick_event is None:
            self._tick_event = self.kernel.schedule(
                self.interval, self._tick, label="health-tick"
            )

    def detach(self) -> None:
        """Stop ticking and unbind (idempotent)."""
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        self._system = None

    def add_slo(self, slo: Slo) -> Slo:
        """Register an objective; its burn windows start immediately."""
        self.slos.append(slo)
        self._signal_window(slo.signal, slo.region, slo.short_window)
        self._signal_window(slo.signal, slo.region, slo.long_window)
        return slo

    # -- taps ---------------------------------------------------------------

    def on_transport_pressure(
        self, kind: str, value: float, link: str
    ) -> None:
        """Event-driven pressure tap (installed on the transport).

        ``ack_rtt`` is the only event-fed signal today: the reliable
        delivery plane reports each unit's send-to-ack round trip here;
        everything else is sampled at tick time for zero hot-path cost.
        """
        if kind != "ack_rtt":
            return
        now = self.kernel.now
        for (signal, _region, _h), window in self._signals.items():
            if signal == "latency_p95":
                window.observe(now, value)
        per_link = self._ack_links.get(link)
        if per_link is None:
            per_link = SlidingWindow(self.short_window)
            self._ack_links[link] = per_link
        per_link.observe(now, value)

    # -- the evaluation tick ------------------------------------------------

    def _tick(self) -> None:
        self._tick_event = None
        system = self._system
        if system is None:
            return
        now = self.kernel.now
        transport = system.transport
        latency = transport.latency
        ack_timeout = (
            transport.reliability.ack_timeout
            if transport.reliability is not None
            else 0.25
        )

        # open-batch residency per link (batching enabled only)
        open_age: Dict[str, float] = {}
        for flow, batch in transport._open_batches.items():
            name = f"{flow[2]}@{flow[1]}#{flow[3]}"
            age = now - batch.opened_at
            if age > open_age.get(name, 0.0):
                open_age[name] = age

        # retry pressure per link (reliable modes only)
        retries: Dict[str, int] = {}
        if transport.reliability is not None:
            for entry in transport.reliability.pending.values():
                if entry.acked or entry.condemned or entry.attempts == 0:
                    continue
                name = (
                    f"{entry.op_full_name}@{entry.dst_pe.pe_id}"
                    f"#{entry.port}"
                )
                retries[name] = retries.get(name, 0) + entry.attempts

        # per-link depth, growth, and the rolled-up lag watermark
        links: Dict[str, LinkHealth] = {}
        names = set(open_age) | set(retries)
        depth_by_name: Dict[str, int] = {}
        for (pe_id, op, port), depth in transport._in_flight.items():
            name = f"{op}@{pe_id}#{port}"
            depth_by_name[name] = depth_by_name.get(name, 0) + depth
        names |= set(depth_by_name)
        samples: List[PressureSample] = []
        max_lag = 0.0
        new_peak = False
        for name in sorted(names):
            depth = depth_by_name.get(name, 0)
            age = open_age.get(name, 0.0)
            retry = retries.get(name, 0)
            lag = depth * latency + age + retry * ack_timeout
            links[name] = LinkHealth(name, depth, age, retry, lag)
            if lag > max_lag:
                max_lag = lag
            if lag > self.peak_link_lag:
                self.peak_link_lag = lag
                new_peak = True
            if depth > self.peak_queue_depth:
                self.peak_queue_depth = depth
            if retry > self.peak_retry_pressure:
                self.peak_retry_pressure = retry
            growth = (depth - self._prev_depth.get(name, 0)) / self.interval
            self._prev_depth[name] = depth
            gwindow = self._depth_growth.get(name)
            if gwindow is None:
                gwindow = SlidingWindow(self.short_window)
                self._depth_growth[name] = gwindow
            gwindow.observe(now, growth)
            ack = self._ack_links.get(name)
            service_p95 = (
                ack.quantile(now, 0.95)
                if ack is not None and ack.count(now)
                else latency
            )
            samples.append(
                PressureSample(
                    target=name,
                    kind="link",
                    queue_depth=float(depth),
                    queue_growth=gwindow.mean(now),
                    service_p95=service_p95,
                    retry_pressure=float(retry),
                )
            )
        self._links = links
        self.max_lag = max_lag

        # region watermarks: max over the links feeding a region's ops
        region_lag: Dict[str, float] = {}
        op_region = self._op_regions(system)
        for name, link in links.items():
            region = op_region.get(name.split("@", 1)[0])
            if region is None:
                continue
            if link.lag > region_lag.get(region, 0.0):
                region_lag[region] = link.lag
        self._region_lag = region_lag

        # loss fraction this tick (first-cause counters are cumulative)
        dropped = (
            transport.total_dropped
            + transport.dropped_in_flight
            + transport.dropped_by_fault
        )
        sent = transport.total_sent
        d_dropped = dropped - self._prev_counters["dropped"]
        d_sent = sent - self._prev_counters["sent"]
        self._prev_counters["dropped"] = dropped
        self._prev_counters["sent"] = sent
        loss_fraction = d_dropped / d_sent if d_sent > 0 else 0.0

        # feed the tick-sampled signal windows
        for (signal, region, _h), window in self._signals.items():
            if signal == "loss":
                window.observe(now, loss_fraction)
            elif signal == "lag":
                if region:
                    window.observe(now, region_lag.get(region, 0.0))
                else:
                    window.observe(now, max_lag)

        self.bottleneck = self.detector.evaluate(samples)
        if new_peak and self.bottleneck is not None:
            self.peak_bottleneck = self.bottleneck.target
        self._evaluate_slos(now)
        self.ticks += 1
        self._tick_event = self.kernel.schedule(
            self.interval, self._tick, label="health-tick"
        )

    def _op_regions(self, system: "SystemS") -> Dict[str, str]:
        """Channel-operator full name -> owning parallel region."""
        mapping: Dict[str, str] = {}
        for job in system.sam.jobs.values():
            if not job.is_running:
                continue
            for plan in job.compiled.parallel_regions.values():
                for ops in plan.channel_ops:
                    for op in ops:
                        mapping[op] = plan.name
        return mapping

    # -- SLO evaluation -----------------------------------------------------

    def _signal_window(
        self, signal: str, region: Optional[str], horizon: float
    ) -> SlidingWindow:
        key = (signal, region or "", horizon)
        window = self._signals.get(key)
        if window is None:
            window = SlidingWindow(horizon)
            self._signals[key] = window
        return window

    def _signal_value(
        self, signal: str, region: Optional[str], horizon: float, now: float
    ) -> float:
        window = self._signal_window(signal, region, horizon)
        if signal == "latency_p95":
            return window.quantile(now, 0.95)
        return window.mean(now)

    def _evaluate_slos(self, now: float) -> None:
        for slo in self.slos:
            short = self._signal_value(
                slo.signal, slo.region, slo.short_window, now
            )
            long_ = self._signal_value(
                slo.signal, slo.region, slo.long_window, now
            )
            burn_short = short / slo.objective
            burn_long = long_ / slo.objective
            severity = classify(burn_short, burn_long, slo)
            previous = self._active.get(slo.name)
            if severity is not None:
                self._active[slo.name] = severity
                self._active_burns[slo.name] = (burn_short, burn_long)
                if previous is None or (
                    SEVERITY_RANK[severity] > SEVERITY_RANK[previous]
                ):
                    self._fire(
                        slo, severity, burn_short, burn_long, short, now
                    )
            elif previous is not None and burn_short < slo.warn_burn:
                del self._active[slo.name]
                self._active_burns.pop(slo.name, None)

    def _fire(
        self,
        slo: Slo,
        severity: str,
        burn_short: float,
        burn_long: float,
        observed: float,
        now: float,
    ) -> None:
        bottleneck = self.bottleneck
        alert = HealthAlert(
            slo=slo.name,
            signal=slo.signal,
            severity=severity,
            burn_short=burn_short,
            burn_long=burn_long,
            observed=observed,
            objective=slo.objective,
            region=slo.region,
            bottleneck=bottleneck.target if bottleneck else "",
            why=bottleneck.why if bottleneck else "",
            time=now,
        )
        self.alerts.append(alert)
        self.alerts_fired += 1
        if severity == "page":
            self.pages_fired += 1
        for listener in list(self.alert_listeners):
            listener(alert)

    # -- inspection ---------------------------------------------------------

    def link_lags(self) -> Dict[str, float]:
        """Latest per-link lag watermarks, keyed by printable link name."""
        return {name: link.lag for name, link in sorted(self._links.items())}

    def region_lag(self, region: str) -> float:
        """Latest lag watermark of one parallel region (0.0: no pressure)."""
        return self._region_lag.get(region, 0.0)

    def snapshot(self) -> HealthSnapshot:
        """Freeze the current health state into a renderable snapshot."""
        now = self.kernel.now
        active = tuple(
            (name, severity) + self._active_burns.get(name, (0.0, 0.0))
            for name, severity in sorted(self._active.items())
        )
        return HealthSnapshot(
            time=now,
            ticks=self.ticks,
            interval=self.interval,
            links=tuple(
                link for _, link in sorted(self._links.items())
                if link.depth or link.retry_pressure or link.open_age
            ),
            regions=tuple(sorted(self._region_lag.items())),
            ack_p95=self._signal_value(
                "latency_p95", None, self.short_window, now
            ),
            loss_rate=self._signal_value("loss", None, self.short_window, now),
            max_lag=self.max_lag,
            bottleneck=self.bottleneck,
            active_alerts=active,
            alerts_fired=self.alerts_fired,
            pages_fired=self.pages_fired,
        )

    def status(self) -> Dict[str, object]:
        """Deterministic inspection summary (``orca.health_status()``)."""
        bottleneck = self.bottleneck
        return {
            "ticks": self.ticks,
            "interval": self.interval,
            "alerts_fired": self.alerts_fired,
            "pages_fired": self.pages_fired,
            "active_alerts": {
                name: severity
                for name, severity in sorted(self._active.items())
            },
            "slos": [slo.name for slo in self.slos],
            "max_lag": self.max_lag,
            "regions": dict(sorted(self._region_lag.items())),
            "bottleneck": (
                {
                    "target": bottleneck.target,
                    "kind": bottleneck.kind,
                    "score": bottleneck.score,
                    "why": bottleneck.why,
                }
                if bottleneck is not None
                else None
            ),
            "peak_link_lag": self.peak_link_lag,
            "peak_queue_depth": self.peak_queue_depth,
            "peak_retry_pressure": self.peak_retry_pressure,
            "peak_bottleneck": self.peak_bottleneck,
        }
