"""Declarative SLOs with multi-window burn-rate evaluation.

An :class:`Slo` names an objective over one health-plane signal:

* ``latency_p95`` — p95 of the reliable-delivery ack round trip over
  the window (seconds); empty under best-effort delivery.
* ``loss`` — windowed mean of the per-tick tuple-loss fraction
  (dropped / sent between evaluation ticks).
* ``lag`` — windowed mean of the lag watermark (the whole system's
  max, or one region's when ``region`` is set).

The **burn rate** of a window is ``observed / objective`` — how many
times faster than budget the objective is being consumed.  Evaluation
uses the standard multi-window AND: an alert raises only when *both*
the short window (it is still happening) and the long window (it is
sustained, not a blip) burn above the threshold; ``warn_burn`` and
``page_burn`` pick the severity.  An active alert clears once the
short-window burn falls back under ``warn_burn``.

All thresholds are plain floats compared against deterministic window
statistics, so alert sequences are byte-stable under fixed seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: signals an SLO may target (see module docstring)
VALID_SIGNALS = ("latency_p95", "loss", "lag")

#: alert severity ordering: escalations fire, de-escalations do not
SEVERITY_RANK = {"warn": 1, "page": 2}


@dataclass(frozen=True)
class Slo:
    """One service-level objective over a health-plane signal."""

    #: unique name; alert contexts and scope filters carry it
    name: str
    #: one of :data:`VALID_SIGNALS`
    signal: str
    #: budget for the signal (seconds for latency/lag, fraction for loss)
    objective: float
    #: confirmation window, sim-seconds (is it still happening?)
    short_window: float = 5.0
    #: sustain window, sim-seconds (is it a blip or a trend?)
    long_window: float = 30.0
    #: burn rate at which a ``warn`` raises (both windows)
    warn_burn: float = 1.0
    #: burn rate at which the alert escalates to ``page``
    page_burn: float = 2.0
    #: restrict the ``lag`` signal to one parallel region (None: global)
    region: Optional[str] = None

    def __post_init__(self) -> None:
        if self.signal not in VALID_SIGNALS:
            raise ValueError(
                f"unknown SLO signal {self.signal!r};"
                f" expected one of {VALID_SIGNALS}"
            )
        if self.objective <= 0:
            raise ValueError(f"SLO objective must be > 0, got {self.objective}")
        if self.short_window <= 0 or self.long_window < self.short_window:
            raise ValueError(
                "SLO windows must satisfy 0 < short_window <= long_window"
            )
        if self.warn_burn <= 0 or self.page_burn < self.warn_burn:
            raise ValueError(
                "SLO burns must satisfy 0 < warn_burn <= page_burn"
            )


def classify(burn_short: float, burn_long: float, slo: Slo) -> Optional[str]:
    """Multi-window severity: both windows must burn above a threshold."""
    if burn_short >= slo.page_burn and burn_long >= slo.page_burn:
        return "page"
    if burn_short >= slo.warn_burn and burn_long >= slo.warn_burn:
        return "warn"
    return None


@dataclass(frozen=True)
class HealthAlert:
    """One raised (or escalated) SLO alert, as fanned out to listeners."""

    #: the violated objective's name
    slo: str
    #: the objective's signal (``latency_p95`` / ``loss`` / ``lag``)
    signal: str
    #: ``warn`` or ``page``
    severity: str
    #: short-window burn rate at raise time
    burn_short: float
    #: long-window burn rate at raise time
    burn_long: float
    #: short-window observed signal value
    observed: float
    #: the objective's budget
    objective: float
    #: region restriction of the objective (None: global)
    region: Optional[str]
    #: current bottleneck attribution target ("" if none)
    bottleneck: str
    #: the bottleneck detector's why-string ("" if none)
    why: str
    #: sim-time the alert raised
    time: float
