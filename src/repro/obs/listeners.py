"""One front door to every runtime instrumentation tap.

The chaos/elastic/checkpoint work grew listener lists all over the
runtime: ``ElasticController.barrier_listeners`` / ``reroute_listeners``
/ ``reclaim_listeners`` / ``rescale_listeners``,
``CheckpointService.attempt_listeners`` / ``commit_listeners``,
``SAM.pe_failure_observers`` / ``pe_restart_observers``,
``ChaosEngine.injection_listeners`` and ``Transport.delivery_taps``.
Subscribers (the ORCA service, the fuzz harness, the observability hub)
each reached into three or four subsystems by hand and had to remember
the matching removals.

:func:`subscribe_runtime` is the documented replacement: pass the
callbacks you care about, get one :class:`RuntimeSubscription` back,
call :meth:`~RuntimeSubscription.detach` once when done.  Registration
and removal stay symmetric by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.engine import ChaosInjection
    from repro.checkpoint.service import CheckpointRecord
    from repro.elastic.controller import (
        BarrierEvent,
        ChannelReroute,
        RescaleOperation,
        StateReclaim,
    )
    from repro.runtime.job import Job
    from repro.runtime.pe import PERuntime
    from repro.runtime.system import SystemS
    from repro.runtime.transport import DeliveryRecord


class RuntimeSubscription:
    """A bundle of live listener registrations, detachable as one unit."""

    def __init__(self, registrations: List[Tuple[list, Callable]]) -> None:
        """Wrap already-appended ``(listener_list, callback)`` pairs."""
        self._registrations = registrations
        self._attached = True
        #: detach() calls that found the subscription already detached —
        #: a recorded no-op, so shutdown-path double-frees are auditable
        #: instead of silent (or, worse, a KeyError on a shared registry)
        self.redundant_detaches = 0

    @property
    def attached(self) -> bool:
        """Whether the subscription's callbacks are still registered."""
        return self._attached

    def __len__(self) -> int:
        return len(self._registrations)

    def detach(self) -> None:
        """Remove every registered callback (recorded no-op when repeated)."""
        if not self._attached:
            self.redundant_detaches += 1
            return
        self._attached = False
        for registry, callback in self._registrations:
            if callback in registry:
                registry.remove(callback)


def subscribe_runtime(
    system: "SystemS",
    *,
    on_barrier: Optional[Callable[["BarrierEvent"], None]] = None,
    on_reroute: Optional[Callable[["ChannelReroute"], None]] = None,
    on_reclaim: Optional[Callable[["StateReclaim"], None]] = None,
    on_rescale: Optional[Callable[["RescaleOperation"], None]] = None,
    on_checkpoint_attempt: Optional[Callable[["CheckpointRecord"], None]] = None,
    on_checkpoint_commit: Optional[Callable[["CheckpointRecord"], None]] = None,
    on_pe_failure: Optional[Callable[["PERuntime", str], None]] = None,
    on_pe_restart: Optional[Callable[["PERuntime"], None]] = None,
    on_topology: Optional[Callable[["Job", str], None]] = None,
    on_injection: Optional[Callable[["ChaosInjection"], None]] = None,
    on_delivery: Optional[Callable[["DeliveryRecord"], None]] = None,
) -> RuntimeSubscription:
    """Register callbacks on the runtime's instrumentation taps.

    Only the callbacks you pass are registered; everything lands on the
    exact listener list the producing subsystem fires (see the module
    docstring for the inventory).  Callback signatures match the
    producing tap:

    * ``on_barrier(BarrierEvent)`` — every rescale-phase transition
      (quiesce / drain_clean / migrate / rewire / resume / failed);
    * ``on_reroute(ChannelReroute)`` — splitter mask/unmask of a
      crashed/restarted parallel-region channel;
    * ``on_reclaim(StateReclaim)`` — keyed state returned to a channel
      that rejoined the ring;
    * ``on_rescale(RescaleOperation)`` — every finished rescale
      (COMPLETED or FAILED), whoever initiated it;
    * ``on_checkpoint_attempt(CheckpointRecord)`` — every checkpoint
      attempt, committed or torn;
    * ``on_checkpoint_commit(CheckpointRecord)`` — committed epochs only;
    * ``on_pe_failure(PERuntime, reason)`` / ``on_pe_restart(PERuntime)``
      — PE crash and completed-restart observers;
    * ``on_topology(Job, change)`` — the job's PE set changed via
      ``SAM.add_pes`` (``change == "add_pes"``) or ``SAM.remove_pes``
      (``"remove_pes"``); fired after the change is fully applied so
      subscribers can refresh materialized stream-graph views;
    * ``on_injection(ChaosInjection)`` — every fired chaos step;
    * ``on_delivery(DeliveryRecord)`` — every successful transport
      delivery (hot path: register only when you must).

    Args:
        system: The :class:`~repro.runtime.system.SystemS` whose taps to
            subscribe.
        on_barrier: See above.
        on_reroute: See above.
        on_reclaim: See above.
        on_rescale: See above.
        on_checkpoint_attempt: See above.
        on_checkpoint_commit: See above.
        on_pe_failure: See above.
        on_pe_restart: See above.
        on_topology: See above.
        on_injection: See above.
        on_delivery: See above.

    Returns:
        A :class:`RuntimeSubscription`; call ``detach()`` to remove
        every registered callback at once.
    """
    wanted: List[Tuple[list, Optional[Callable[..., Any]]]] = [
        (system.elastic.barrier_listeners, on_barrier),
        (system.elastic.reroute_listeners, on_reroute),
        (system.elastic.reclaim_listeners, on_reclaim),
        (system.elastic.rescale_listeners, on_rescale),
        (system.checkpoints.attempt_listeners, on_checkpoint_attempt),
        (system.checkpoints.commit_listeners, on_checkpoint_commit),
        (system.sam.pe_failure_observers, on_pe_failure),
        (system.sam.pe_restart_observers, on_pe_restart),
        (system.sam.topology_observers, on_topology),
        (system.chaos.injection_listeners, on_injection),
        (system.transport.delivery_taps, on_delivery),
    ]
    registrations: List[Tuple[list, Callable]] = []
    for registry, callback in wanted:
        if callback is not None:
            registry.append(callback)
            registrations.append((registry, callback))
    return RuntimeSubscription(registrations)
