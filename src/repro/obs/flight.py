"""The flight recorder: bounded span rings and byte-stable dumps.

The recorder keeps the most recent spans in bounded per-job ring
buffers (plus one system ring for spans that belong to no job), so a
long campaign never grows memory without bound.  When something goes
wrong — a PE crash, a stuck rescale, a fuzz-oracle violation — the hub
asks for a :meth:`FlightRecorder.dump`, which snapshots the relevant
rings into a :class:`FlightDump` whose :meth:`~FlightDump.render` is
deterministic and byte-stable for a fixed seed: entries sort on sim
time, every float formats with fixed precision, and no wall-clock
value ever enters a dump.  The text renderer in
:mod:`repro.tools.timeline` turns a dump into a lane view.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.trace import Span

#: ring key of spans without a ``job`` attribute
SYSTEM_RING = ""


def _format_attr(value: Any) -> str:
    """Render one attribute value deterministically for dump lines."""
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


class FlightDump:
    """One immutable snapshot taken by the flight recorder.

    Attributes:
        reason: Why the dump was taken (``pe_crash:pe3``,
            ``oracle_violation:state_conservation``, ...).
        time: Sim time of the dump.
        job_id: The job the dump was filtered to (None: all rings).
        entries: The snapshot's spans, sorted by time.
    """

    __slots__ = ("reason", "time", "job_id", "entries")

    def __init__(
        self,
        reason: str,
        time: float,
        job_id: Optional[str],
        entries: Tuple[Span, ...],
    ) -> None:
        self.reason = reason
        self.time = time
        self.job_id = job_id
        self.entries = entries

    def render(self) -> str:
        """The dump as deterministic, byte-stable text.

        One header block (reason, scope, sim time, entry count) then
        one line per span: ``[start .. end] kind name k=v ...`` with all
        times in fixed-precision sim seconds.

        Returns:
            The rendered timeline artifact (trailing newline included).
        """
        lines = [
            "# flight-recorder dump",
            f"# reason: {self.reason}",
            f"# scope: {self.job_id if self.job_id is not None else 'all'}",
            f"# sim_time: {self.time:.6f}",
            f"# entries: {len(self.entries)}",
        ]
        for span in self.entries:
            attrs = " ".join(
                f"{k}={_format_attr(v)}" for k, v in span.attrs
            )
            line = (
                f"[{span.start:12.6f} .. {span.end:12.6f}] "
                f"{span.kind:<7} {span.name}"
            )
            lines.append(f"{line} {attrs}" if attrs else line)
        return "\n".join(lines) + "\n"


class FlightRecorder:
    """Bounded per-job rings of recent spans, dumpable on incident."""

    def __init__(self, capacity: int = 2048, max_dumps: int = 16) -> None:
        """Create the recorder.

        Args:
            capacity: Spans retained per ring (per job, plus one system
                ring); older spans fall off the back.
            max_dumps: Dumps retained in :attr:`dumps` (older dumps fall
                off, keeping crash storms bounded).
        """
        self.capacity = capacity
        self._rings: Dict[str, Deque[Span]] = {}
        #: dumps taken so far, oldest first, bounded by ``max_dumps``
        self.dumps: Deque[FlightDump] = deque(maxlen=max_dumps)

    def record(self, span: Span) -> None:
        """Append one span to its job's ring (a tracer sink)."""
        key = span.attr("job", SYSTEM_RING)
        ring = self._rings.get(key)
        if ring is None:
            ring = self._rings[key] = deque(maxlen=self.capacity)
        ring.append(span)

    def span_count(self, job_id: Optional[str] = None) -> int:
        """Spans currently retained (one job's ring, or all rings)."""
        if job_id is not None:
            ring = self._rings.get(job_id)
            return len(ring) if ring is not None else 0
        return sum(len(ring) for ring in self._rings.values())

    def dump(
        self, reason: str, time: float, job_id: Optional[str] = None
    ) -> FlightDump:
        """Snapshot the rings into a dump and retain it.

        Args:
            reason: Incident label recorded in the dump header.
            time: Sim time of the dump.
            job_id: Restrict to one job's ring plus the system ring
                (None: every ring).

        Returns:
            The retained :class:`FlightDump`.
        """
        selected: List[Span] = []
        if job_id is None:
            for key in sorted(self._rings):
                selected.extend(self._rings[key])
        else:
            for key in (SYSTEM_RING, job_id):
                ring = self._rings.get(key)
                if ring is not None:
                    selected.extend(ring)
        selected.sort(
            key=lambda s: (s.start, s.end, s.kind, s.name, repr(s.attrs))
        )
        dump = FlightDump(reason, time, job_id, tuple(selected))
        self.dumps.append(dump)
        return dump
