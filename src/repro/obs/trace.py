"""Sim-time spans: the tracing primitive of :mod:`repro.obs`.

A :class:`Span` is an allocation-light record of one timed thing that
happened on the simulation clock — a data-plane hop (``emit`` ->
``transport`` -> ``process``) or a control-plane operation (a rescale
barrier phase, a checkpoint attempt, a chaos injection, an ORCA
event's queue residence).  Point events are spans whose ``end`` equals
their ``start``.

The :class:`Tracer` is deliberately thin: it stamps spans and hands
them to registered sinks (the flight recorder, tests).  *Whether* a
tuple is traced at all is decided once at tuple creation by
:meth:`Tracer.sample` — a counter-based every-Nth decision, so tracing
never consults randomness and a traced run stays byte-deterministic.
When data tracing is off the hot path pays a single ``None`` check and
no Span is ever constructed.
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple

#: span kind of data-plane hops (tuple lifecycle)
DATA = "data"
#: span kind of control-plane operations (rescale, checkpoint, chaos, orca)
CONTROL = "control"


class Span:
    """One traced operation on the sim clock.

    Attributes:
        name: Operation name (``process``, ``rescale:quiesce``, ...).
        kind: :data:`DATA` or :data:`CONTROL`.
        start: Sim time the operation began.
        end: Sim time it ended (== ``start`` for point events).
        attrs: Sorted ``(key, value)`` pairs of attributes.
    """

    __slots__ = ("name", "kind", "start", "end", "attrs")

    def __init__(
        self,
        name: str,
        kind: str,
        start: float,
        end: float,
        attrs: Tuple[Tuple[str, Any], ...] = (),
    ) -> None:
        self.name = name
        self.kind = kind
        self.start = start
        self.end = end
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Seconds between start and end."""
        return self.end - self.start

    def attr(self, key: str, default: Any = None) -> Any:
        """Look up one attribute value by key."""
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = " ".join(f"{k}={v}" for k, v in self.attrs)
        return (
            f"Span({self.name} [{self.start:.6f}..{self.end:.6f}] {inner})"
        )


class Tracer:
    """Stamps :class:`Span` objects and fans them out to sinks."""

    __slots__ = ("sinks", "sample_every", "_tuple_count")

    def __init__(self, sample_every: int = 1) -> None:
        """Create a tracer.

        Args:
            sample_every: Trace every Nth newly created tuple (1 traces
                all of them; the counter is deterministic, not random).
        """
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        #: callbacks receiving every recorded span, in registration order
        self.sinks: List[Callable[[Span], None]] = []
        self.sample_every = sample_every
        self._tuple_count = 0

    def sample(self) -> bool:
        """Decide (deterministically) whether the next tuple is traced."""
        self._tuple_count += 1
        return self._tuple_count % self.sample_every == 0

    def record(
        self,
        name: str,
        kind: str,
        start: float,
        end: float,
        **attrs: Any,
    ) -> Span:
        """Record one span and deliver it to every sink.

        Args:
            name: Operation name.
            kind: :data:`DATA` or :data:`CONTROL`.
            start: Sim time the operation began.
            end: Sim time it ended.
            **attrs: Span attributes (sorted into the span).

        Returns:
            The recorded span.
        """
        span = Span(name, kind, start, end, tuple(sorted(attrs.items())))
        for sink in self.sinks:
            sink(span)
        return span

    def event(self, name: str, time: float, kind: str = CONTROL, **attrs: Any) -> Span:
        """Record a point event (a zero-duration span) at ``time``."""
        return self.record(name, kind, time, time, **attrs)
