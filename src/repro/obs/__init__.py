"""repro.obs — sim-time tracing, metrics registry, flight recorder.

The observability layer of the simulated middleware, always
constructed by :class:`~repro.runtime.system.SystemS` as
``system.obs``:

* :mod:`repro.obs.trace` — allocation-light :class:`Span` objects for
  data-plane hops and control-plane operations, sampled
  deterministically so traced runs stay byte-stable;
* :mod:`repro.obs.metrics` — a labeled counter/gauge/histogram
  registry with Prometheus-text and JSONL renders;
* :mod:`repro.obs.naming` — the canonical ``repro_*`` metric-name
  catalog and the legacy-name compatibility shim SRM queries use;
* :mod:`repro.obs.flight` — bounded per-job span rings that dump
  deterministic timeline artifacts on PE crash, stuck rescale, or
  fuzz-oracle violation;
* :mod:`repro.obs.listeners` — :func:`subscribe_runtime`, the one
  front door to every runtime instrumentation tap;
* :mod:`repro.obs.health` — the always-on health plane: sim-time
  sliding windows, per-link/per-region lag watermarks, and SLO
  burn-rate alerting (``system.obs.health``);
* :mod:`repro.obs.slo` — declarative :class:`Slo` objectives and the
  multi-window burn-rate classifier;
* :mod:`repro.obs.detect` — deterministic bottleneck attribution over
  per-link pressure samples;
* :mod:`repro.obs.hub` — the :class:`ObsHub` wiring all of the above
  to a running system.

See ``docs/observability.md`` for the span model, the metric catalog,
the health plane, and the flight-recorder format; ``tools/timeline.py``
renders dumps as lane views and ``tools/healthwatch.py`` renders health
snapshots as a dashboard.
"""

from repro.obs.detect import Bottleneck, BottleneckDetector, PressureSample
from repro.obs.flight import FlightDump, FlightRecorder
from repro.obs.health import (
    HealthMonitor,
    HealthSnapshot,
    LinkHealth,
    SlidingWindow,
)
from repro.obs.hub import ObsHub
from repro.obs.listeners import RuntimeSubscription, subscribe_runtime
from repro.obs.slo import HealthAlert, Slo
from repro.obs.metrics import (
    MetricsRegistry,
    ObsCounter,
    ObsGauge,
    ObsHistogram,
)
from repro.obs.naming import (
    CANONICAL_BY_LEGACY,
    canonical_metric_name,
    legacy_metric_name,
    sanitize_metric_name,
)
from repro.obs.trace import CONTROL, DATA, Span, Tracer

__all__ = [
    "Bottleneck",
    "BottleneckDetector",
    "CANONICAL_BY_LEGACY",
    "CONTROL",
    "DATA",
    "FlightDump",
    "FlightRecorder",
    "HealthAlert",
    "HealthMonitor",
    "HealthSnapshot",
    "LinkHealth",
    "MetricsRegistry",
    "ObsCounter",
    "ObsGauge",
    "ObsHistogram",
    "ObsHub",
    "PressureSample",
    "RuntimeSubscription",
    "SlidingWindow",
    "Slo",
    "Span",
    "Tracer",
    "canonical_metric_name",
    "legacy_metric_name",
    "sanitize_metric_name",
    "subscribe_runtime",
]
