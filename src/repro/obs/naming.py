"""Canonical (namespaced) metric names and the legacy-name shim.

The runtime grew its metric vocabulary incrementally: PEs and operators
push camelCase names inherited from the paper (``nTuplesProcessed``,
``queueSize``), the chaos engine publishes ``chaos*`` gauges, and each
looks nothing like the ``repro_*`` Prometheus style the observability
layer exports.  This module is the single place that drift is resolved:

* :data:`CANONICAL_BY_LEGACY` maps every built-in legacy name to its
  namespaced canonical form (``stateBytes`` -> ``repro_pe_state_bytes``);
* :func:`canonical_metric_name` translates *any* name (catalog hit or
  sanitized fallback) for export;
* :func:`legacy_metric_name` answers the reverse question so SRM
  queries written against canonical names still resolve samples stored
  under legacy names (see :meth:`repro.runtime.srm.SRM.metric_value`).

SRM *storage* deliberately keeps the legacy names: orchestrator scope
filters and every existing benchmark scraper match on them.  Only the
query shim and the export layer speak canonical.
"""

from __future__ import annotations

import re

#: legacy (stored) name -> canonical namespaced name.  The catalog covers
#: every built-in PE/operator metric, the gauges
#: :meth:`~repro.runtime.pe.PERuntime.update_queue_metrics` pushes, and
#: the chaos engine's scorecard gauges.
CANONICAL_BY_LEGACY = {
    # operator / PE built-ins (repro.spl.metrics)
    "nTuplesProcessed": "repro_tuples_processed_total",
    "nTuplesSubmitted": "repro_tuples_submitted_total",
    "nTupleBytesProcessed": "repro_tuple_bytes_processed_total",
    "nPunctsProcessed": "repro_puncts_processed_total",
    "nFinalPunctsProcessed": "repro_final_puncts_processed_total",
    "nRestarts": "repro_pe_restarts_total",
    # collection-time gauges (repro.runtime.pe)
    "queueSize": "repro_queue_depth",
    "stateBytes": "repro_pe_state_bytes",
    "nStateKeys": "repro_pe_state_keys",
    "checkpointLag": "repro_pe_checkpoint_lag_seconds",
    # chaos engine / scorecard gauges (repro.chaos)
    "chaosInjections": "repro_chaos_injections",
    "chaosActiveLinkFaults": "repro_chaos_active_link_faults",
    "chaosTuplesLost": "repro_chaos_tuples_lost",
    "chaosDuplicates": "repro_chaos_duplicates",
    "chaosStateRecovery": "repro_chaos_state_recovery",
    "chaosUnrecovered": "repro_chaos_unrecovered_faults",
    "chaosMaxRecovery": "repro_chaos_max_recovery_seconds",
    "chaosOrcaLatencyMax": "repro_chaos_orca_latency_max_seconds",
}

#: canonical name -> legacy (stored) name; the query-shim direction.
LEGACY_BY_CANONICAL = {v: k for k, v in CANONICAL_BY_LEGACY.items()}

_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")
_INVALID_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Turn an arbitrary metric name into a Prometheus-safe identifier.

    camelCase humps become underscores, any character outside the
    Prometheus name alphabet becomes ``_``, and a leading digit is
    prefixed.  Deterministic; used for custom metric names the catalog
    does not know.

    Args:
        name: The raw metric name.

    Returns:
        A name matching ``[a-zA-Z_:][a-zA-Z0-9_:]*``.
    """
    snake = _CAMEL_RE.sub("_", name).lower()
    cleaned = _INVALID_RE.sub("_", snake)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def canonical_metric_name(name: str) -> str:
    """The namespaced export name of one metric.

    Catalog names translate exactly; unknown (custom) names are
    sanitized and prefixed so every exported series lives under the
    ``repro_`` namespace.

    Args:
        name: A stored (legacy or custom) metric name.

    Returns:
        The canonical ``repro_*`` name.
    """
    hit = CANONICAL_BY_LEGACY.get(name)
    if hit is not None:
        return hit
    if name.startswith("chaosInjections."):
        kind = sanitize_metric_name(name.split(".", 1)[1])
        return f"repro_chaos_injections_{kind}"
    sanitized = sanitize_metric_name(name)
    if sanitized.startswith("repro_"):
        return sanitized
    return f"repro_{sanitized}"


def legacy_metric_name(name: str) -> str:
    """The stored name a canonical query should resolve against.

    Args:
        name: A canonical ``repro_*`` name (anything else passes
            through unchanged).

    Returns:
        The legacy stored name when the catalog knows it, else ``name``.
    """
    return LEGACY_BY_CANONICAL.get(name, name)
