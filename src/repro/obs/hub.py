"""The observability hub: one object wiring tracer, metrics, recorder.

A :class:`SystemS` always constructs an :class:`ObsHub` and attaches it
(``system.obs``).  Attachment has two tiers:

* **Control plane, always on** — the hub subscribes to every runtime
  instrumentation tap through
  :func:`repro.obs.listeners.subscribe_runtime` and records rescale
  barrier phases, channel mask/unmask reroutes (with mask-time
  attribution), state reclaims, checkpoint attempts, chaos injections,
  and PE crash/restart transitions as control spans and registry
  metrics.  These are rare events; the cost is negligible.
* **Data plane, gated by ``SystemConfig.trace_enabled``** — per-tuple
  spans (emit -> transport -> process with per-operator latency
  attribution) and the kernel event tap.  When tracing is off the hot
  paths pay a single ``None`` check and nothing else; when on, tuples
  are sampled deterministically every
  ``SystemConfig.trace_sample_every``-th creation.

Dumps: the flight recorder fires automatically on PE crash (tracing
on), on a FAILED rescale, and — via the fuzz harness — on any oracle
violation.  All artifacts (Prometheus text, JSONL, timeline renders)
are byte-stable for a fixed seed because every value derives from the
sim clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.obs.flight import FlightDump, FlightRecorder
from repro.obs.health import HealthMonitor
from repro.obs.listeners import RuntimeSubscription, subscribe_runtime
from repro.obs.metrics import MetricsRegistry, ObsCounter, ObsHistogram
from repro.obs.naming import canonical_metric_name
from repro.obs.trace import CONTROL, DATA, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.engine import ChaosInjection
    from repro.checkpoint.service import CheckpointRecord
    from repro.elastic.controller import (
        BarrierEvent,
        ChannelReroute,
        RescaleOperation,
        StateReclaim,
    )
    from repro.runtime.pe import PERuntime
    from repro.runtime.system import SystemS
    from repro.sim.kernel import Kernel, ScheduledEvent


def _label_family(label: str) -> str:
    """Collapse a kernel event label to its stable family name.

    ``transport->work__c0[0]`` -> ``transport``; ``pe3-opwork`` ->
    ``pe-opwork``; digits are stripped so per-instance labels share one
    counter series.
    """
    if not label:
        return "unlabeled"
    head = label.split("->", 1)[0].split("[", 1)[0]
    family = "".join(ch for ch in head if not ch.isdigit())
    return family or "unlabeled"


class ObsHub:
    """Tracer + metrics registry + flight recorder, attached to a system."""

    def __init__(
        self,
        kernel: "Kernel",
        trace_enabled: bool = False,
        trace_sample_every: int = 1,
        flight_capacity: int = 2048,
        health_interval: float = 0.5,
        health_short_window: float = 5.0,
        health_long_window: float = 30.0,
    ) -> None:
        """Create the hub (call :meth:`attach` to wire it to a system).

        Args:
            kernel: The simulation kernel (clock source, event tap host).
            trace_enabled: Turn on data-plane tuple tracing and the
                kernel event tap.
            trace_sample_every: Trace every Nth created tuple.
            flight_capacity: Flight-recorder ring capacity per job.
            health_interval: Health-plane evaluation tick, sim-seconds
                (``<= 0`` disables the always-on health plane).
            health_short_window: Burn-rate confirmation window.
            health_long_window: Burn-rate sustain window.
        """
        self.kernel = kernel
        self.trace_enabled = trace_enabled
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(sample_every=trace_sample_every)
        self.flight = FlightRecorder(capacity=flight_capacity)
        self.tracer.sinks.append(self.flight.record)
        #: the always-on health plane (windows, watermarks, SLO alerts);
        #: it registers no metric series and emits no spans on its own,
        #: so historical expositions stay byte-identical
        self.health = HealthMonitor(
            kernel,
            interval=health_interval,
            short_window=health_short_window,
            long_window=health_long_window,
        )
        self.health.alert_listeners.append(self._on_health_alert)
        self._system: Optional["SystemS"] = None
        self._subscription: Optional[RuntimeSubscription] = None
        #: (job, region) -> quiesce time of the in-flight rescale
        self._quiesce_open: Dict[Tuple[str, str], float] = {}
        #: (job, region, channel) -> mask time of a masked channel
        self._mask_open: Dict[Tuple[str, int, str], float] = {}
        #: kernel label -> family (memoized; labels repeat heavily)
        self._families: Dict[str, str] = {}
        #: family -> its counter series (hot-path cache)
        self._kernel_counters: Dict[str, ObsCounter] = {}
        #: operator full name -> tuple-latency histogram (hot-path cache)
        self._latency_hists: Dict[str, ObsHistogram] = {}
        #: transport batch-size histogram, created lazily on the first
        #: flush — eager creation would add an empty series to every
        #: unbatched system's exposition and break artifact byte-stability
        self._batch_hist: Optional[ObsHistogram] = None
        #: reliable-delivery event kind -> counter, created lazily on the
        #: first event for the same byte-stability reason: a best-effort
        #: system never fires the hook and renders the historical
        #: exposition unchanged
        self._reliability_counters: Dict[str, ObsCounter] = {}
        #: replay-buffer gauge triple, created lazily at the first scrape
        #: that sees a non-empty exactly-once replay buffer (best-effort
        #: and at-least-once systems render unchanged)
        self._replay_gauges: Optional[Tuple[object, object, object]] = None
        #: links the replay gauges have reported (so drained links read 0)
        self._replay_links: set = set()

    # -- wiring --------------------------------------------------------------

    def attach(self, system: "SystemS") -> None:
        """Subscribe the hub to a system's instrumentation taps.

        Control-plane listeners always attach; the transport/operator
        data-plane hooks and the kernel event tap only when
        ``trace_enabled`` (so a tracing-off hot path stays one ``None``
        check).

        Args:
            system: The system to observe.
        """
        self._system = system
        self._subscription = subscribe_runtime(
            system,
            on_barrier=self._on_barrier,
            on_reroute=self._on_reroute,
            on_reclaim=self._on_reclaim,
            on_rescale=self._on_rescale,
            on_checkpoint_attempt=self._on_checkpoint_attempt,
            on_pe_failure=self._on_pe_failure,
            on_pe_restart=self._on_pe_restart,
            on_injection=self._on_injection,
        )
        # batch-size observations are control-plane (a counter bump per
        # *batch*, not per tuple), so the hook attaches regardless of
        # trace_enabled; unbatched systems never flush, never call it
        system.transport.batch_observer = self.record_batch_flush
        # reliable-delivery events (retransmit/ack/dedup/replay) are
        # control-plane too: rare, and only ever fired by the reliable
        # modes — a best-effort transport never calls the hook
        system.transport.reliability_observer = self.record_reliability_event
        # the health plane is always on: a kernel tick samples transport
        # pressure, and the ack round-trip tap reports through one
        # None-checked hook (only reliable modes ever fire it)
        system.transport.pressure_observer = self.health.on_transport_pressure
        self.health.attach(system)
        if self.trace_enabled:
            system.transport.obs = self
            self.kernel.event_tap = self._on_kernel_event

    def detach(self) -> None:
        """Unsubscribe from every tap and unhook the data plane."""
        if self._subscription is not None:
            self._subscription.detach()
            self._subscription = None
        if self._system is not None:
            if self._system.transport.obs is self:
                self._system.transport.obs = None
            if self._system.transport.batch_observer == self.record_batch_flush:
                self._system.transport.batch_observer = None
            if (
                self._system.transport.reliability_observer
                == self.record_reliability_event
            ):
                self._system.transport.reliability_observer = None
            if (
                self._system.transport.pressure_observer
                == self.health.on_transport_pressure
            ):
                self._system.transport.pressure_observer = None
            if self.kernel.event_tap == self._on_kernel_event:
                self.kernel.event_tap = None
        self.health.detach()
        self._system = None

    # -- data plane (called only for traced tuples / when tracing on) --------

    def sample_tuple(self) -> bool:
        """Deterministic every-Nth sampling decision for a new tuple."""
        return self.tracer.sample()

    def record_emit(
        self, op: str, pe_id: Optional[str], job_id: str, time: float
    ) -> None:
        """Record a traced tuple's creation point."""
        self.tracer.event(
            "emit", time, kind=DATA, op=op, pe=pe_id or "", job=job_id
        )

    def record_transport(
        self,
        op: str,
        src_key: str,
        dst_pe_id: str,
        job_id: str,
        start: float,
        end: float,
    ) -> None:
        """Record a traced tuple's transport hop (send -> delivery)."""
        self.tracer.record(
            "transport",
            DATA,
            start,
            end,
            op=op,
            src=src_key,
            dst=dst_pe_id,
            job=job_id,
        )

    def record_process(
        self,
        op: str,
        pe_id: str,
        job_id: str,
        created_at: float,
        now: float,
    ) -> None:
        """Record a traced tuple's arrival at one operator.

        The span covers creation -> processing, which in a simulator
        with instantaneous operator work *is* the per-operator latency
        attribution: the observation lands in the
        ``repro_tuple_latency_seconds{op=...}`` histogram.
        """
        self.tracer.record(
            "process", DATA, created_at, now, op=op, pe=pe_id, job=job_id
        )
        hist = self._latency_hists.get(op)
        if hist is None:
            hist = self._latency_hists[op] = self.metrics.histogram(
                "repro_tuple_latency_seconds",
                {"op": op},
                help_text="creation-to-processing latency of sampled tuples",
            )
        hist.observe(now - created_at)

    def record_batch_flush(self, size: int) -> None:
        """Record the member count of one flushed transport batch.

        Observations land in the ``repro_transport_batch_size``
        histogram.  The series is created lazily on the first flush so
        systems that never batch (``batch_max_size`` 1, the default)
        render byte-identical expositions with or without this hook.
        """
        hist = self._batch_hist
        if hist is None:
            hist = self._batch_hist = self.metrics.histogram(
                "repro_transport_batch_size",
                help_text="tuples per flushed transport batch",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, float("inf")),
            )
        hist.observe(size)

    def record_reliability_event(
        self, kind: str, count: int, op: str, attempt: int, time: float
    ) -> None:
        """Record one reliable-delivery transport event.

        ``kind`` is one of ``retransmit``, ``ack``,
        ``duplicate_suppressed``, ``replay``, ``ack_dropped``,
        ``replay_stall``; counts land in the matching
        ``repro_transport_*_total`` counter (created lazily so
        best-effort expositions stay byte-identical).  Retransmits are
        additionally recorded as control-plane retry events carrying the
        attempt number, so a flight-recorder timeline shows every backoff
        step of a struggling link.
        """
        names = {
            "retransmit": "repro_transport_retransmissions_total",
            "ack": "repro_transport_acks_total",
            "duplicate_suppressed": "repro_transport_duplicates_suppressed_total",
            "replay": "repro_transport_replays_total",
            "ack_dropped": "repro_transport_acks_dropped_total",
            "replay_stall": "repro_transport_replay_stalls_total",
        }
        helps = {
            "retransmit": "wire units re-sent after an ack timeout",
            "ack": "delivery acknowledgements received by senders",
            "duplicate_suppressed": (
                "arrivals suppressed by the exactly-once receiver watermark"
            ),
            "replay": "units replayed from the buffer after a PE restart",
            "ack_dropped": "acknowledgements lost to reverse-link faults",
            "replay_stall": (
                "items parked by replay-buffer byte-cap backpressure"
            ),
        }
        counter = self._reliability_counters.get(kind)
        if counter is None:
            counter = self._reliability_counters[kind] = self.metrics.counter(
                names[kind], help_text=helps[kind]
            )
        counter.inc(count)
        if kind == "retransmit":
            self.record_control_event(
                "transport:retry", time, op=op, attempt=attempt
            )

    def record_orca_event(
        self, orca_id: str, event_type: str, enqueued_at: float, now: float
    ) -> None:
        """Record one delivered ORCA event's queue residence as a span."""
        self.tracer.record(
            f"orca:{event_type}", CONTROL, enqueued_at, now, orca=orca_id
        )

    def _on_kernel_event(self, event: "ScheduledEvent") -> None:
        """Kernel event tap: count executed callbacks per label family."""
        label = event.label
        family = self._families.get(label)
        if family is None:
            family = self._families[label] = _label_family(label)
        counter = self._kernel_counters.get(family)
        if counter is None:
            counter = self._kernel_counters[family] = self.metrics.counter(
                "repro_kernel_events_total",
                {"family": family},
                help_text="kernel callbacks executed per label family",
            )
        counter.inc()

    # -- control plane -------------------------------------------------------

    def record_control_event(self, name: str, time: float, **attrs: Any) -> None:
        """Record an ad-hoc control-plane point event (chaos, tools)."""
        self.tracer.event(name, time, kind=CONTROL, **attrs)

    def _on_health_alert(self, alert) -> None:
        # a raised SLO alert is a control-plane incident: span it so
        # flight dumps show health degradation next to the crashes and
        # rescales it predicts (fires only when SLOs are registered, so
        # SLO-free systems keep their artifacts byte-identical)
        self.record_control_event(
            f"health:{alert.severity}",
            alert.time,
            slo=alert.slo,
            signal=alert.signal,
            bottleneck=alert.bottleneck or "-",
        )

    def _on_barrier(self, event: "BarrierEvent") -> None:
        self.tracer.event(
            f"rescale:{event.phase}",
            event.time,
            job=event.job_id,
            region=event.region,
            epoch=event.epoch,
        )
        self.metrics.counter(
            "repro_rescale_barriers_total",
            {"phase": event.phase},
            help_text="rescale protocol phase transitions",
        ).inc()
        key = (event.job_id, event.region)
        if event.phase == "quiesce":
            self._quiesce_open[key] = event.time
        elif event.phase in ("resume", "failed"):
            started = self._quiesce_open.pop(key, None)
            if started is not None:
                self.tracer.record(
                    "rescale",
                    CONTROL,
                    started,
                    event.time,
                    job=event.job_id,
                    region=event.region,
                    outcome=event.phase,
                )
                self.metrics.histogram(
                    "repro_rescale_duration_seconds",
                    {"region": event.region},
                    help_text="quiesce-to-resume duration of rescales",
                ).observe(event.time - started)

    def _on_reroute(self, reroute: "ChannelReroute") -> None:
        action = "mask" if reroute.masked else "unmask"
        self.tracer.event(
            f"reroute:{action}",
            reroute.time,
            job=reroute.job_id,
            region=reroute.region,
            channel=reroute.channel,
            pe=reroute.pe_id,
        )
        self.metrics.counter(
            "repro_channel_reroutes_total",
            {"action": action},
            help_text="splitter mask/unmask reroutes of region channels",
        ).inc()
        key = (reroute.job_id, reroute.channel, reroute.region)
        if reroute.masked:
            self._mask_open[key] = reroute.time
        else:
            masked_at = self._mask_open.pop(key, None)
            if masked_at is not None:
                self.tracer.record(
                    "channel_masked",
                    CONTROL,
                    masked_at,
                    reroute.time,
                    job=reroute.job_id,
                    region=reroute.region,
                    channel=reroute.channel,
                )
                self.metrics.histogram(
                    "repro_region_mask_time_seconds",
                    {"region": reroute.region},
                    help_text="mask-to-unmask time of rerouted channels",
                ).observe(reroute.time - masked_at)

    def _on_reclaim(self, reclaim: "StateReclaim") -> None:
        self.tracer.event(
            "state:reclaim",
            reclaim.time,
            job=reclaim.job_id,
            region=reclaim.region,
            pe=reclaim.pe_id,
            keys=reclaim.keys_reclaimed,
            epoch=reclaim.epoch,
        )
        self.metrics.counter(
            "repro_state_keys_reclaimed_total",
            help_text="keyed entries returned to unmasked channels",
        ).inc(reclaim.keys_reclaimed)

    def _on_rescale(self, op: "RescaleOperation") -> None:
        state = getattr(op.state, "name", str(op.state)).lower()
        self.metrics.counter(
            "repro_rescales_total",
            {"state": state},
            help_text="finished rescale operations by outcome",
        ).inc()
        if state == "failed":
            self.flight.dump(
                f"stuck_rescale:{op.region}", self.kernel.now, job_id=op.job_id
            )

    def _on_checkpoint_attempt(self, record: "CheckpointRecord") -> None:
        outcome = "commit" if record.committed else "torn"
        self.tracer.event(
            f"checkpoint:{outcome}",
            record.time,
            job=record.job_id,
            pe=record.pe_id,
            epoch=record.epoch,
        )
        self.metrics.counter(
            "repro_checkpoint_attempts_total",
            {"outcome": outcome},
            help_text="checkpoint attempts by outcome",
        ).inc()
        if record.committed:
            self.metrics.histogram(
                "repro_checkpoint_bytes",
                help_text="bytes written per committed checkpoint",
                buckets=(64, 256, 1024, 4096, 16384, 65536, float("inf")),
            ).observe(record.bytes_written)

    def _on_pe_failure(self, pe: "PERuntime", reason: str) -> None:
        self.tracer.event(
            "pe:crash",
            self.kernel.now,
            job=pe.job.job_id,
            pe=pe.pe_id,
            reason=reason,
        )
        self.metrics.counter(
            "repro_pe_crashes_total", help_text="PE crash notifications"
        ).inc()
        if self.trace_enabled:
            self.flight.dump(
                f"pe_crash:{pe.pe_id}", self.kernel.now, job_id=pe.job.job_id
            )

    def _on_pe_restart(self, pe: "PERuntime") -> None:
        self.tracer.event(
            "pe:restart", self.kernel.now, job=pe.job.job_id, pe=pe.pe_id
        )
        self.metrics.counter(
            "repro_pe_restarts_completed_total",
            help_text="completed PE restarts",
        ).inc()

    def _on_injection(self, injection: "ChaosInjection") -> None:
        self.tracer.event(
            f"chaos:{injection.kind}",
            injection.time,
            job=injection.job_id or "",
            target=injection.target,
            step=injection.step_index,
        )
        self.metrics.counter(
            "repro_chaos_injections_total",
            {"kind": injection.kind},
            help_text="fired chaos perturbations by kind",
        ).inc()

    # -- export --------------------------------------------------------------

    def scrape_srm(self) -> int:
        """Mirror every SRM sample into the registry as a canonical gauge.

        Sample names translate through
        :func:`repro.obs.naming.canonical_metric_name`; labels carry
        the SRM storage key (job, pe, operator, port).

        Returns:
            The number of samples mirrored.
        """
        system = self._system
        if system is None:
            return 0
        samples = system.srm.get_metrics()
        for sample in samples:
            labels = {"job": sample.job_id, "pe": sample.pe_id}
            if sample.operator is not None:
                labels["operator"] = sample.operator
            if sample.port is not None:
                labels["port"] = str(sample.port)
            self.metrics.gauge(
                canonical_metric_name(sample.name),
                labels,
                help_text="mirrored SRM sample",
            ).set(sample.value)
        self.scrape_transport()
        return len(samples)

    def scrape_transport(self) -> None:
        """Refresh transport-level gauges (exactly-once replay buffers).

        The ROADMAP flags the replay buffer as unbounded between epoch
        commits; these per-link gauges make that growth observable:
        ``repro_transport_replay_buffer_items`` / ``_bytes`` track the
        retained units above each link's truncation floor, and
        ``repro_transport_replay_truncated_seq`` tracks the floor itself
        (so a shrink at epoch commit shows as items down, floor up).
        The gauge family is created lazily at the first scrape that sees
        a non-empty replay buffer: best-effort and at-least-once systems
        render their historical expositions byte-identically.
        """
        system = self._system
        if system is None:
            return
        plane = system.transport.reliability
        if plane is None:
            return
        if self._replay_gauges is None and not plane.replay_buffer:
            return
        if self._replay_gauges is None:
            self._replay_gauges = (
                lambda labels: self.metrics.gauge(
                    "repro_transport_replay_buffer_items",
                    labels,
                    help_text="exactly-once units retained for replay",
                ),
                lambda labels: self.metrics.gauge(
                    "repro_transport_replay_buffer_bytes",
                    labels,
                    help_text="payload bytes retained for replay",
                ),
                lambda labels: self.metrics.gauge(
                    "repro_transport_replay_truncated_seq",
                    labels,
                    help_text="link seq the replay buffer truncated to",
                ),
            )
        items_gauge, bytes_gauge, floor_gauge = self._replay_gauges
        self._replay_links |= set(plane.replay_buffer)
        self._replay_links |= set(plane.truncated_to)
        for link in sorted(self._replay_links):
            labels = {"src": link[0] or "-", "dst": link[1]}
            retained = plane.replay_buffer.get(link, {})
            items = sum(e.count for e in retained.values())
            size = sum(
                getattr(e.payload, "size_bytes", 0)
                for e in retained.values()
            )
            items_gauge(labels).set(items)
            bytes_gauge(labels).set(size)
            floor_gauge(labels).set(plane.truncated_to.get(link, 0))

    def render_prometheus(self, scrape: bool = True) -> str:
        """The hub's metrics in Prometheus text format (byte-stable).

        Args:
            scrape: Refresh the SRM mirror first.

        Returns:
            The exposition text.
        """
        if scrape:
            self.scrape_srm()
        return self.metrics.render_prometheus()

    def render_jsonl(self, scrape: bool = True) -> str:
        """The hub's metrics as JSONL (includes histogram p50/p95/p99).

        Args:
            scrape: Refresh the SRM mirror first.

        Returns:
            Newline-delimited JSON.
        """
        if scrape:
            self.scrape_srm()
        return self.metrics.render_jsonl()

    def dump_flight(
        self, reason: str, job_id: Optional[str] = None
    ) -> FlightDump:
        """Take a flight-recorder dump now (manual trigger).

        Args:
            reason: Incident label for the dump header.
            job_id: Restrict to one job's ring (None: all).

        Returns:
            The retained dump.
        """
        return self.flight.dump(reason, self.kernel.now, job_id=job_id)
