"""Developer tooling around the simulated middleware.

Sec. 2.1 of the paper: "Both the System S runtime and its visualization
tools use the ADL for tasks such as starting the application and
reporting runtime information to the users."  This package provides the
visualization side: DOT and ASCII renderings of logical graphs, physical
deployments, and the live multi-application composition view of Fig. 10.
"""

from repro.tools.visualize import (
    render_application_ascii,
    render_application_dot,
    render_deployment_ascii,
    render_system_dot,
)

__all__ = [
    "render_application_ascii",
    "render_application_dot",
    "render_deployment_ascii",
    "render_system_dot",
]
