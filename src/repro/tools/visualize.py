"""Graph visualization: DOT and ASCII renderings.

Three views, mirroring the paper's figures:

* :func:`render_application_dot` — the *logical* view of one application
  (operators clustered by composite instance, as in Fig. 2);
* :func:`render_deployment_ascii` — the *physical* view of one job
  (hosts -> PEs -> operators, as in Fig. 3);
* :func:`render_system_dot` — the live multi-application view with
  dynamic import/export connections (what Fig. 10 shows expanding and
  contracting).

The DOT output is plain Graphviz text: deterministic, diff-friendly, and
renderable offline with ``dot -Tsvg``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.spl.application import Application
from repro.runtime.job import Job, JobState
from repro.runtime.system import SystemS


def _dot_id(name: str) -> str:
    return '"' + name.replace('"', "'") + '"'


def render_application_dot(app: Application) -> str:
    """Logical graph of one application, composites as clusters.

    Expanded parallel regions render as one cluster per region (splitter +
    merger + a nested sub-cluster per channel), so the fan-out/fan-in
    structure of a data-parallel region is visible at a glance.
    """
    lines: List[str] = [f"digraph {_dot_id(app.name)} {{", "  rankdir=LR;"]
    # parallel-region operators are grouped per region, not per composite
    by_region: Dict[str, List] = {}
    for name, spec in app.graph.operators.items():
        if spec.parallel_region is not None:
            by_region.setdefault(spec.parallel_region, []).append(spec)
    region_members = {
        spec.full_name for members in by_region.values() for spec in members
    }
    for region in sorted(by_region):
        lines.extend(_render_region_cluster(app, region, by_region[region]))
    # group the remaining operators by immediate composite instance
    by_composite: Dict[Optional[str], List[str]] = {}
    for name, spec in app.graph.operators.items():
        if name in region_members:
            continue
        by_composite.setdefault(spec.composite, []).append(name)
    cluster_index = 0
    for composite, members in sorted(
        by_composite.items(), key=lambda kv: (kv[0] is not None, kv[0] or "")
    ):
        if composite is None:
            for name in members:
                spec = app.graph.operators[name]
                lines.append(
                    f"  {_dot_id(name)} [label=\"{name}\\n({spec.kind})\"];"
                )
            continue
        instance = app.graph.composite_instances[composite]
        lines.append(f"  subgraph cluster_{cluster_index} {{")
        lines.append(
            f"    label=\"{composite} : {instance.kind}\"; style=dashed;"
        )
        for name in members:
            spec = app.graph.operators[name]
            lines.append(
                f"    {_dot_id(name)} [label=\"{name}\\n({spec.kind})\"];"
            )
        lines.append("  }")
        cluster_index += 1
    for edge in app.graph.edges:
        lines.append(
            f"  {_dot_id(edge.src.full_name)} -> {_dot_id(edge.dst.full_name)};"
        )
    lines.append("}")
    return "\n".join(lines)


def _render_region_cluster(app: Application, region: str, members: List) -> List[str]:
    """One parallel region: splitter/merger plus per-channel sub-clusters."""
    splitter = next(m for m in members if m.parallel_role == "splitter")
    width = int(splitter.params.get("width", 0))
    by_channel: Dict[int, List] = {}
    for member in members:
        if member.parallel_channel is not None:
            by_channel.setdefault(member.parallel_channel, []).append(member)
    lines = [f"  subgraph cluster_region_{region} {{"]
    lines.append(
        f"    label=\"parallel region {region} (width={width})\"; "
        "style=\"rounded,dashed\"; color=steelblue;"
    )
    for member in members:
        if member.parallel_role in ("splitter", "merger"):
            lines.append(
                f"    {_dot_id(member.full_name)} "
                f"[label=\"{member.name}\\n({member.kind})\", shape=trapezium];"
            )
    for channel in sorted(by_channel):
        lines.append(f"    subgraph cluster_region_{region}_c{channel} {{")
        lines.append(f"      label=\"channel {channel}\"; style=dotted;")
        for member in by_channel[channel]:
            lines.append(
                f"      {_dot_id(member.full_name)} "
                f"[label=\"{member.name}\\n({member.kind})\"];"
            )
        lines.append("    }")
    lines.append("  }")
    return lines


def render_application_ascii(app: Application) -> str:
    """Compact indented text view of the logical graph."""
    lines = [f"application {app.name}"]
    for name, spec in app.graph.operators.items():
        downstream = [
            f"{e.dst.full_name}[{e.dst_port}]"
            for e in app.graph.downstream_of(spec)
        ]
        where = f" in {spec.composite}" if spec.composite else ""
        arrow = f" -> {', '.join(downstream)}" if downstream else ""
        lines.append(f"  {name} ({spec.kind}){where}{arrow}")
    return "\n".join(lines)


def render_deployment_ascii(job: Job) -> str:
    """Physical view of one job: hosts -> PEs -> operators (Fig. 3)."""
    lines = [f"job {job.job_id} ({job.app_name}) [{job.state.value}]"]
    by_host: Dict[str, List] = {}
    for pe in job.pes:
        by_host.setdefault(pe.host_name or "?", []).append(pe)
    for host in sorted(by_host):
        lines.append(f"  host {host}")
        for pe in sorted(by_host[host], key=lambda p: p.index):
            lines.append(
                f"    PE {pe.index} ({pe.pe_id}) [{pe.state.value}]"
            )
            for op_name in pe.spec.operators:
                lines.append(f"      {op_name}")
    return "\n".join(lines)


def render_system_dot(system: SystemS, include_cancelled: bool = False) -> str:
    """The live multi-application composition view (Fig. 10).

    One cluster per running job; solid edges are intra-application
    streams, bold dashed edges are the dynamic import/export connections
    the runtime established between applications.
    """
    lines = ["digraph system {", "  rankdir=LR;", "  compound=true;"]
    jobs = [
        job
        for job in system.sam.jobs.values()
        if include_cancelled or job.state is JobState.RUNNING
    ]
    for index, job in enumerate(jobs):
        lines.append(f"  subgraph cluster_job{index} {{")
        lines.append(
            f"    label=\"{job.app_name} ({job.job_id})\"; style=rounded;"
        )
        graph = job.compiled.application.graph
        for name, spec in graph.operators.items():
            node = f"{job.job_id}.{name}"
            lines.append(
                f"    {_dot_id(node)} [label=\"{name}\\n({spec.kind})\"];"
            )
        for edge in graph.edges:
            src = f"{job.job_id}.{edge.src.full_name}"
            dst = f"{job.job_id}.{edge.dst.full_name}"
            lines.append(f"    {_dot_id(src)} -> {_dot_id(dst)};")
        lines.append("  }")
    # dynamic import/export connections across jobs
    for export, import_ in system.import_export.connections():
        src = f"{export.job.job_id}.{export.op_name}"
        dst = f"{import_.job.job_id}.{import_.op_name}"
        lines.append(
            f"  {_dot_id(src)} -> {_dot_id(dst)} "
            "[style=dashed, penwidth=2, color=darkgreen];"
        )
    lines.append("}")
    return "\n".join(lines)
