"""Text renderer for flight-recorder dumps: a lane-per-span timeline.

A :class:`~repro.obs.flight.FlightDump` artifact is already readable,
but its fixed-width span list hides *shape*: which operations
overlapped, where the rescale sat relative to the crash, how long a
channel stayed masked.  This tool re-renders a dump as an ASCII gantt —
one row per span, a scaled bar between the dump's earliest and latest
instants, point events as a single tick:

    rescale:quiesce        |----·----------------|
    channel_masked         |      ▓▓▓▓▓▓▓        |

Usage::

    python -m repro.tools.timeline tests/corpus/<name>.timeline.txt

The renderer is pure text-in/text-out (no runtime imports), so it
works on committed artifacts from any run.
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import Dict, List, NamedTuple, Optional, Tuple

#: one span line of a rendered FlightDump
_ENTRY_RE = re.compile(
    r"^\[\s*(?P<start>-?\d+\.\d+) \.\. \s*(?P<end>-?\d+\.\d+)\] "
    r"(?P<kind>\S+)\s+(?P<name>\S+)(?: (?P<attrs>.*))?$"
)


class TimelineEntry(NamedTuple):
    """One parsed span line of a dump."""

    start: float
    end: float
    kind: str
    name: str
    attrs: str


def parse_dump(text: str) -> Tuple[Dict[str, str], List[TimelineEntry]]:
    """Parse a rendered flight dump into its header and span entries.

    Args:
        text: The artifact text (``FlightDump.render()`` output).

    Returns:
        ``(header, entries)``: the ``# key: value`` header fields and
        the parsed span lines, in file order.

    Raises:
        ValueError: A non-comment line does not parse as a span.
    """
    header: Dict[str, str] = {}
    entries: List[TimelineEntry] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            stripped = line.lstrip("# ")
            if ":" in stripped:
                key, _, value = stripped.partition(":")
                header[key.strip()] = value.strip()
            continue
        match = _ENTRY_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable dump line: {line!r}")
        entries.append(
            TimelineEntry(
                start=float(match.group("start")),
                end=float(match.group("end")),
                kind=match.group("kind"),
                name=match.group("name"),
                attrs=match.group("attrs") or "",
            )
        )
    return header, entries


def _bar(entry: TimelineEntry, t0: float, span: float, width: int) -> str:
    """The scaled lane cells of one entry."""
    cells = [" "] * width
    scale = (width - 1) / span if span > 0 else 0.0
    lo = int(round((entry.start - t0) * scale))
    hi = int(round((entry.end - t0) * scale))
    lo = min(max(lo, 0), width - 1)
    hi = min(max(hi, lo), width - 1)
    if lo == hi:
        cells[lo] = "|"
    else:
        for i in range(lo, hi + 1):
            cells[i] = "="
        cells[lo] = "["
        cells[hi] = "]"
    return "".join(cells)


def render_timeline(
    text: str, width: int = 60, kind: Optional[str] = None
) -> str:
    """Render one dump artifact as an ASCII lane timeline.

    Args:
        text: The artifact text.
        width: Lane width in characters.
        kind: Restrict to one span kind (``data``/``control``).

    Returns:
        The rendered timeline (header, axis, one row per span).
    """
    header, entries = parse_dump(text)
    if kind is not None:
        entries = [e for e in entries if e.kind == kind]
    lines = [
        f"flight timeline — reason: {header.get('reason', '?')}"
        f"  scope: {header.get('scope', '?')}"
        f"  spans: {len(entries)}",
    ]
    if not entries:
        lines.append("(no spans)")
        return "\n".join(lines) + "\n"
    t0 = min(e.start for e in entries)
    t1 = max(e.end for e in entries)
    span = t1 - t0
    label_width = min(max(len(e.name) for e in entries), 28)
    axis = f"{t0:.3f}s".ljust(width - 8) + f"{t1:.3f}s"
    lines.append(" " * (label_width + 2) + axis[: width + 8])
    for e in entries:
        label = e.name[:label_width].ljust(label_width)
        lane = _bar(e, t0, span, width)
        suffix = f" {e.attrs}" if e.attrs else ""
        lines.append(f"{label}  {lane}{suffix}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: render a dump artifact to stdout.

    Args:
        argv: Argument list (default ``sys.argv[1:]``).

    Returns:
        Process exit code.
    """
    parser = argparse.ArgumentParser(
        description="render a flight-recorder dump as an ASCII timeline"
    )
    parser.add_argument("path", help="dump artifact (*.timeline.txt)")
    parser.add_argument("--width", type=int, default=60, help="lane width")
    parser.add_argument(
        "--kind", choices=["data", "control"], help="only this span kind"
    )
    args = parser.parse_args(argv)
    with open(args.path, "r") as handle:
        text = handle.read()
    sys.stdout.write(render_timeline(text, width=args.width, kind=args.kind))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
