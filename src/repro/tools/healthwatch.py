"""Text dashboard for health-plane snapshots: pressure bars at a glance.

A :class:`~repro.obs.health.HealthSnapshot` artifact is already
readable, but its fixed-width numbers hide *proportion*: which link
carries most of the lag, how close the worst region is to an SLO, and
whether the bottleneck attribution matches where the bars pile up.
This tool re-renders a snapshot as an ASCII dashboard — one bar per
link and region scaled against the fleet maximum, the bottleneck row
flagged, active alerts listed last:

    source.gen@pe-2#0     lag  0.812s  ██████████████████████████  <- bottleneck
    sink.probe@pe-4#0     lag  0.031s  █

Usage::

    python -m repro.tools.healthwatch benchmarks/results/<name>.health.txt

The renderer is pure text-in/text-out (no runtime imports), so it
works on committed artifacts from any run.
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import Dict, List, NamedTuple, Optional, Tuple

#: one link line of a rendered HealthSnapshot
_LINK_RE = re.compile(
    r"^  (?P<name>\S+) depth=(?P<depth>\d+)"
    r" open=(?P<open>-?\d+\.\d+)"
    r" retries=(?P<retries>\d+)"
    r" lag=(?P<lag>-?\d+\.\d+)$"
)
#: one region line
_REGION_RE = re.compile(r"^  (?P<name>\S+) lag=(?P<lag>-?\d+\.\d+)$")
#: the attributed-bottleneck line
_BOTTLENECK_RE = re.compile(
    r"^bottleneck: (?P<target>\S+) score=(?P<score>-?\d+\.\d+)"
    r" why=(?P<why>.*)$"
)


class LinkRow(NamedTuple):
    """One parsed link line of a snapshot."""

    name: str
    depth: int
    open_age: float
    retries: int
    lag: float


class HealthReport(NamedTuple):
    """A fully parsed snapshot artifact."""

    header: Dict[str, str]
    links: List[LinkRow]
    regions: List[Tuple[str, float]]
    signals: Dict[str, float]
    bottleneck: Optional[Tuple[str, float, str]]
    alerts: List[str]


def parse_snapshot(text: str) -> HealthReport:
    """Parse a rendered health snapshot into its sections.

    Args:
        text: The artifact text (``HealthSnapshot.render()`` output).

    Returns:
        The parsed :class:`HealthReport`, sections in file order.

    Raises:
        ValueError: A section line does not parse.
    """
    header: Dict[str, str] = {}
    links: List[LinkRow] = []
    regions: List[Tuple[str, float]] = []
    signals: Dict[str, float] = {}
    bottleneck: Optional[Tuple[str, float, str]] = None
    alerts: List[str] = []
    section = ""
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            stripped = line.lstrip("# ")
            if ":" in stripped:
                key, _, value = stripped.partition(":")
                header[key.strip()] = value.strip()
            continue
        if line == "links:":
            section = "links"
            continue
        if line == "regions:":
            section = "regions"
            continue
        if line == "signals:":
            section = "signals"
            continue
        if line in ("alerts:", "alerts: none"):
            section = "alerts"
            continue
        if line == "bottleneck: none":
            section = ""
            continue
        if line.startswith("bottleneck: "):
            match = _BOTTLENECK_RE.match(line)
            if match is None:
                raise ValueError(f"unparseable bottleneck line: {line!r}")
            bottleneck = (
                match.group("target"),
                float(match.group("score")),
                match.group("why"),
            )
            section = ""
            continue
        if section == "links":
            match = _LINK_RE.match(line)
            if match is None:
                raise ValueError(f"unparseable link line: {line!r}")
            links.append(
                LinkRow(
                    name=match.group("name"),
                    depth=int(match.group("depth")),
                    open_age=float(match.group("open")),
                    retries=int(match.group("retries")),
                    lag=float(match.group("lag")),
                )
            )
        elif section == "regions":
            match = _REGION_RE.match(line)
            if match is None:
                raise ValueError(f"unparseable region line: {line!r}")
            regions.append(
                (match.group("name"), float(match.group("lag")))
            )
        elif section == "signals":
            key, _, value = line.strip().partition(":")
            signals[key.strip()] = float(value)
        elif section == "alerts":
            alerts.append(line.strip())
        else:
            raise ValueError(f"unparseable snapshot line: {line!r}")
    return HealthReport(header, links, regions, signals, bottleneck, alerts)


def _bar(value: float, peak: float, width: int) -> str:
    """A left-aligned proportional bar (at least one cell when > 0)."""
    if peak <= 0 or value <= 0:
        return ""
    cells = int(round(value / peak * width))
    return "#" * max(cells, 1)


def render_dashboard(text: str, width: int = 30) -> str:
    """Render one snapshot artifact as an ASCII dashboard.

    Args:
        text: The artifact text.
        width: Bar width (characters) of the fleet-maximum row.

    Returns:
        The rendered dashboard (header, link/region bars, signals,
        alerts).
    """
    report = parse_snapshot(text)
    lines = [
        f"health @ {report.header.get('sim_time', '?')}s"
        f"  ticks: {report.header.get('ticks', '?')}"
        f"  links: {len(report.links)}"
        f"  fired: {report.header.get('fired', '?')}",
    ]
    hot = report.bottleneck[0] if report.bottleneck else None
    if report.links:
        peak = max(link.lag for link in report.links)
        label_width = min(max(len(link.name) for link in report.links), 36)
        lines.append("links (lag watermark):")
        for link in report.links:
            label = link.name[:label_width].ljust(label_width)
            mark = "  <- bottleneck" if link.name == hot else ""
            lines.append(
                f"  {label} lag {link.lag:8.3f}s"
                f" depth={link.depth:<4d}"
                f" retries={link.retries:<3d}"
                f" {_bar(link.lag, peak, width)}{mark}"
            )
    else:
        lines.append("links: none")
    if report.regions:
        peak = max(lag for _, lag in report.regions)
        label_width = min(max(len(name) for name, _ in report.regions), 36)
        lines.append("regions (lag watermark):")
        for name, lag in report.regions:
            label = name[:label_width].ljust(label_width)
            lines.append(
                f"  {label} lag {lag:8.3f}s {_bar(lag, peak, width)}"
            )
    if report.signals:
        lines.append("signals:")
        for name in sorted(report.signals):
            lines.append(f"  {name}: {report.signals[name]:.6f}")
    if report.bottleneck is not None:
        target, score, why = report.bottleneck
        lines.append(f"bottleneck: {target} score={score:.3f}")
        lines.append(f"  why: {why}")
    else:
        lines.append("bottleneck: none")
    if report.alerts:
        lines.append("alerts:")
        for alert in report.alerts:
            lines.append(f"  {alert}")
    else:
        lines.append("alerts: none")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: render a snapshot artifact to stdout.

    Args:
        argv: Argument list (default ``sys.argv[1:]``).

    Returns:
        Process exit code.
    """
    parser = argparse.ArgumentParser(
        description="render a health-plane snapshot as an ASCII dashboard"
    )
    parser.add_argument("path", help="snapshot artifact (*.health.txt)")
    parser.add_argument("--width", type=int, default=30, help="bar width")
    args = parser.parse_args(argv)
    with open(args.path, "r") as handle:
        text = handle.read()
    sys.stdout.write(render_dashboard(text, width=args.width))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
